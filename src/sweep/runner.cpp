#include "sweep/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#if !defined(_WIN32)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/scenario.hpp"
#include "power/server_models.hpp"
#include "simcore/thread_pool.hpp"
#include "stats/ci.hpp"
#include "workload/demand_trace.hpp"

namespace vpm::sweep {

namespace {

std::string
axisNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/**
 * The cell -> scenario mapping, modeled on the F11 policy grid so sweep
 * results line up with the bench figures: every policy sees the same
 * blade with the synthetic deep state at the cell's exit latency, the
 * same consolidation period, and the same fleet (per seed).
 */
mgmt::ScenarioConfig
buildScenario(const SweepManifest &manifest, const CellSpec &spec,
              std::uint64_t seed)
{
    mgmt::ScenarioConfig config;
    config.hostCount = spec.hosts;
    config.vmCount = spec.vms;
    config.duration = sim::SimTime::hours(manifest.durationHours);
    config.seed = seed;
    config.mix.loadScale = spec.loadScale;
    config.powerSpec = power::bladeWithSyntheticState(
        sim::SimTime::seconds(spec.exitLatencyS));

    if (spec.workload == "surge") {
        // The F9/F11 surge schedule: recurring 30-minute spikes to 80%
        // outside the predictor's memory, so wake latency is on the
        // critical path. Spikes past the configured duration never fire.
        config.transformFleet =
            [](std::vector<workload::VmWorkloadSpec> &fleet) {
                for (auto &vm_spec : fleet) {
                    for (const double hour : {3.0, 9.0, 15.0, 21.0}) {
                        vm_spec.trace =
                            std::make_shared<workload::SpikeTrace>(
                                vm_spec.trace, sim::SimTime::hours(hour),
                                sim::SimTime::minutes(30.0), 0.80);
                    }
                }
            };
    }

    if (spec.policy == "nopm") {
        config.manager = mgmt::makePolicy(mgmt::PolicyKind::NoPM);
        return config;
    }

    // The three PM policies share the consolidating manager setup.
    config.manager = mgmt::makePolicy(mgmt::PolicyKind::PmS3);
    config.manager.sleepState = "SYNTH";
    config.manager.period = sim::SimTime::minutes(1.0);

    if (spec.policy == "s3")
        return config; // S3-only: whole-host sleep, no hierarchy

    if (spec.policy == "cstates") {
        // Same manager, but drained hosts park at the bottom of the
        // hierarchy instead of sleeping — C-states are the only lever.
        config.manager.hostSleep = false;
        config.idleHierarchy = power::modernIdleHierarchy();
        mgmt::JointPolicyConfig idle_only;
        idle_only.controlSpeed = false;
        config.jointPolicy = idle_only;
        return config;
    }

    // joint: hierarchy + speed/sleep governor + parked reserve.
    config.idleHierarchy = power::modernIdleHierarchy();
    mgmt::JointPolicyConfig joint_policy;
    joint_policy.speedWindowCycles = 15;
    joint_policy.speedSurgeGuard = 2.0;
    config.jointPolicy = joint_policy;
    config.manager.parkedReserve = 3;
    return config;
}

void
addMetric(telemetry::SweepCell &cell, const std::string &name,
          const std::vector<double> &samples)
{
    telemetry::CellMetric metric;
    metric.name = name;
    metric.ci = stats::confidenceInterval(samples);
    cell.metrics.push_back(std::move(metric));
}

telemetry::SweepCell
skeletonCell(const CellSpec &spec, const SweepManifest &manifest,
             int repeats)
{
    telemetry::SweepCell cell;
    cell.id = spec.id;
    cell.index = spec.index;
    cell.axes = {
        {"policy", spec.policy},
        {"workload", spec.workload},
        {"exit_latency_s", axisNum(spec.exitLatencyS)},
        {"load_scale", axisNum(spec.loadScale)},
        {"hosts", std::to_string(spec.hosts)},
        {"vms", std::to_string(spec.vms)},
    };
    cell.seeds = manifest.seeds;
    cell.repeats = repeats;
    cell.manifestHash = manifestContentHash(manifest);
    return cell;
}

} // namespace

telemetry::SweepCell
runCell(const SweepManifest &manifest, const CellSpec &spec, int repeats)
{
    telemetry::SweepCell cell = skeletonCell(spec, manifest, repeats);

    std::vector<double> energy_j;
    std::vector<double> sla_pct;
    std::vector<double> wake_p99;
    std::vector<double> wall_ms;
    std::vector<double> events_per_sec;

    for (int repeat = 0; repeat < repeats; ++repeat) {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t events = 0;
        for (const std::uint64_t seed : manifest.seeds) {
            const mgmt::ScenarioResult result =
                mgmt::runScenario(buildScenario(manifest, spec, seed));
            events += result.eventsProcessed;
            if (repeat == 0) {
                // Deterministic metrics: one sample per seed; later
                // repeats reproduce these values bit-for-bit, so only
                // the wall clock below gains information from them.
                energy_j.push_back(result.metrics.energyKwh * 3.6e6);
                sla_pct.push_back(result.metrics.violationFraction *
                                  100.0);
                wake_p99.push_back(result.wakeP99Seconds);
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        wall_ms.push_back(ms);
        events_per_sec.push_back(
            ms > 0.0 ? static_cast<double>(events) / (ms / 1000.0) : 0.0);
    }

    addMetric(cell, "energy_j", energy_j);
    addMetric(cell, "sla_violation_pct", sla_pct);
    addMetric(cell, "wake_p99_s", wake_p99);
    addMetric(cell, "wall_ms", wall_ms);
    addMetric(cell, "events_per_sec", events_per_sec);
    cell.status = telemetry::CellStatus::Ok;
    return cell;
}

std::string
cellFilePath(const std::string &out_dir, std::uint64_t index)
{
    char name[32];
    std::snprintf(name, sizeof(name), "cell_%05llu.json",
                  static_cast<unsigned long long>(index));
    return out_dir + "/cells/" + name;
}

namespace {

/**
 * Try to reload a finished cell from a previous run. A cell only resumes
 * when its id matches, it finished Ok, AND it was produced by a manifest
 * with the same content hash — an edited grid (duration, axis values,
 * seeds) used to be silently trusted because the cell id alone cannot see
 * changes to duration or the seed list. A hash mismatch sets @p stale so
 * the caller can say why the cell is re-running.
 */
bool
tryResume(const std::string &path, const CellSpec &spec,
          const std::string &manifest_hash, telemetry::SweepCell &out,
          bool &stale)
{
    stale = false;
    std::ifstream in(path);
    if (!in)
        return false;
    telemetry::SweepCell cell;
    std::string error;
    if (!telemetry::readCellJson(in, cell, &error))
        return false;
    if (cell.id != spec.id || cell.status != telemetry::CellStatus::Ok)
        return false;
    if (cell.manifestHash != manifest_hash) {
        stale = true;
        return false;
    }
    out = std::move(cell);
    return true;
}

void
persistCell(const std::string &path, const telemetry::SweepCell &cell)
{
    // Write-then-rename so a killed sweep never leaves a half-written
    // file that a later --resume would half-trust.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        telemetry::writeCellJson(cell, out);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
}

#if !defined(_WIN32)
/** Run one cell as a child process; never throws. */
telemetry::SweepCell
runCellProcess(const SweepManifest &manifest, const CellSpec &spec,
               int repeats, const RunOptions &options)
{
    telemetry::SweepCell cell = skeletonCell(spec, manifest, repeats);
    const std::string cell_out = cellFilePath(options.outDir, spec.index);
    const std::string index_str = std::to_string(spec.index);
    const std::string repeats_str = std::to_string(repeats);

    const pid_t pid = ::fork();
    if (pid < 0) {
        cell.status = telemetry::CellStatus::Failed;
        cell.error = "fork failed";
        return cell;
    }
    if (pid == 0) {
        const char *argv[] = {options.selfExe.c_str(),
                              options.manifestPath.c_str(),
                              "--cell",
                              index_str.c_str(),
                              "--cell-out",
                              cell_out.c_str(),
                              "--repeats",
                              repeats_str.c_str(),
                              nullptr};
        ::execv(options.selfExe.c_str(),
                const_cast<char *const *>(argv));
        ::_exit(127); // exec failed
    }

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(options.timeoutS > 0.0
                                          ? options.timeoutS
                                          : 1e9);
    int wait_status = 0;
    bool timed_out = false;
    for (;;) {
        const pid_t done = ::waitpid(pid, &wait_status, WNOHANG);
        if (done == pid)
            break;
        if (done < 0) {
            cell.status = telemetry::CellStatus::Failed;
            cell.error = "waitpid failed";
            return cell;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &wait_status, 0);
            timed_out = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    if (timed_out) {
        cell.status = telemetry::CellStatus::Timeout;
        cell.error = "killed after " + axisNum(options.timeoutS) + " s";
        return cell;
    }
    if (WIFSIGNALED(wait_status)) {
        cell.status = telemetry::CellStatus::Failed;
        cell.error =
            "terminated by signal " + std::to_string(WTERMSIG(wait_status));
        return cell;
    }
    if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
        cell.status = telemetry::CellStatus::Failed;
        cell.error = "exit status " +
                     std::to_string(WIFEXITED(wait_status)
                                        ? WEXITSTATUS(wait_status)
                                        : -1);
        return cell;
    }

    // The child wrote the finished cell; read it back.
    std::ifstream in(cell_out);
    telemetry::SweepCell parsed;
    std::string error;
    if (!in || !telemetry::readCellJson(in, parsed, &error)) {
        cell.status = telemetry::CellStatus::Failed;
        cell.error = "child produced no readable cell file: " + error;
        return cell;
    }
    return parsed;
}
#endif

} // namespace

bool
runSweep(const SweepManifest &manifest, const std::vector<CellSpec> &cells,
         const RunOptions &options, telemetry::SweepMatrix &out,
         std::ostream &log, std::string *error)
{
    const int repeats = options.repeatsOverride > 0
                            ? options.repeatsOverride
                            : manifest.repeats;

    std::error_code ec;
    std::filesystem::create_directories(options.outDir + "/cells", ec);
    if (ec) {
        if (error)
            *error = "cannot create output directory '" + options.outDir +
                     "': " + ec.message();
        return false;
    }
#if defined(_WIN32)
    if (options.exec == ExecMode::Process) {
        if (error)
            *error = "process execution mode is not supported on Windows";
        return false;
    }
#else
    if (options.exec == ExecMode::Process && options.selfExe.empty()) {
        if (error)
            *error = "process mode needs the sweep executable path";
        return false;
    }
#endif

    // Each cell's simulation must be single-threaded: the cell worker
    // threads ARE the parallelism. This also forces the lazy global pool
    // to initialize before any worker races to do it.
    sim::setGlobalThreads(1);

    out.name = manifest.name;
    out.threads = options.threads;
    out.exec = options.exec == ExecMode::InProc ? "inproc" : "process";
    out.cells.assign(cells.size(), telemetry::SweepCell{});

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::mutex log_mutex;
    const std::string manifest_hash = manifestContentHash(manifest);

    const auto worker = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;
            const CellSpec &spec = cells[i];
            const std::string path =
                cellFilePath(options.outDir, spec.index);

            telemetry::SweepCell cell;
            bool resumed = false;
            bool stale = false;
            if (options.resume &&
                tryResume(path, spec, manifest_hash, cell, stale)) {
                resumed = true;
            } else {
                if (stale) {
                    const std::lock_guard<std::mutex> guard(log_mutex);
                    log << "[sweep] " << spec.id
                        << ": stale cell (manifest changed), re-running\n";
                }
#if !defined(_WIN32)
                if (options.exec == ExecMode::Process)
                    cell = runCellProcess(manifest, spec, repeats, options);
                else
                    cell = runCell(manifest, spec, repeats);
#else
                cell = runCell(manifest, spec, repeats);
#endif
                persistCell(path, cell);
            }

            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            {
                const std::lock_guard<std::mutex> guard(log_mutex);
                log << "[sweep] " << finished << "/" << cells.size() << " "
                    << spec.id << " -> " << toString(cell.status)
                    << (resumed ? " (resumed)" : "")
                    << (cell.error.empty() ? "" : ": " + cell.error)
                    << "\n";
            }
            out.cells[spec.index] = std::move(cell);
        }
    };

    const int workers = std::max(1, options.threads);
    if (workers == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int i = 0; i < workers; ++i)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return true;
}

} // namespace vpm::sweep
