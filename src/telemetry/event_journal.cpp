#include "telemetry/event_journal.hpp"

#include <algorithm>
#include <limits>

#include "telemetry/profiler.hpp"
#include "telemetry/trace_context.hpp"

namespace vpm::telemetry {

namespace {

/** Composite key for the (domain, track) -> name table. */
std::uint64_t
trackKey(TrackDomain domain, std::int32_t track)
{
    return (static_cast<std::uint64_t>(domain) << 32) |
           static_cast<std::uint32_t>(track);
}

const std::string kEmpty;

} // namespace

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::PowerTransition:
        return "power_transition";
      case EventKind::MigrationStart:
        return "migration_start";
      case EventKind::MigrationFinish:
        return "migration_finish";
      case EventKind::MigrationAbort:
        return "migration_abort";
      case EventKind::Forecast:
        return "forecast";
      case EventKind::SleepDecision:
        return "sleep_decision";
      case EventKind::WakeDecision:
        return "wake_decision";
      case EventKind::MigrateDecision:
        return "migrate_decision";
      case EventKind::SlaViolation:
        return "sla_violation";
      case EventKind::IdleTransition:
        return "idle_transition";
      case EventKind::Alert:
        return "alert";
    }
    return "unknown";
}

const char *
toString(TrackDomain domain)
{
    switch (domain) {
      case TrackDomain::Host:
        return "host";
      case TrackDomain::Vm:
        return "vm";
      case TrackDomain::Manager:
        return "manager";
    }
    return "unknown";
}

void
EventJournal::configure(std::size_t capacity, bool enabled)
{
    enabled_ = enabled;
    events_.clear();
    events_.shrink_to_fit();
    if (enabled_ && capacity > 0)
        events_.resize(capacity);
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
    nextSeq_ = 1;
}

LabelId
EventJournal::intern(std::string_view label)
{
    if (!enabled_ || label.empty())
        return 0;
    const auto it = labelIndex_.find(std::string(label));
    if (it != labelIndex_.end())
        return it->second;
    if (labels_.size() > std::numeric_limits<LabelId>::max())
        return 0; // table saturated; degrade to the empty label
    const auto id = static_cast<LabelId>(labels_.size());
    labels_.emplace_back(label);
    labelIndex_.emplace(std::string(label), id);
    return id;
}

const std::string &
EventJournal::label(LabelId id) const
{
    if (id >= labels_.size())
        return kEmpty;
    return labels_[id];
}

void
EventJournal::registerTrack(TrackDomain domain, std::int32_t track,
                            std::string_view name)
{
    trackNames_[trackKey(domain, track)] = std::string(name);
}

std::int32_t
EventJournal::allocateTrack(TrackDomain domain, std::string_view name)
{
    const std::int32_t track = nextAllocatedTrack_++;
    registerTrack(domain, track, name);
    return track;
}

const std::string &
EventJournal::trackName(TrackDomain domain, std::int32_t track) const
{
    const auto it = trackNames_.find(trackKey(domain, track));
    if (it == trackNames_.end())
        return kEmpty;
    return it->second;
}

std::uint64_t
EventJournal::record(JournalEvent event)
{
    // The observability tax, made visible: journal appends are on the
    // simulation hot path whenever tracing is enabled.
    PROF_ZONE("telemetry.journal.record");
    if (!enabled_ || events_.empty())
        return 0;
    event.seq = nextSeq_++;
    if (event.cause == 0) {
        const TraceContext context = currentContext();
        event.cause = context.cause;
        event.causeSeq = context.causeSeq;
    }
    events_[head_] = event;
    head_ = (head_ + 1) % events_.size();
    if (size_ < events_.size())
        ++size_;
    ++recorded_;
    return event.seq;
}

void
EventJournal::powerTransition(std::int64_t t_us, std::int32_t host,
                              std::string_view from, std::string_view to,
                              std::string_view state, double phase_seconds,
                              double joules)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::PowerTransition;
    ev.domain = TrackDomain::Host;
    ev.track = host;
    ev.labelA = intern(from);
    ev.labelB = intern(to);
    ev.labelC = intern(state);
    ev.a = phase_seconds;
    ev.b = joules;
    record(ev);
}

void
EventJournal::migrationStart(std::int64_t t_us, std::int32_t vm,
                             std::int32_t source, std::int32_t dest,
                             double expected_seconds)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::MigrationStart;
    ev.domain = TrackDomain::Vm;
    ev.track = vm;
    ev.a = source;
    ev.b = dest;
    ev.c = expected_seconds;
    record(ev);
}

void
EventJournal::migrationFinish(std::int64_t t_us, std::int32_t vm,
                              std::int32_t source, std::int32_t dest,
                              double seconds)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::MigrationFinish;
    ev.domain = TrackDomain::Vm;
    ev.track = vm;
    ev.a = source;
    ev.b = dest;
    ev.c = seconds;
    record(ev);
}

void
EventJournal::migrationAbort(std::int64_t t_us, std::int32_t vm,
                             std::int32_t source, std::int32_t dest,
                             std::string_view reason)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::MigrationAbort;
    ev.domain = TrackDomain::Vm;
    ev.track = vm;
    ev.labelA = intern(reason);
    ev.a = source;
    ev.b = dest;
    record(ev);
}

void
EventJournal::forecast(std::int64_t t_us, std::string_view predictor,
                       double forecast_value, double actual)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::Forecast;
    ev.domain = TrackDomain::Manager;
    ev.track = 0;
    ev.labelA = intern(predictor);
    ev.a = forecast_value;
    ev.b = actual;
    record(ev);
}

void
EventJournal::sleepDecision(std::int64_t t_us, std::int32_t host,
                            std::string_view state,
                            double expected_idle_seconds, double idle_watts,
                            double sleep_watts)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::SleepDecision;
    ev.domain = TrackDomain::Host;
    ev.track = host;
    ev.labelA = intern(state);
    ev.a = expected_idle_seconds;
    ev.b = idle_watts;
    ev.c = sleep_watts;
    record(ev);
}

void
EventJournal::wakeDecision(std::int64_t t_us, std::int32_t host,
                           std::string_view reason)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::WakeDecision;
    ev.domain = TrackDomain::Host;
    ev.track = host;
    ev.labelA = intern(reason);
    record(ev);
}

std::uint64_t
EventJournal::migrateDecision(std::int64_t t_us, std::string_view reason,
                              int planned_moves, std::int32_t subject_host)
{
    if (!enabled_)
        return 0;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::MigrateDecision;
    ev.domain = TrackDomain::Manager;
    ev.track = 0;
    ev.labelA = intern(reason);
    ev.a = planned_moves;
    ev.b = subject_host;
    return record(ev);
}

void
EventJournal::slaViolation(std::int64_t t_us, std::int32_t vm,
                           double satisfaction, double demand_mhz)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::SlaViolation;
    ev.domain = TrackDomain::Vm;
    ev.track = vm;
    ev.a = satisfaction;
    ev.b = demand_mhz;
    record(ev);
}

void
EventJournal::idleTransition(std::int64_t t_us, std::int32_t host,
                             std::string_view level, std::string_view from,
                             std::string_view to, int cores,
                             double from_seconds, double joules)
{
    if (!enabled_)
        return;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::IdleTransition;
    ev.domain = TrackDomain::Host;
    ev.track = host;
    ev.labelA = intern(level);
    ev.labelB = intern(from);
    ev.labelC = intern(to);
    ev.a = cores;
    ev.b = from_seconds;
    ev.c = joules;
    record(ev);
}

std::uint64_t
EventJournal::alert(std::int64_t t_us, std::string_view rule,
                    std::string_view rule_kind, std::string_view series,
                    double value, double threshold, int buckets)
{
    if (!enabled_)
        return 0;
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::Alert;
    ev.domain = TrackDomain::Manager;
    ev.track = 0;
    ev.labelA = intern(rule);
    ev.labelB = intern(rule_kind);
    ev.labelC = intern(series);
    ev.a = value;
    ev.b = threshold;
    ev.c = buckets;
    return record(ev);
}

void
JournalStage::slaViolation(std::int64_t t_us, std::int32_t vm,
                           double satisfaction, double demand_mhz)
{
    JournalEvent ev;
    ev.timeUs = t_us;
    ev.kind = EventKind::SlaViolation;
    ev.domain = TrackDomain::Vm;
    ev.track = vm;
    ev.a = satisfaction;
    ev.b = demand_mhz;
    staged_.push_back(ev);
}

std::size_t
EventJournal::flush(JournalStage &stage)
{
    std::size_t flushed = 0;
    if (enabled_) {
        for (const JournalEvent &ev : stage.staged_) {
            record(ev);
            ++flushed;
        }
    }
    stage.clear();
    return flushed;
}

std::vector<JournalEvent>
EventJournal::sortedEvents() const
{
    std::vector<JournalEvent> out;
    out.reserve(size_);
    // Oldest-first walk of the ring.
    const std::size_t start =
        (head_ + events_.size() - size_) % std::max<std::size_t>(
            events_.size(), 1);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(events_[(start + i) % events_.size()]);
    std::stable_sort(out.begin(), out.end(),
                     [](const JournalEvent &x, const JournalEvent &y) {
                         return x.timeUs < y.timeUs;
                     });
    return out;
}

void
EventJournal::clear()
{
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
    nextSeq_ = 1;
}

} // namespace vpm::telemetry
