#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "telemetry/profiler.hpp"

namespace vpm::telemetry {

namespace {

const std::string kEmpty;

/** Little-endian scalar writers/readers for the snapshot container. */
template <typename T>
void
putLe(std::ostream &out, T value)
{
    std::uint8_t buf[sizeof(T)];
    auto bits = static_cast<std::uint64_t>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        buf[i] = static_cast<std::uint8_t>(bits >> (8 * i));
    out.write(reinterpret_cast<const char *>(buf), sizeof(T));
}

void
putLeDouble(std::ostream &out, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    putLe<std::uint64_t>(out, bits);
}

template <typename T>
bool
getLe(std::istream &in, T &value)
{
    std::uint8_t buf[sizeof(T)];
    if (!in.read(reinterpret_cast<char *>(buf), sizeof(T)))
        return false;
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bits |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    value = static_cast<T>(bits);
    return true;
}

bool
getLeDouble(std::istream &in, double &value)
{
    std::uint64_t bits;
    if (!getLe(in, bits))
        return false;
    std::memcpy(&value, &bits, sizeof(value));
    return true;
}

/** Zig-zag fold so small negative deltas stay small unsigned codes. */
std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/**
 * Gorilla timestamp prefix codes over the zig-zagged delta-of-delta.
 * '0'                 dod == 0 (the overwhelmingly common case: bucket
 *                     timestamps advance by exactly one interval)
 * '10'   + 7 bits     |code| < 2^7
 * '110'  + 12 bits    < 2^12
 * '1110' + 24 bits    < 2^24
 * '1111' + 64 bits    anything else
 */
void
writeDod(BitWriter &out, std::int64_t dod)
{
    const std::uint64_t code = zigzag(dod);
    if (code == 0) {
        out.writeBit(false);
    } else if (code < (1ull << 7)) {
        out.writeBits(0b10, 2);
        out.writeBits(code, 7);
    } else if (code < (1ull << 12)) {
        out.writeBits(0b110, 3);
        out.writeBits(code, 12);
    } else if (code < (1ull << 24)) {
        out.writeBits(0b1110, 4);
        out.writeBits(code, 24);
    } else {
        out.writeBits(0b1111, 4);
        out.writeBits(code, 64);
    }
}

std::int64_t
readDod(BitReader &in)
{
    if (!in.readBit())
        return 0;
    if (!in.readBit())
        return unzigzag(in.readBits(7));
    if (!in.readBit())
        return unzigzag(in.readBits(12));
    if (!in.readBit())
        return unzigzag(in.readBits(24));
    return unzigzag(in.readBits(64));
}

/** Sanitize a series name into a Prometheus metric name. */
std::string
promName(const std::string &name)
{
    std::string out = "vpm_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

/** Deterministic %.17g formatting: shortest round-trippable double. */
std::string
promValue(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

constexpr char kMagic[8] = {'V', 'P', 'M', 'T', 'S', '0', '0', '1'};

} // namespace

// ---- Bit packing -----------------------------------------------------------

void
BitWriter::writeBit(bool bit)
{
    if (bitPos_ == 8) {
        bytes_.push_back(0);
        bitPos_ = 0;
    }
    if (bit)
        bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bitPos_));
    ++bitPos_;
}

void
BitWriter::writeBits(std::uint64_t value, int bits)
{
    for (int i = bits - 1; i >= 0; --i)
        writeBit((value >> i) & 1u);
}

void
BitWriter::clear()
{
    bytes_.clear();
    bitPos_ = 8;
}

bool
BitReader::readBit()
{
    if (pos_ >= sizeBits_)
        return false; // past the end: zeros (callers bound by count)
    const std::size_t byte = pos_ / 8;
    const int bit = static_cast<int>(pos_ % 8);
    ++pos_;
    return (data_[byte] >> (7 - bit)) & 1u;
}

std::uint64_t
BitReader::readBits(int bits)
{
    std::uint64_t out = 0;
    for (int i = 0; i < bits; ++i)
        out = (out << 1) | (readBit() ? 1u : 0u);
    return out;
}

void
XorChannel::write(BitWriter &out, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    const std::uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
        out.writeBit(false);
        return;
    }
    out.writeBit(true);
    int leading = std::countl_zero(x);
    const int trailing = std::countr_zero(x);
    // Gorilla caps leading at 31 so it fits the 5-bit window field.
    leading = std::min(leading, 31);
    if (prevLeading >= 0 && leading >= prevLeading &&
        trailing >= prevTrailing) {
        // Reuse the previous window.
        out.writeBit(false);
        const int meaningful = 64 - prevLeading - prevTrailing;
        out.writeBits(x >> prevTrailing, meaningful);
        return;
    }
    out.writeBit(true);
    const int meaningful = 64 - leading - trailing;
    out.writeBits(static_cast<std::uint64_t>(leading), 5);
    // 6-bit length; 64 meaningful bits encode as 0 (meaningful >= 1 here).
    out.writeBits(static_cast<std::uint64_t>(meaningful & 63), 6);
    out.writeBits(x >> trailing, meaningful);
    prevLeading = leading;
    prevTrailing = trailing;
}

double
XorChannel::read(BitReader &in)
{
    if (in.readBit()) {
        if (in.readBit()) {
            prevLeading = static_cast<int>(in.readBits(5));
            int meaningful = static_cast<int>(in.readBits(6));
            if (meaningful == 0)
                meaningful = 64;
            prevTrailing = 64 - prevLeading - meaningful;
        }
        const int meaningful = 64 - prevLeading - prevTrailing;
        const std::uint64_t x = in.readBits(meaningful) << prevTrailing;
        prev ^= x;
    }
    double value;
    std::memcpy(&value, &prev, sizeof(value));
    return value;
}

// ---- Block codec -----------------------------------------------------------

TsBlock
encodeBlock(const std::vector<TsBucket> &buckets)
{
    TsBlock block;
    if (buckets.empty())
        return block;
    block.firstBucketUs = buckets.front().startUs;
    block.lastBucketUs = buckets.back().startUs;
    block.bucketCount = static_cast<std::uint32_t>(buckets.size());

    BitWriter bits;
    XorChannel min, max, sum, count, last;
    std::int64_t prev_t = 0, prev_delta = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const TsBucket &b = buckets[i];
        if (i == 0) {
            // First timestamp is in the header; establish the delta chain.
            prev_t = b.startUs;
        } else {
            const std::int64_t delta = b.startUs - prev_t;
            writeDod(bits, delta - prev_delta);
            prev_delta = delta;
            prev_t = b.startUs;
        }
        min.write(bits, b.min);
        max.write(bits, b.max);
        sum.write(bits, b.sum);
        count.write(bits, static_cast<double>(b.count));
        last.write(bits, b.last);
    }
    block.payload = bits.bytes();
    return block;
}

bool
decodeBlock(const TsBlock &block, std::vector<TsBucket> &out)
{
    BitReader bits(block.payload.data(), block.payload.size());
    XorChannel min, max, sum, count, last;
    std::int64_t t = block.firstBucketUs, delta = 0;
    for (std::uint32_t i = 0; i < block.bucketCount; ++i) {
        if (i > 0) {
            delta += readDod(bits);
            t += delta;
        }
        TsBucket b;
        b.startUs = t;
        b.min = min.read(bits);
        b.max = max.read(bits);
        b.sum = sum.read(bits);
        const double n = count.read(bits);
        b.last = last.read(bits);
        if (!(n >= 0.0))
            return false; // NaN or negative count: corrupt payload
        if (bits.exhausted() && i + 1 < block.bucketCount)
            return false; // header promised more buckets than the payload has
        b.count = static_cast<std::uint64_t>(n);
        out.push_back(b);
    }
    return true;
}

// ---- SeriesRecorder --------------------------------------------------------

void
SeriesRecorder::record(std::uint32_t series, double value)
{
    const auto it = index_.find(series);
    if (it == index_.end()) {
        Partial partial;
        partial.series = series;
        partial.agg.min = partial.agg.max = partial.agg.last = value;
        partial.agg.sum = value;
        partial.agg.count = 1;
        index_.emplace(series, entries_.size());
        entries_.push_back(partial);
        return;
    }
    TsBucket &agg = entries_[it->second].agg;
    agg.min = std::min(agg.min, value);
    agg.max = std::max(agg.max, value);
    agg.sum += value;
    ++agg.count;
    agg.last = value;
}

// ---- TimeSeriesStore -------------------------------------------------------

void
TimeSeriesStore::configure(const TimeSeriesConfig &config, bool enabled)
{
    config_ = config;
    if (config_.bucketUs <= 0)
        config_.bucketUs = 1;
    if (config_.bucketsPerBlock == 0)
        config_.bucketsPerBlock = 1;
    enabled_ = enabled;
    reset();
}

std::uint32_t
TimeSeriesStore::seriesId(std::string_view name)
{
    const auto it = index_.find(std::string(name));
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(series_.size());
    Series series;
    series.name = std::string(name);
    series_.push_back(std::move(series));
    index_.emplace(std::string(name), id);
    return id;
}

const std::string &
TimeSeriesStore::seriesName(std::uint32_t id) const
{
    if (id >= series_.size())
        return kEmpty;
    return series_[id].name;
}

void
TimeSeriesStore::roll(Series &s, std::int64_t start, double value)
{
    if (s.openActive)
        seal(s);
    s.open = TsBucket{};
    s.open.startUs = start;
    s.open.min = s.open.max = s.open.last = value;
    s.open.sum = value;
    s.open.count = 1;
    s.openActive = true;
}

void
TimeSeriesStore::mergeRecorder(SeriesRecorder &recorder, std::int64_t t_us)
{
    if (enabled_) {
        for (const SeriesRecorder::Partial &partial : recorder.entries_) {
            // Fold the shard partial as one multi-sample contribution:
            // identical to having record()ed each sample here, except the
            // partial pre-reduced min/max/sum/count (order-free or
            // shard-ordered by the caller contract).
            if (partial.series >= series_.size())
                continue;
            Series &s = series_[partial.series];
            const std::int64_t start =
                t_us - ((t_us % config_.bucketUs) + config_.bucketUs) %
                           config_.bucketUs;
            if (s.openActive && start > s.open.startUs)
                seal(s);
            if (!s.openActive) {
                s.open = partial.agg;
                s.open.startUs = start;
                s.openActive = true;
                continue;
            }
            s.open.min = std::min(s.open.min, partial.agg.min);
            s.open.max = std::max(s.open.max, partial.agg.max);
            s.open.sum += partial.agg.sum;
            s.open.count += partial.agg.count;
            s.open.last = partial.agg.last;
        }
    }
    recorder.clear();
    recorder.index_.clear();
}

void
TimeSeriesStore::flushAt(std::int64_t t_us)
{
    if (!enabled_)
        return;
    PROF_ZONE("telemetry.timeseries.flush");
    for (Series &s : series_) {
        if (s.openActive && s.open.startUs + config_.bucketUs <= t_us)
            seal(s);
    }
}

void
TimeSeriesStore::seal(Series &series)
{
    series.pendingSealed.push_back(series.open);
    series.openActive = false;
    if (series.pendingSealed.size() >= config_.bucketsPerBlock)
        packPending(series);
}

void
TimeSeriesStore::packPending(Series &series)
{
    if (series.pendingSealed.empty())
        return;
    TsBlock block = encodeBlock(series.pendingSealed);
    blockBytes_ += block.payload.size();
    series.blocks.push_back(std::move(block));
    series.pendingSealed.clear();
    while (blockBytes_ > config_.memoryBudgetBytes)
        evictOldest();
}

void
TimeSeriesStore::evictOldest()
{
    // The oldest block in the whole store goes first; ties break on the
    // lower series id, so eviction order is fully deterministic.
    Series *victim = nullptr;
    for (Series &s : series_) {
        if (s.blocks.empty())
            continue;
        if (!victim ||
            s.blocks.front().firstBucketUs <
                victim->blocks.front().firstBucketUs)
            victim = &s;
    }
    if (!victim)
        return;
    blockBytes_ -= victim->blocks.front().payload.size();
    victim->evicted += victim->blocks.front().bucketCount;
    victim->blocks.erase(victim->blocks.begin());
}

std::vector<TsBucket>
TimeSeriesStore::query(std::uint32_t series, std::int64_t t0_us,
                       std::int64_t t1_us) const
{
    std::vector<TsBucket> out;
    if (series >= series_.size())
        return out;
    const Series &s = series_[series];
    for (const TsBlock &block : s.blocks) {
        // Cheap reject on the header bounds before paying for a decode.
        if (block.firstBucketUs > t1_us ||
            block.lastBucketUs + config_.bucketUs <= t0_us)
            continue;
        std::vector<TsBucket> decoded;
        if (!decodeBlock(block, decoded))
            continue;
        for (const TsBucket &b : decoded) {
            if (b.startUs + config_.bucketUs > t0_us && b.startUs <= t1_us)
                out.push_back(b);
        }
    }
    for (const TsBucket &b : s.pendingSealed) {
        if (b.startUs + config_.bucketUs > t0_us && b.startUs <= t1_us)
            out.push_back(b);
    }
    if (s.openActive && s.open.startUs + config_.bucketUs > t0_us &&
        s.open.startUs <= t1_us)
        out.push_back(s.open);
    return out;
}

bool
TimeSeriesStore::lastSealed(std::uint32_t series, TsBucket &out) const
{
    if (series >= series_.size())
        return false;
    const Series &s = series_[series];
    if (!s.pendingSealed.empty()) {
        out = s.pendingSealed.back();
        return true;
    }
    if (s.blocks.empty())
        return false;
    std::vector<TsBucket> decoded;
    if (!decodeBlock(s.blocks.back(), decoded) || decoded.empty())
        return false;
    out = decoded.back();
    return true;
}

std::uint64_t
TimeSeriesStore::evictedBuckets(std::uint32_t series) const
{
    return series < series_.size() ? series_[series].evicted : 0;
}

void
TimeSeriesStore::writeSnapshot(std::ostream &out) const
{
    out.write(kMagic, sizeof(kMagic));
    putLe<std::uint64_t>(out, static_cast<std::uint64_t>(config_.bucketUs));
    putLe<std::uint32_t>(out, static_cast<std::uint32_t>(series_.size()));
    for (const Series &s : series_) {
        putLe<std::uint16_t>(out,
                             static_cast<std::uint16_t>(s.name.size()));
        out.write(s.name.data(),
                  static_cast<std::streamsize>(s.name.size()));
        putLe<std::uint64_t>(out, s.evicted);
        // Pending sealed buckets ship as one extra uncompressed-side block
        // so the snapshot always carries the full sealed history.
        const bool pending = !s.pendingSealed.empty();
        putLe<std::uint32_t>(
            out, static_cast<std::uint32_t>(s.blocks.size() +
                                            (pending ? 1 : 0)));
        const auto write_block = [&](const TsBlock &block) {
            putLe<std::uint64_t>(
                out, static_cast<std::uint64_t>(block.firstBucketUs));
            putLe<std::uint32_t>(out, block.bucketCount);
            putLe<std::uint32_t>(
                out, static_cast<std::uint32_t>(block.payload.size()));
            out.write(reinterpret_cast<const char *>(block.payload.data()),
                      static_cast<std::streamsize>(block.payload.size()));
        };
        for (const TsBlock &block : s.blocks)
            write_block(block);
        if (pending)
            write_block(encodeBlock(s.pendingSealed));
        putLe<std::uint8_t>(out, s.openActive ? 1 : 0);
        if (s.openActive) {
            putLe<std::uint64_t>(
                out, static_cast<std::uint64_t>(s.open.startUs));
            putLeDouble(out, s.open.min);
            putLeDouble(out, s.open.max);
            putLeDouble(out, s.open.sum);
            putLe<std::uint64_t>(out, s.open.count);
            putLeDouble(out, s.open.last);
        }
    }
}

void
TimeSeriesStore::writePrometheus(std::ostream &out) const
{
    for (std::uint32_t id = 0; id < series_.size(); ++id) {
        const Series &s = series_[id];
        TsBucket latest;
        bool have = false;
        if (s.openActive) {
            latest = s.open;
            have = true;
        } else {
            have = lastSealed(id, latest);
        }
        if (!have)
            continue;
        const std::string name = promName(s.name);
        out << "# TYPE " << name << " gauge\n";
        out << name << "{agg=\"last\"} " << promValue(latest.last) << '\n';
        out << name << "{agg=\"min\"} " << promValue(latest.min) << '\n';
        out << name << "{agg=\"max\"} " << promValue(latest.max) << '\n';
        out << name << "{agg=\"mean\"} " << promValue(latest.mean())
            << '\n';
        out << name << "{agg=\"count\"} "
            << promValue(static_cast<double>(latest.count)) << '\n';
    }
}

void
TimeSeriesStore::reset()
{
    for (Series &s : series_) {
        s.blocks.clear();
        s.pendingSealed.clear();
        s.openActive = false;
        s.evicted = 0;
    }
    blockBytes_ = 0;
    haveAlign_ = false; // bucketUs may have changed under the cache
}

// ---- Snapshot reader -------------------------------------------------------

const TsSnapshot::Series *
TsSnapshot::find(std::string_view name) const
{
    for (const Series &s : series)
        if (s.name == name)
            return &s;
    return nullptr;
}

bool
readSnapshot(std::istream &in, TsSnapshot &out, std::string *error)
{
    const auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    char magic[8];
    if (!in.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return fail("not a vpm-ts-1 snapshot (bad magic)");
    std::uint64_t bucket_us;
    std::uint32_t series_count;
    if (!getLe(in, bucket_us) || !getLe(in, series_count))
        return fail("truncated header");
    out.bucketUs = static_cast<std::int64_t>(bucket_us);
    out.series.clear();
    for (std::uint32_t i = 0; i < series_count; ++i) {
        TsSnapshot::Series series;
        std::uint16_t name_len;
        if (!getLe(in, name_len))
            return fail("truncated series header");
        series.name.resize(name_len);
        if (name_len > 0 && !in.read(series.name.data(), name_len))
            return fail("truncated series name");
        std::uint32_t block_count;
        if (!getLe(in, series.evicted) || !getLe(in, block_count))
            return fail("truncated series header");
        for (std::uint32_t b = 0; b < block_count; ++b) {
            TsBlock block;
            std::uint64_t first;
            std::uint32_t payload_len;
            if (!getLe(in, first) || !getLe(in, block.bucketCount) ||
                !getLe(in, payload_len))
                return fail("truncated block header");
            block.firstBucketUs = static_cast<std::int64_t>(first);
            block.payload.resize(payload_len);
            if (payload_len > 0 &&
                !in.read(reinterpret_cast<char *>(block.payload.data()),
                         payload_len))
                return fail("truncated block payload");
            if (!decodeBlock(block, series.buckets))
                return fail("corrupt block payload");
        }
        std::uint8_t open_flag;
        if (!getLe(in, open_flag))
            return fail("truncated open-bucket flag");
        if (open_flag) {
            TsBucket open;
            std::uint64_t start;
            if (!getLe(in, start) || !getLeDouble(in, open.min) ||
                !getLeDouble(in, open.max) || !getLeDouble(in, open.sum) ||
                !getLe(in, open.count) || !getLeDouble(in, open.last))
                return fail("truncated open bucket");
            open.startUs = static_cast<std::int64_t>(start);
            series.buckets.push_back(open);
        }
        out.series.push_back(std::move(series));
    }
    return true;
}

} // namespace vpm::telemetry
