/**
 * @file
 * The sweep matrix artifact: the stable "vpm-sweep-1" schema produced by
 * tools/sweep, its reader/writer, and the statistically-gated comparator
 * behind tools/sweep_compare.
 *
 * Schema "vpm-sweep-1":
 *
 *     {
 *       "schema": "vpm-sweep-1",
 *       "name": "example_grid",          // manifest name
 *       "threads": 4,                    // concurrent cells (informational)
 *       "exec": "inproc",                // execution mode (informational)
 *       "cells": [
 *         {
 *           "id": "policy=joint/workload=surge/exit=15/...",
 *           "index": 0,                  // position in canonical order
 *           "status": "ok",              // "ok" | "failed" | "timeout"
 *           "error": "",                 // populated when not ok
 *           "axes": { "policy": "joint", "workload": "surge",
 *                     "exit_latency_s": 15, "load_scale": 0.5,
 *                     "hosts": 8, "vms": 40 },
 *           "seeds": [42, 43, 44],       // within-cell sample axis
 *           "repeats": 3,                // wall-clock sample count
 *           "metrics": {
 *             "energy_j":          {"point":..,"lo":..,"hi":..,"n":3},
 *             "sla_violation_pct": {...},   // n = seeds (deterministic)
 *             "wake_p99_s":        {...},   // n = seeds (deterministic)
 *             "wall_ms":           {...},   // n = repeats (wall-clock)
 *             "events_per_sec":    {...}    // n = repeats (wall-clock)
 *           }
 *         }, ...
 *       ]
 *     }
 *
 * Sample semantics: the simulator is deterministic given a seed, so
 * repeats of the same cell cannot produce new values for energy/SLA/wake
 * metrics — their intervals come from the manifest's seed list (one
 * deterministic run per seed). Wall-clock metrics are the opposite: seeds
 * are pooled into one timed execution and the repeat count provides the
 * samples. Consequently everything except wall_ms/events_per_sec is
 * byte-identical across --threads values; the comparator never gates on
 * the wall metrics by default.
 *
 * Stability contract: identical to vpm-bench-1 — fields are only added,
 * never renamed; a breaking change bumps the schema string and
 * sweep_compare refuses mixed versions. Cell identity for comparison is
 * the "id" string (the canonical axis assignment), so re-ordering axes in
 * a manifest does not silently re-pair cells.
 */

#ifndef VPM_TELEMETRY_SWEEP_MATRIX_HPP
#define VPM_TELEMETRY_SWEEP_MATRIX_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stats/ci.hpp"

namespace vpm::telemetry {

/** Terminal state of one sweep cell. */
enum class CellStatus
{
    Ok,      ///< ran to completion; metrics are populated
    Failed,  ///< the cell process/body failed; see error
    Timeout, ///< the cell process exceeded the per-cell timeout
};

const char *toString(CellStatus status);

/** One axis assignment, kept ordered so cell ids are canonical. */
struct AxisValue
{
    std::string axis;  ///< "policy", "workload", "exit_latency_s", ...
    std::string value; ///< formatted value ("joint", "15", "0.5")
};

/** One named interval estimate inside a cell. */
struct CellMetric
{
    std::string name; ///< "energy_j", "sla_violation_pct", ...
    stats::ConfidenceInterval ci;
};

/** One cell of the sweep matrix. */
struct SweepCell
{
    std::string id;     ///< canonical "axis=value/..." string
    std::uint64_t index = 0;
    CellStatus status = CellStatus::Ok;
    std::string error;

    /** Content hash of the manifest that produced this cell (see
     *  sweep::manifestContentHash). `--resume` refuses cells whose hash
     *  differs from the live grid's; empty on pre-hash artifacts, which
     *  are likewise treated as stale. */
    std::string manifestHash;
    std::vector<AxisValue> axes;
    std::vector<std::uint64_t> seeds;
    int repeats = 0;
    std::vector<CellMetric> metrics;

    /** The named metric, or nullptr when absent. */
    const CellMetric *metric(const std::string &name) const;

    /** The named axis value, or "" when absent. */
    std::string axis(const std::string &name) const;
};

/** The whole matrix artifact. */
struct SweepMatrix
{
    std::string schema = "vpm-sweep-1";
    std::string name;
    int threads = 1;
    std::string exec = "inproc";
    std::vector<SweepCell> cells;

    /** The cell with the given id, or nullptr. */
    const SweepCell *cell(const std::string &id) const;
};

/** Serialize @p matrix (pretty, stable field order, %.17g numbers). */
void writeSweepJson(const SweepMatrix &matrix, std::ostream &out);

/** Serialize a single cell as a standalone JSON object (the per-cell
 *  resume file and the child-process handoff format). */
void writeCellJson(const SweepCell &cell, std::ostream &out);

/**
 * Parse a matrix previously written by writeSweepJson (unknown extra
 * fields tolerated). @return false with @p error set on malformed input
 * or a schema mismatch.
 */
bool readSweepJson(std::istream &in, SweepMatrix &out, std::string *error);

/** Parse a standalone cell object written by writeCellJson. */
bool readCellJson(std::istream &in, SweepCell &out, std::string *error);

/** Knobs for compareSweepMatrices. */
struct SweepCompareOptions
{
    /**
     * Metrics gated on, in report order, with their direction: true means
     * larger is worse. The default set covers the deterministic policy
     * metrics only — wall_ms/events_per_sec are machine-dependent and
     * would make the gate flaky across runners.
     */
    std::vector<std::pair<std::string, bool>> gatedMetrics = {
        {"energy_j", true},
        {"sla_violation_pct", true},
        {"wake_p99_s", true},
    };
};

/** One statistically-significant per-cell metric change. */
struct SweepDelta
{
    std::string cellId;
    std::string metric;
    stats::ConfidenceInterval base;
    stats::ConfidenceInterval next;
    bool worse = false; ///< direction after applying the metric's polarity
};

/** Outcome of comparing two matrices. */
struct SweepCompareResult
{
    bool comparable = false;
    std::string error;

    /** CI-separated changes in the worse direction — the gate. */
    std::vector<SweepDelta> regressions;

    /** CI-separated changes in the better direction (informational). */
    std::vector<SweepDelta> improvements;

    /** Cells present on only one side (informational, never a gate). */
    std::vector<std::string> onlyInBase;
    std::vector<std::string> onlyInNext;

    /** Cells that are not ok on either side (reported, gate on next). */
    std::vector<std::string> unhealthyNext;

    bool regressed() const
    {
        return !regressions.empty() || !unhealthyNext.empty();
    }
};

/**
 * Compare @p next against @p base cell-by-cell (matched by id). A metric
 * counts as a regression only when it moved in the worse direction AND
 * the two confidence intervals do not overlap — overlapping intervals
 * mean the sweep cannot distinguish the runs at 95% confidence, so the
 * gate stays quiet. Cells that are failed/timeout in @p next gate
 * unconditionally.
 */
SweepCompareResult compareSweepMatrices(const SweepMatrix &base,
                                        const SweepMatrix &next,
                                        const SweepCompareOptions &options);

/** Human-readable comparison report. */
void writeSweepComparison(const SweepMatrix &base, const SweepMatrix &next,
                          const SweepCompareResult &result,
                          std::ostream &out);

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_SWEEP_MATRIX_HPP
