/**
 * @file
 * Typed, sim-timestamped event journal backed by a preallocated ring buffer.
 *
 * The journal is the "what happened, when" half of telemetry: power-state
 * transitions, migration lifecycles, predictor forecasts vs. actuals,
 * manager suspend/resume decisions and SLA violations, each a fixed-size
 * record. Recording is allocation-free: strings are interned once into a
 * small label table and events carry label ids. When the ring fills, the
 * oldest events are overwritten and counted, so tracing a week-long run
 * costs bounded memory.
 *
 * Events may be recorded with non-monotonic timestamps (different sources
 * flush at different moments); exporters sort by time with insertion order
 * breaking ties, which keeps causality within a source.
 */

#ifndef VPM_TELEMETRY_EVENT_JOURNAL_HPP
#define VPM_TELEMETRY_EVENT_JOURNAL_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vpm::telemetry {

/** Discriminator of a journal record. */
enum class EventKind : std::uint8_t
{
    PowerTransition, ///< host power FSM phase change
    MigrationStart,  ///< live migration began copying
    MigrationFinish, ///< live migration landed
    MigrationAbort,  ///< live migration abandoned mid-copy
    Forecast,        ///< predictor forecast vs. observed actual
    SleepDecision,   ///< manager put a host to sleep
    WakeDecision,    ///< manager woke a host
    MigrateDecision, ///< manager planned a batch of migrations
    SlaViolation,    ///< a VM-interval fell below the SLA threshold
    IdleTransition,  ///< idle-hierarchy level moved between C-states
    Alert,           ///< a watchdog rule tripped on the time-series store
};

/** Stable wire name of an event kind (used by the JSONL exporter). */
const char *toString(EventKind kind);

/** Which timeline an event belongs to (maps to a trace process). */
enum class TrackDomain : std::uint8_t
{
    Host,    ///< per-host timelines (power states)
    Vm,      ///< per-VM timelines (migrations, SLA)
    Manager, ///< the management control loop
};

const char *toString(TrackDomain domain);

/** Interned-string handle; 0 is always the empty string. */
using LabelId = std::uint16_t;

/**
 * One fixed-size journal record. Field meaning depends on kind:
 *
 *  PowerTransition: labelA=from phase, labelB=to phase, labelC=sleep state
 *                   ("" when none), a=seconds spent in the from-phase,
 *                   b=joules spent there (0 when unknown).
 *  MigrationStart:  a=source host, b=dest host, c=expected seconds.
 *  MigrationFinish: a=source host, b=dest host, c=actual seconds.
 *  MigrationAbort:  labelA=reason, a=source host, b=dest host.
 *  Forecast:        labelA=predictor name, a=forecast, b=actual.
 *  SleepDecision:   labelA=sleep state, a=expected idle seconds,
 *                   b=host idle watts, c=state sleep watts.
 *  WakeDecision:    labelA=reason.
 *  MigrateDecision: labelA=reason ("balance"/"evacuate"/"maintenance"),
 *                   a=planned moves, b=subject host (-1 when cluster-wide).
 *  SlaViolation:    a=satisfaction (granted/requested), b=demand MHz.
 *  IdleTransition:  labelA=level ("core"/"pkg"), labelB=from state,
 *                   labelC=to state, a=cores affected (1 for package),
 *                   b=seconds the group spent in the from-state,
 *                   c=transition joules charged.
 *  Alert:           labelA=rule name, labelB=rule kind ("above"/"below"/
 *                   "rate_above"/"absence"), labelC=series name,
 *                   a=observed value, b=threshold, c=consecutive buckets
 *                   the condition held before tripping.
 *
 * Every record additionally carries the causal context current when it was
 * recorded: `cause` is the decision id responsible for it (0 = none) and
 * `causeSeq` the sequence number of the record announcing that decision
 * (0 = unknown). Decision records carry their own id in `cause`.
 */
struct JournalEvent
{
    std::int64_t timeUs = 0; ///< simulated time, microseconds
    std::uint64_t seq = 0;   ///< insertion sequence (assigned by record(),
                             ///< starts at 1; 0 means "no record")
    std::uint64_t cause = 0;
    std::uint64_t causeSeq = 0;
    EventKind kind = EventKind::PowerTransition;
    TrackDomain domain = TrackDomain::Host;
    std::int32_t track = 0; ///< host/VM id within the domain
    LabelId labelA = 0;
    LabelId labelB = 0;
    LabelId labelC = 0;
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
};

/**
 * Thread-private staging buffer for events built away from the journal.
 *
 * The journal itself is single-threaded: record() mutates the ring,
 * assigns sequence numbers and reads the ambient TraceContext, and
 * intern() mutates the label table. Sharded evaluation loops therefore
 * append into one JournalStage per shard — plain vector pushes touching
 * nothing shared — and the owner flushes the stages in shard index order
 * on the main thread, which reproduces the exact record order (and hence
 * sequence numbers) of the sequential sweep.
 *
 * Only label-free events (or events whose labels were interned up front
 * on the main thread) may be staged: intern() must never be called from
 * a shard body.
 */
class JournalStage
{
  public:
    /** Stage a raw event (seq/cause are assigned at flush time). */
    void record(const JournalEvent &event) { staged_.push_back(event); }

    /** Stage an SLA-violation sample (label-free by construction). */
    void slaViolation(std::int64_t t_us, std::int32_t vm,
                      double satisfaction, double demand_mhz);

    bool empty() const { return staged_.empty(); }
    std::size_t size() const { return staged_.size(); }
    void clear() { staged_.clear(); }

  private:
    friend class EventJournal;
    std::vector<JournalEvent> staged_;
};

/** Preallocated ring buffer of typed events plus the label/track tables. */
class EventJournal
{
  public:
    EventJournal() = default;

    EventJournal(const EventJournal &) = delete;
    EventJournal &operator=(const EventJournal &) = delete;

    /**
     * (Re)initialize: preallocates @p capacity events when enabling and
     * releases the buffer when disabling. Existing events are discarded.
     */
    void configure(std::size_t capacity, bool enabled);

    bool enabled() const { return enabled_; }

    /** @name Label interning */
    ///@{
    /**
     * Intern @p label and return its id; the empty string is always id 0.
     * No-op returning 0 when the journal is disabled. The table saturates
     * at 65535 labels (further strings map to 0) — far beyond the phase,
     * state and reason vocabulary of a run.
     */
    LabelId intern(std::string_view label);

    /** The string behind an id ("" for unknown ids). */
    const std::string &label(LabelId id) const;

    /** Number of interned labels (including the empty string). */
    std::size_t labelCount() const { return labels_.size(); }
    ///@}

    /** @name Track registry */
    ///@{
    /**
     * Give a (domain, id) timeline a display name (e.g. host 3 ->
     * "host03"). Registration is init-time and idempotent; it works even
     * while disabled so tracks named at construction keep their names if
     * telemetry is enabled later.
     */
    void registerTrack(TrackDomain domain, std::int32_t track,
                       std::string_view name);

    /**
     * Allocate a fresh track id in @p domain (from a high base so it never
     * collides with natural host/VM ids) and register its name.
     */
    std::int32_t allocateTrack(TrackDomain domain, std::string_view name);

    /** Display name of a track ("" when never registered). */
    const std::string &trackName(TrackDomain domain,
                                 std::int32_t track) const;
    ///@}

    /** @name Recording (all early-out when disabled) */
    ///@{
    /**
     * Append a raw event; assigns its sequence number (starting at 1) and,
     * when the event carries no cause of its own, stamps the ambient
     * TraceContext onto it.
     * @return the assigned sequence number (0 when disabled).
     */
    std::uint64_t record(JournalEvent event);

    void powerTransition(std::int64_t t_us, std::int32_t host,
                         std::string_view from, std::string_view to,
                         std::string_view state, double phase_seconds,
                         double joules);
    void migrationStart(std::int64_t t_us, std::int32_t vm,
                        std::int32_t source, std::int32_t dest,
                        double expected_seconds);
    void migrationFinish(std::int64_t t_us, std::int32_t vm,
                         std::int32_t source, std::int32_t dest,
                         double seconds);
    void migrationAbort(std::int64_t t_us, std::int32_t vm,
                        std::int32_t source, std::int32_t dest,
                        std::string_view reason);
    void forecast(std::int64_t t_us, std::string_view predictor,
                  double forecast_value, double actual);
    void sleepDecision(std::int64_t t_us, std::int32_t host,
                       std::string_view state,
                       double expected_idle_seconds, double idle_watts = 0.0,
                       double sleep_watts = 0.0);
    void wakeDecision(std::int64_t t_us, std::int32_t host,
                      std::string_view reason);
    /** @return the record's sequence number, for TraceScope::setCauseSeq. */
    std::uint64_t migrateDecision(std::int64_t t_us, std::string_view reason,
                                  int planned_moves,
                                  std::int32_t subject_host);
    void slaViolation(std::int64_t t_us, std::int32_t vm,
                      double satisfaction, double demand_mhz);
    void idleTransition(std::int64_t t_us, std::int32_t host,
                        std::string_view level, std::string_view from,
                        std::string_view to, int cores, double from_seconds,
                        double joules);
    /** Record a watchdog alert. Carries the ambient TraceContext like any
     *  other record, so the decision active when the rule tripped is
     *  recoverable via trace_analyze.
     *  @return the record's sequence number (0 when disabled). */
    std::uint64_t alert(std::int64_t t_us, std::string_view rule,
                        std::string_view rule_kind, std::string_view series,
                        double value, double threshold, int buckets);

    /**
     * Record every event staged in @p stage, in staging order, then clear
     * the stage. Must run on the journal's (main) thread: this is where
     * sequence numbers are assigned and the ambient TraceContext is
     * stamped, exactly as if each event had been record()ed directly.
     * @return the number of events recorded (0 when disabled; the stage
     *         is cleared either way).
     */
    std::size_t flush(JournalStage &stage);
    ///@}

    /** @name Inspection */
    ///@{
    /** Events currently retained (<= capacity). */
    std::size_t size() const { return size_; }

    std::size_t capacity() const { return events_.size(); }

    /** Total events ever recorded, including overwritten ones. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to ring wraparound. */
    std::uint64_t dropped() const
    {
        return recorded_ - static_cast<std::uint64_t>(size_);
    }

    /**
     * Retained events in chronological order; ties resolve in insertion
     * order (stable), so out-of-order recording cannot scramble causality
     * within one source.
     */
    std::vector<JournalEvent> sortedEvents() const;

    /** Drop all events (labels and tracks survive). */
    void clear();
    ///@}

  private:
    bool enabled_ = false;
    std::vector<JournalEvent> events_; ///< ring storage, preallocated
    std::size_t head_ = 0;             ///< next write position
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t nextSeq_ = 1; ///< 0 is reserved for "no record"

    std::vector<std::string> labels_{std::string()};
    std::unordered_map<std::string, LabelId> labelIndex_{{std::string(), 0}};

    std::unordered_map<std::uint64_t, std::string> trackNames_;
    std::int32_t nextAllocatedTrack_ = 1 << 20;
};

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_EVENT_JOURNAL_HPP
