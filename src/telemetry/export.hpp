/**
 * @file
 * Exporters for the telemetry subsystem.
 *
 * Three formats, three audiences:
 *  - JSONL journal dump: one flat JSON object per event; machine-greppable
 *    and the input format of the trace_inspect CLI.
 *  - CSV metric series: the rows collected by Telemetry::sampleSeries(),
 *    ready for a spreadsheet or pandas.
 *  - Chrome trace-event JSON: loads in chrome://tracing and Perfetto; one
 *    track per host with spans for power states, one track per migrating
 *    VM, instant events for manager decisions and SLA violations, and
 *    counter tracks for the sampled gauges.
 */

#ifndef VPM_TELEMETRY_EXPORT_HPP
#define VPM_TELEMETRY_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "telemetry/telemetry.hpp"

namespace vpm::telemetry {

/**
 * RFC 4180 CSV quoting: a cell containing a comma, quote, CR or LF is
 * wrapped in quotes with embedded quotes doubled; anything else passes
 * through untouched. Shared by every CSV writer (metric series,
 * trace_inspect) so user-supplied strings — watchdog rule names, track
 * names — cannot break row structure.
 */
std::string csvQuote(const std::string &cell);

/** One event per line; see DESIGN.md for the per-kind field layout. */
void writeJournalJsonl(const EventJournal &journal, std::ostream &out);

/** Header row then one row per sampleSeries() call. */
void writeMetricsCsv(const Telemetry &telemetry, std::ostream &out);

/** Chrome trace-event JSON (chrome://tracing / Perfetto loadable). */
void writeChromeTrace(const Telemetry &telemetry, std::ostream &out);

/**
 * Write the full export triple derived from one base path: the Chrome
 * trace at @p chrome_path itself, the journal next to it with a .jsonl
 * extension, and the metric series with a .csv extension (replacing a
 * trailing ".json" when present, appending otherwise).
 * @return false if any file could not be opened (a message is printed).
 */
bool writeTraceFiles(const Telemetry &telemetry,
                     const std::string &chrome_path);

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_EXPORT_HPP
