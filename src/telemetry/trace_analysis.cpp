#include "telemetry/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <set>

#include "telemetry/event_journal.hpp"

namespace vpm::telemetry {

namespace {

/** Deterministic double formatting, mirroring the JSONL exporter's. */
std::string
fmtDouble(double v)
{
    char buf[32];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Value of a top-level "key":<number> pair, if present. */
std::optional<double>
findNumber(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    const char *start = line.c_str() + pos + needle.size();
    char *end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start)
        return std::nullopt;
    return value;
}

/** Value of a top-level "key":"string" pair, if present. */
std::optional<std::string>
findString(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    std::string out;
    for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c == '\\' && i + 1 < line.size()) {
            out += line[++i];
        } else if (c == '"') {
            return out;
        } else {
            out += c;
        }
    }
    return std::nullopt;
}

double
usToS(std::int64_t us)
{
    return static_cast<double>(us) * 1e-6;
}

} // namespace

std::vector<TraceRecord>
recordsFromJournal(const EventJournal &journal)
{
    std::vector<TraceRecord> out;
    for (const JournalEvent &ev : journal.sortedEvents()) {
        TraceRecord rec;
        rec.timeUs = ev.timeUs;
        rec.seq = ev.seq;
        rec.kind = toString(ev.kind);
        rec.track = journal.trackName(ev.domain, ev.track);
        if (rec.track.empty())
            rec.track =
                std::string(toString(ev.domain)) + std::to_string(ev.track);
        if (ev.domain == TrackDomain::Host)
            rec.host = ev.track;
        else if (ev.domain == TrackDomain::Vm)
            rec.vm = ev.track;
        rec.cause = ev.cause;
        rec.causeSeq = ev.causeSeq;
        rec.textA = journal.label(ev.labelA);
        rec.textB = journal.label(ev.labelB);
        rec.textC = journal.label(ev.labelC);
        rec.a = ev.a;
        rec.b = ev.b;
        rec.c = ev.c;
        out.push_back(std::move(rec));
    }
    return out;
}

bool
parseJournalLine(const std::string &line, TraceRecord &out)
{
    if (line.empty())
        return false;
    const auto t = findNumber(line, "t_us");
    const auto kind = findString(line, "kind");
    if (!t || !kind)
        return false;

    TraceRecord rec;
    rec.timeUs = static_cast<std::int64_t>(*t);
    rec.kind = *kind;
    if (const auto v = findNumber(line, "seq"))
        rec.seq = static_cast<std::uint64_t>(*v);
    if (const auto v = findString(line, "track"))
        rec.track = *v;
    if (const auto v = findNumber(line, "host"))
        rec.host = static_cast<std::int32_t>(*v);
    if (const auto v = findNumber(line, "vm"))
        rec.vm = static_cast<std::int32_t>(*v);
    if (const auto v = findNumber(line, "cause"))
        rec.cause = static_cast<std::uint64_t>(*v);
    if (const auto v = findNumber(line, "cause_seq"))
        rec.causeSeq = static_cast<std::uint64_t>(*v);

    // Undo the per-kind field naming back into the JournalEvent slots.
    const auto text = [&](const char *key, std::string &slot) {
        if (const auto v = findString(line, key))
            slot = *v;
    };
    const auto num = [&](const char *key, double &slot) {
        if (const auto v = findNumber(line, key))
            slot = *v;
    };
    if (rec.kind == "power_transition") {
        text("from", rec.textA);
        text("to", rec.textB);
        text("state", rec.textC);
        num("dur_s", rec.a);
        num("joules", rec.b);
    } else if (rec.kind == "migration_start") {
        num("src", rec.a);
        num("dst", rec.b);
        num("expected_s", rec.c);
    } else if (rec.kind == "migration_finish") {
        num("src", rec.a);
        num("dst", rec.b);
        num("dur_s", rec.c);
    } else if (rec.kind == "migration_abort") {
        text("reason", rec.textA);
        num("src", rec.a);
        num("dst", rec.b);
    } else if (rec.kind == "forecast") {
        text("predictor", rec.textA);
        num("forecast", rec.a);
        num("actual", rec.b);
    } else if (rec.kind == "sleep_decision") {
        text("state", rec.textA);
        num("expected_idle_s", rec.a);
        num("idle_w", rec.b);
        num("sleep_w", rec.c);
    } else if (rec.kind == "wake_decision") {
        text("reason", rec.textA);
    } else if (rec.kind == "migrate_decision") {
        text("reason", rec.textA);
        num("moves", rec.a);
        num("subject_host", rec.b);
    } else if (rec.kind == "sla_violation") {
        num("satisfaction", rec.a);
        num("demand_mhz", rec.b);
    } else if (rec.kind == "idle_transition") {
        text("level", rec.textA);
        text("from", rec.textB);
        text("to", rec.textC);
        num("cores", rec.a);
        num("dur_s", rec.b);
        num("joules", rec.c);
    } else if (rec.kind == "alert") {
        text("rule", rec.textA);
        text("op", rec.textB);
        text("series", rec.textC);
        num("value", rec.a);
        num("threshold", rec.b);
        num("buckets", rec.c);
    }
    out = std::move(rec);
    return true;
}

std::vector<TraceRecord>
readJournalFile(std::istream &in)
{
    std::vector<TraceRecord> out;
    std::string line;
    TraceRecord rec;
    while (std::getline(in, line)) {
        if (parseJournalLine(line, rec))
            out.push_back(std::move(rec));
    }
    return out;
}

namespace {

/** One completed migration with its reconstructed start time. */
struct FinishedMigration
{
    std::int64_t startUs;
    std::int64_t finishUs;
    std::int32_t dst;
};

/** Per-host transition index plus lookup helpers. */
struct TransitionIndex
{
    std::map<std::int32_t, std::vector<const TraceRecord *>> byHost;
    std::set<const TraceRecord *> used; ///< fallback matching bookkeeping

    /**
     * First transition on @p host at or after @p fromUs whose closed phase
     * is @p from (and, when @p to is non-null, whose next phase is @p to).
     * With a non-zero @p cause only records stamped with it match; with
     * cause 0 (legacy traces) the first unused record matches.
     */
    const TraceRecord *
    find(std::int32_t host, std::int64_t fromUs, const char *from,
         const char *to, std::uint64_t cause)
    {
        const auto it = byHost.find(host);
        if (it == byHost.end())
            return nullptr;
        for (const TraceRecord *rec : it->second) {
            if (rec->timeUs < fromUs || rec->textA != from)
                continue;
            if (to && rec->textB != to)
                continue;
            if (cause != 0) {
                if (rec->cause == cause)
                    return rec;
            } else if (!used.contains(rec)) {
                used.insert(rec);
                return rec;
            }
        }
        return nullptr;
    }

    /** Any transition closing a @p from span at or after @p fromUs,
     *  regardless of cause. Distinguishes "the journal ended before the
     *  span closed" (truncated) from "the span closed under the wrong
     *  cause" (a broken chain). */
    bool
    any(std::int32_t host, std::int64_t fromUs, const char *from) const
    {
        const auto it = byHost.find(host);
        if (it == byHost.end())
            return false;
        for (const TraceRecord *rec : it->second) {
            if (rec->timeUs >= fromUs && rec->textA == from)
                return true;
        }
        return false;
    }
};

} // namespace

TraceAnalysis
analyzeTrace(const std::vector<TraceRecord> &records,
             const AnalyzerOptions &options)
{
    TraceAnalysis analysis;

    TransitionIndex transitions;
    std::vector<FinishedMigration> migrations;
    std::vector<const TraceRecord *> wake_decisions, sleep_decisions,
        violations;

    for (const TraceRecord &rec : records) {
        if (rec.kind == "power_transition" && rec.host >= 0) {
            transitions.byHost[rec.host].push_back(&rec);
        } else if (rec.kind == "migration_finish") {
            const auto dur_us = static_cast<std::int64_t>(rec.c * 1e6 + 0.5);
            migrations.push_back({rec.timeUs - dur_us, rec.timeUs,
                                  static_cast<std::int32_t>(rec.b)});
        } else if (rec.kind == "wake_decision") {
            wake_decisions.push_back(&rec);
        } else if (rec.kind == "sleep_decision") {
            sleep_decisions.push_back(&rec);
        } else if (rec.kind == "sla_violation") {
            violations.push_back(&rec);
        } else if (rec.kind == "idle_transition") {
            ++analysis.idleTransitions;
            if (rec.cause != 0)
                ++analysis.idleTransitionsAttributed;
            analysis.idleTransitionJoules += rec.c;
        } else if (rec.kind == "alert") {
            const bool known_op = rec.textB == "above" ||
                                  rec.textB == "below" ||
                                  rec.textB == "rate_above" ||
                                  rec.textB == "absence";
            if (rec.textA.empty() || !known_op || rec.c < 1.0) {
                ++analysis.malformedAlerts;
                continue;
            }
            AlertSummary *summary = nullptr;
            for (AlertSummary &existing : analysis.alerts) {
                if (existing.rule == rec.textA) {
                    summary = &existing;
                    break;
                }
            }
            if (!summary) {
                AlertSummary fresh;
                fresh.rule = rec.textA;
                fresh.op = rec.textB;
                fresh.series = rec.textC;
                fresh.firstUs = rec.timeUs;
                fresh.firstCause = rec.cause;
                analysis.alerts.push_back(std::move(fresh));
                summary = &analysis.alerts.back();
            }
            ++summary->count;
            summary->lastUs = rec.timeUs;
            if (rec.cause != 0)
                ++summary->attributed;
        }
    }

    const auto window_us =
        static_cast<std::int64_t>(options.respreadWindowS * 1e6 + 0.5);

    // ---- Wake chains -----------------------------------------------------
    for (const TraceRecord *wd : wake_decisions) {
        WakeChain chain;
        chain.decisionId = wd->cause;
        chain.host = wd->host;
        chain.hostName = wd->track;
        chain.reason = wd->textA;
        chain.decisionUs = wd->timeUs;

        // The exit's beginning is journaled as the record *closing* the
        // Asleep span. With a latched wake it appears only once the entry
        // completes — that gap is the decision's wait component.
        const TraceRecord *exit_start = transitions.find(
            wd->host, wd->timeUs, "Asleep", "Exiting", chain.decisionId);
        if (exit_start) {
            chain.exitStartUs = exit_start->timeUs;
            const TraceRecord *on =
                transitions.find(wd->host, exit_start->timeUs, "Exiting",
                                 "On", chain.decisionId);
            if (on)
                chain.onUs = on->timeUs;
        }

        if (chain.onUs >= 0) {
            // Respread: migrations landing on the woken host that started
            // within the window after it came On.
            chain.serviceUs = chain.onUs;
            for (const FinishedMigration &mig : migrations) {
                if (mig.dst != chain.host || mig.startUs < chain.onUs ||
                    mig.startUs > chain.onUs + window_us)
                    continue;
                ++chain.inboundMigrations;
                chain.serviceUs = std::max(chain.serviceUs, mig.finishUs);
            }
            chain.waitS = usToS(chain.exitStartUs - chain.decisionUs);
            chain.resumeS = usToS(chain.onUs - chain.exitStartUs);
            chain.respreadS = usToS(chain.serviceUs - chain.onUs);
            chain.endToEndS = usToS(chain.serviceUs - chain.decisionUs);
            chain.complete = true;
        } else {
            // Missing records are legitimate only when the journal ended
            // while the host was still mid-transition: no record exists
            // anywhere that would have closed the missing span.
            const char *missing_from = exit_start ? "Exiting" : "Asleep";
            const std::int64_t after =
                exit_start ? exit_start->timeUs : wd->timeUs;
            chain.truncated =
                !transitions.any(wd->host, after, missing_from);
        }
        analysis.wakes.push_back(std::move(chain));
    }

    // ---- Sleep chains ----------------------------------------------------
    for (const TraceRecord *sd : sleep_decisions) {
        SleepChain chain;
        chain.decisionId = sd->cause;
        chain.host = sd->host;
        chain.hostName = sd->track;
        chain.state = sd->textA;
        chain.decisionUs = sd->timeUs;
        chain.idleW = sd->b;
        chain.sleepW = sd->c;

        double spent_j = 0.0, episode_s = 0.0;
        const TraceRecord *entry = transitions.find(
            sd->host, sd->timeUs, "Entering", "Asleep", chain.decisionId);
        const TraceRecord *woke = nullptr;
        if (entry) {
            chain.entryS = entry->a;
            spent_j += entry->b;
            // The asleep span closes when the wake's exit begins; its
            // cause is the wake decision that ended this episode. Walk
            // past forceOff's Asleep->Asleep re-notes, accumulating.
            std::int64_t at = entry->timeUs;
            for (;;) {
                const TraceRecord *close =
                    transitions.find(sd->host, at, "Asleep", nullptr, 0);
                if (!close)
                    break;
                chain.asleepS += close->a;
                spent_j += close->b;
                at = close->timeUs;
                if (close->textB != "Asleep") {
                    woke = close;
                    break;
                }
            }
        }
        if (woke) {
            chain.wakeUs = woke->timeUs;
            chain.wakeDecisionId = woke->cause;
            const TraceRecord *on = transitions.find(
                sd->host, woke->timeUs, "Exiting", "On", woke->cause);
            if (on) {
                chain.backOnUs = on->timeUs;
                chain.exitS = on->a;
                spent_j += on->b;
            }
        }
        chain.open = chain.backOnUs < 0;
        episode_s = chain.entryS + chain.asleepS + chain.exitS;
        chain.netSavedJ = chain.idleW * episode_s - spent_j;
        chain.grossSavedJ = (chain.idleW - chain.sleepW) * chain.asleepS;
        analysis.sleeps.push_back(std::move(chain));
    }

    // ---- Violation attribution -------------------------------------------
    // Episode windows run from the sleep decision until the woken host is
    // serving again (the matching wake chain's service point when known).
    std::vector<std::int64_t> window_end(analysis.sleeps.size());
    for (std::size_t i = 0; i < analysis.sleeps.size(); ++i) {
        const SleepChain &sc = analysis.sleeps[i];
        std::int64_t end = sc.open ? std::numeric_limits<std::int64_t>::max()
                                   : sc.backOnUs;
        if (sc.wakeDecisionId != 0) {
            for (const WakeChain &wc : analysis.wakes) {
                if (wc.decisionId == sc.wakeDecisionId && wc.serviceUs >= 0)
                    end = std::max(end, wc.serviceUs);
            }
        }
        window_end[i] = end;
    }
    analysis.violations = violations.size();
    for (const TraceRecord *violation : violations) {
        // Latest decision whose window covers the violation; else the
        // latest decision before it (capacity parked earlier and not yet
        // respread is still the cause of a shortfall).
        std::size_t best = analysis.sleeps.size();
        bool best_covers = false;
        for (std::size_t i = 0; i < analysis.sleeps.size(); ++i) {
            const SleepChain &sc = analysis.sleeps[i];
            if (sc.decisionUs > violation->timeUs)
                continue;
            const bool covers = window_end[i] >= violation->timeUs;
            if (best == analysis.sleeps.size() ||
                (covers && !best_covers) ||
                (covers == best_covers &&
                 sc.decisionUs >= analysis.sleeps[best].decisionUs)) {
                best = i;
                best_covers = covers;
            }
        }
        if (best < analysis.sleeps.size()) {
            ++analysis.sleeps[best].violationsCharged;
            ++analysis.violationsAttributed;
        }
    }

    // ---- Summary ---------------------------------------------------------
    int complete = 0;
    for (const WakeChain &chain : analysis.wakes) {
        if (!chain.complete)
            continue;
        ++complete;
        analysis.totalWaitS += chain.waitS;
        analysis.totalResumeS += chain.resumeS;
        analysis.totalRespreadS += chain.respreadS;
        analysis.meanEndToEndS += chain.endToEndS;
        analysis.maxEndToEndS =
            std::max(analysis.maxEndToEndS, chain.endToEndS);
        if (chain.waitS >= chain.resumeS && chain.waitS >= chain.respreadS)
            ++analysis.dominatedByWait;
        else if (chain.resumeS >= chain.respreadS)
            ++analysis.dominatedByResume;
        else
            ++analysis.dominatedByRespread;
    }
    if (complete > 0)
        analysis.meanEndToEndS /= complete;
    return analysis;
}

void
writeAnalysisText(const TraceAnalysis &analysis, std::ostream &out)
{
    char buf[256];
    out << "wake-latency decomposition (" << analysis.wakes.size()
        << " chains)\n";
    if (!analysis.wakes.empty()) {
        std::snprintf(buf, sizeof(buf),
                      "  %-9s %-8s %-20s %12s %9s %9s %11s %12s %5s\n",
                      "decision", "host", "reason", "decided at", "wait s",
                      "resume s", "respread s", "end-to-end s", "migs");
        out << buf;
        for (const WakeChain &chain : analysis.wakes) {
            if (chain.complete) {
                std::snprintf(
                    buf, sizeof(buf),
                    "  #%-8llu %-8s %-20s %11.1fs %9.3f %9.3f %11.3f "
                    "%12.3f %5d\n",
                    static_cast<unsigned long long>(chain.decisionId),
                    chain.hostName.c_str(), chain.reason.c_str(),
                    usToS(chain.decisionUs), chain.waitS, chain.resumeS,
                    chain.respreadS, chain.endToEndS,
                    chain.inboundMigrations);
            } else {
                std::snprintf(
                    buf, sizeof(buf), "  #%-8llu %-8s %-20s %11.1fs %s\n",
                    static_cast<unsigned long long>(chain.decisionId),
                    chain.hostName.c_str(), chain.reason.c_str(),
                    usToS(chain.decisionUs),
                    chain.truncated ? "(truncated by end of journal)"
                                    : "(INCOMPLETE: missing records)");
            }
            out << buf;
        }
        const double total_s = analysis.totalWaitS + analysis.totalResumeS +
                               analysis.totalRespreadS;
        const auto pct = [&](double v) {
            return total_s > 0.0 ? 100.0 * v / total_s : 0.0;
        };
        std::snprintf(buf, sizeof(buf),
                      "  mean end-to-end %.3f s, max %.3f s\n",
                      analysis.meanEndToEndS, analysis.maxEndToEndS);
        out << buf;
        std::snprintf(buf, sizeof(buf),
                      "  critical path: wait %.1f s (%.0f%%), resume %.1f s "
                      "(%.0f%%), respread %.1f s (%.0f%%); dominant in "
                      "%d/%d/%d chains\n",
                      analysis.totalWaitS, pct(analysis.totalWaitS),
                      analysis.totalResumeS, pct(analysis.totalResumeS),
                      analysis.totalRespreadS, pct(analysis.totalRespreadS),
                      analysis.dominatedByWait, analysis.dominatedByResume,
                      analysis.dominatedByRespread);
        out << buf;
    }

    out << "\nper-decision sleep attribution (" << analysis.sleeps.size()
        << " episodes)\n";
    if (!analysis.sleeps.empty()) {
        std::snprintf(buf, sizeof(buf),
                      "  %-9s %-8s %-6s %12s %10s %13s %6s\n", "decision",
                      "host", "state", "decided at", "slept s",
                      "net saved J", "viol");
        out << buf;
        for (const SleepChain &chain : analysis.sleeps) {
            std::snprintf(
                buf, sizeof(buf),
                "  #%-8llu %-8s %-6s %11.1fs %10.1f %13.0f %6llu%s\n",
                static_cast<unsigned long long>(chain.decisionId),
                chain.hostName.c_str(), chain.state.c_str(),
                usToS(chain.decisionUs), chain.asleepS, chain.netSavedJ,
                static_cast<unsigned long long>(chain.violationsCharged),
                chain.open ? "  (still asleep at end of journal)" : "");
            out << buf;
        }
    }

    if (analysis.idleTransitions > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "\nidle-hierarchy transitions: %llu total, %llu attributed to "
            "a decision, %.3f J of transition energy\n",
            static_cast<unsigned long long>(analysis.idleTransitions),
            static_cast<unsigned long long>(
                analysis.idleTransitionsAttributed),
            analysis.idleTransitionJoules);
        out << buf;
    }

    if (!analysis.alerts.empty() || analysis.malformedAlerts > 0) {
        out << "\nwatchdog alerts (" << analysis.alerts.size()
            << " rules tripped)\n";
        std::snprintf(buf, sizeof(buf),
                      "  %-20s %-10s %-24s %6s %12s %12s %10s\n", "rule",
                      "op", "series", "trips", "first at", "last at",
                      "decision");
        out << buf;
        for (const AlertSummary &alert : analysis.alerts) {
            char cause[24];
            if (alert.firstCause != 0)
                std::snprintf(cause, sizeof(cause), "#%llu",
                              static_cast<unsigned long long>(
                                  alert.firstCause));
            else
                std::snprintf(cause, sizeof(cause), "-");
            std::snprintf(
                buf, sizeof(buf),
                "  %-20s %-10s %-24s %6llu %11.1fs %11.1fs %10s\n",
                alert.rule.c_str(), alert.op.c_str(), alert.series.c_str(),
                static_cast<unsigned long long>(alert.count),
                usToS(alert.firstUs), usToS(alert.lastUs), cause);
            out << buf;
        }
        if (analysis.malformedAlerts > 0) {
            std::snprintf(buf, sizeof(buf),
                          "  %llu MALFORMED alert records\n",
                          static_cast<unsigned long long>(
                              analysis.malformedAlerts));
            out << buf;
        }
    }

    std::snprintf(buf, sizeof(buf),
                  "\nSLA violations: %llu total, %llu attributed, %llu "
                  "unattributed\n",
                  static_cast<unsigned long long>(analysis.violations),
                  static_cast<unsigned long long>(
                      analysis.violationsAttributed),
                  static_cast<unsigned long long>(
                      analysis.violations - analysis.violationsAttributed));
    out << buf;
}

void
writeAnalysisJson(const TraceAnalysis &analysis, std::ostream &out)
{
    out << "{\"wakes\":[";
    bool first = true;
    for (const WakeChain &chain : analysis.wakes) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"decision\":" << chain.decisionId
            << ",\"host\":" << chain.host << ",\"host_name\":\""
            << jsonEscape(chain.hostName) << "\",\"reason\":\""
            << jsonEscape(chain.reason)
            << "\",\"decision_us\":" << chain.decisionUs
            << ",\"complete\":" << (chain.complete ? "true" : "false")
            << ",\"truncated\":" << (chain.truncated ? "true" : "false");
        if (chain.complete) {
            out << ",\"wait_s\":" << fmtDouble(chain.waitS)
                << ",\"resume_s\":" << fmtDouble(chain.resumeS)
                << ",\"respread_s\":" << fmtDouble(chain.respreadS)
                << ",\"end_to_end_s\":" << fmtDouble(chain.endToEndS)
                << ",\"inbound_migrations\":" << chain.inboundMigrations;
        }
        out << '}';
    }
    out << "],\"sleeps\":[";
    first = true;
    for (const SleepChain &chain : analysis.sleeps) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"decision\":" << chain.decisionId
            << ",\"host\":" << chain.host << ",\"host_name\":\""
            << jsonEscape(chain.hostName) << "\",\"state\":\""
            << jsonEscape(chain.state)
            << "\",\"decision_us\":" << chain.decisionUs
            << ",\"entry_s\":" << fmtDouble(chain.entryS)
            << ",\"asleep_s\":" << fmtDouble(chain.asleepS)
            << ",\"exit_s\":" << fmtDouble(chain.exitS)
            << ",\"net_saved_j\":" << fmtDouble(chain.netSavedJ)
            << ",\"gross_saved_j\":" << fmtDouble(chain.grossSavedJ)
            << ",\"wake_decision\":" << chain.wakeDecisionId
            << ",\"violations_charged\":" << chain.violationsCharged
            << ",\"open\":" << (chain.open ? "true" : "false") << '}';
    }
    out << "],\"alerts\":[";
    first = true;
    for (const AlertSummary &alert : analysis.alerts) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"rule\":\"" << jsonEscape(alert.rule) << "\",\"op\":\""
            << jsonEscape(alert.op) << "\",\"series\":\""
            << jsonEscape(alert.series) << "\",\"count\":" << alert.count
            << ",\"first_us\":" << alert.firstUs
            << ",\"last_us\":" << alert.lastUs
            << ",\"first_cause\":" << alert.firstCause
            << ",\"attributed\":" << alert.attributed << '}';
    }
    out << "],\"malformed_alerts\":" << analysis.malformedAlerts
        << ",\"violations\":{\"total\":" << analysis.violations
        << ",\"attributed\":" << analysis.violationsAttributed
        << "},\"idle_transitions\":{\"total\":" << analysis.idleTransitions
        << ",\"attributed\":" << analysis.idleTransitionsAttributed
        << ",\"joules\":" << fmtDouble(analysis.idleTransitionJoules)
        << "},\"summary\":{\"wake_chains\":" << analysis.wakes.size()
        << ",\"total_wait_s\":" << fmtDouble(analysis.totalWaitS)
        << ",\"total_resume_s\":" << fmtDouble(analysis.totalResumeS)
        << ",\"total_respread_s\":" << fmtDouble(analysis.totalRespreadS)
        << ",\"mean_end_to_end_s\":" << fmtDouble(analysis.meanEndToEndS)
        << ",\"max_end_to_end_s\":" << fmtDouble(analysis.maxEndToEndS)
        << ",\"dominant\":{\"wait\":" << analysis.dominatedByWait
        << ",\"resume\":" << analysis.dominatedByResume
        << ",\"respread\":" << analysis.dominatedByRespread << "}}}\n";
}

bool
analysisPassesChecks(const TraceAnalysis &analysis,
                     const AnalyzerOptions &options, std::string *why)
{
    char buf[256];
    for (const WakeChain &chain : analysis.wakes) {
        if (chain.truncated)
            continue;
        if (!chain.complete) {
            if (why) {
                std::snprintf(
                    buf, sizeof(buf),
                    "wake chain (decision %llu, host %s) is missing its "
                    "exit or resume transition",
                    static_cast<unsigned long long>(chain.decisionId),
                    chain.hostName.c_str());
                *why = buf;
            }
            return false;
        }
        const double sum = chain.waitS + chain.resumeS + chain.respreadS;
        const double tolerance_s =
            static_cast<double>(options.toleranceUs) * 1e-6;
        if (std::fabs(sum - chain.endToEndS) > tolerance_s + 1e-12) {
            if (why) {
                std::snprintf(
                    buf, sizeof(buf),
                    "wake chain (decision %llu) components sum to %.6f s "
                    "but end-to-end is %.6f s",
                    static_cast<unsigned long long>(chain.decisionId), sum,
                    chain.endToEndS);
                *why = buf;
            }
            return false;
        }
    }
    if (analysis.malformedAlerts > 0) {
        if (why) {
            std::snprintf(buf, sizeof(buf),
                          "%llu malformed alert records (missing rule/op or "
                          "non-positive streak)",
                          static_cast<unsigned long long>(
                              analysis.malformedAlerts));
            *why = buf;
        }
        return false;
    }
    if (analysis.violationsAttributed < analysis.violations) {
        if (why) {
            std::snprintf(buf, sizeof(buf),
                          "%llu of %llu SLA violations not attributable to "
                          "a sleep decision",
                          static_cast<unsigned long long>(
                              analysis.violations -
                              analysis.violationsAttributed),
                          static_cast<unsigned long long>(
                              analysis.violations));
            *why = buf;
        }
        return false;
    }
    if (why)
        why->clear();
    return true;
}

} // namespace vpm::telemetry
