/**
 * @file
 * Declarative watchdog rules over the time-series store.
 *
 * A watchdog turns the passive telemetry stream into an active one: each
 * time the store seals buckets (TimeSeriesStore::flushAt), the watchdog
 * re-evaluates a small set of declarative rules against the freshly sealed
 * buckets and emits an `alert` journal record when one trips. Because
 * alerts go through EventJournal::record() they pick up the ambient causal
 * TraceContext for free — `trace_analyze` can answer "which management
 * decision was in flight when the SLA alert fired".
 *
 * Rule grammar (JSON, parsed with the shared mini-parser):
 *
 * ```json
 * {
 *   "rules": [
 *     {
 *       "name": "sla-burn",            // required, unique
 *       "series": "sla.violations",    // required, a store series name
 *       "kind": "above",               // above | below | rate_above | absence
 *       "threshold": 25.0,             // compared value (unused by absence)
 *       "for_buckets": 3,              // consecutive buckets before tripping
 *       "agg": "sum"                   // last|min|max|mean|sum|count (default last)
 *     }
 *   ]
 * }
 * ```
 *
 * Semantics per sealed bucket of the rule's series:
 *  - `above` / `below`: the chosen aggregate is > / < threshold.
 *  - `rate_above`: the aggregate's delta vs. the previous sealed bucket
 *    is > threshold (first bucket never satisfies it).
 *  - `absence`: the series sealed no bucket covering this flush interval
 *    (threshold ignored). Evaluated against wall buckets, so a silent
 *    series still trips.
 *
 * Hysteresis: a rule trips once after `for_buckets` *consecutive*
 * satisfying buckets, then stays latched until one non-satisfying bucket
 * re-arms it. Evaluation is pure over the sealed-bucket sequence, so alert
 * records are byte-identical at any thread count like everything else.
 */

#ifndef VPM_TELEMETRY_WATCHDOG_HPP
#define VPM_TELEMETRY_WATCHDOG_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace vpm::telemetry {

class EventJournal;

/** Which aggregate channel of a bucket a rule compares. */
enum class WatchAgg : std::uint8_t
{
    Last,
    Min,
    Max,
    Mean,
    Sum,
    Count,
};

const char *toString(WatchAgg agg);

/** Rule comparison kinds. */
enum class WatchKind : std::uint8_t
{
    Above,     ///< aggregate > threshold
    Below,     ///< aggregate < threshold
    RateAbove, ///< aggregate delta vs. previous bucket > threshold
    Absence,   ///< series sealed nothing in the flush interval
};

const char *toString(WatchKind kind);

/** One parsed rule. */
struct WatchRule
{
    std::string name;
    std::string series;
    WatchKind kind = WatchKind::Above;
    WatchAgg agg = WatchAgg::Last;
    double threshold = 0.0;
    int forBuckets = 1; ///< consecutive satisfying buckets before tripping
};

/** An alert the watchdog raised (also journaled as an `alert` record). */
struct WatchAlert
{
    std::string rule;
    std::int64_t timeUs = 0; ///< bucket start that completed the streak
    double value = 0.0;      ///< observed aggregate (or delta for rate)
    double threshold = 0.0;
    int buckets = 0; ///< streak length at trip time
};

/**
 * The evaluator. Owns parsed rules plus per-rule streak/latch state;
 * borrows the store and journal at evaluation time.
 */
class Watchdog
{
  public:
    Watchdog() = default;

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Parse @p rules_json and replace the rule set (resetting all streak
     * state). @return false with @p error set on malformed JSON, an
     * unknown kind/agg, a missing name/series, a duplicate rule name, or
     * for_buckets < 1.
     */
    bool configure(const std::string &rules_json, std::string *error);

    /** Replace the rule set programmatically (tests, embedders). */
    void configure(std::vector<WatchRule> rules);

    const std::vector<WatchRule> &rules() const { return rules_; }
    bool empty() const { return rules_.empty(); }

    /**
     * Evaluate every rule against buckets of @p store sealed since the
     * previous call, where "sealed" means buckets whose interval ended at
     * or before @p t_us. Emits one `alert` record into @p journal per trip
     * (journal may be disabled; alerts are still returned). Call right
     * after TimeSeriesStore::flushAt(t_us).
     * @return alerts raised by this evaluation, in rule order.
     */
    std::vector<WatchAlert> evaluate(TimeSeriesStore &store,
                                     EventJournal &journal,
                                     std::int64_t t_us);

    /** Total alerts raised since configure(). */
    std::uint64_t alertCount() const { return alertCount_; }

    /** Drop streak/latch state, keep the rules. */
    void reset();

  private:
    struct RuleState
    {
        std::uint32_t series = 0; ///< resolved store series id
        int streak = 0;
        bool latched = false;     ///< tripped; waiting for a clear bucket
        bool havePrev = false;    ///< previous aggregate seen (for rate)
        double prev = 0.0;
        std::int64_t cursorUs = 0; ///< next bucket interval to examine
        bool haveCursor = false;
    };

    std::vector<WatchRule> rules_;
    std::vector<RuleState> states_;
    std::uint64_t alertCount_ = 0;
};

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_WATCHDOG_HPP
