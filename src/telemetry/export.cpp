#include "telemetry/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "telemetry/json_util.hpp"
#include "telemetry/profiler.hpp"

namespace vpm::telemetry {

namespace {

/**
 * Deterministic double formatting: integral values print without a
 * fractional part so goldens stay readable; everything else uses %.6g.
 */
std::string
fmtDouble(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

// JSON string escaping is shared with the profiler and bench writers:
// see json_util.hpp (jsonEscape / writeJsonEscaped).

/** Display name of a track, falling back to "<domain><id>". */
std::string
displayTrack(const EventJournal &journal, TrackDomain domain,
             std::int32_t track)
{
    const std::string &name = journal.trackName(domain, track);
    if (!name.empty())
        return name;
    return std::string(toString(domain)) + std::to_string(track);
}

} // namespace

void
writeJournalJsonl(const EventJournal &journal, std::ostream &out)
{
    PROF_ZONE("telemetry.export.jsonl");
    for (const JournalEvent &ev : journal.sortedEvents()) {
        out << "{\"t_us\":" << ev.timeUs << ",\"seq\":" << ev.seq
            << ",\"kind\":\"" << toString(ev.kind) << "\",\"track\":\""
            << jsonEscape(displayTrack(journal, ev.domain, ev.track))
            << '"';
        // Numeric ids alongside the display name, so analyzers can join
        // host-domain rows against migration src/dst without parsing names.
        if (ev.domain == TrackDomain::Host)
            out << ",\"host\":" << ev.track;
        else if (ev.domain == TrackDomain::Vm)
            out << ",\"vm\":" << ev.track;
        if (ev.cause != 0) {
            out << ",\"cause\":" << ev.cause;
            if (ev.causeSeq != 0)
                out << ",\"cause_seq\":" << ev.causeSeq;
        }
        switch (ev.kind) {
          case EventKind::PowerTransition:
            out << ",\"from\":\"" << jsonEscape(journal.label(ev.labelA))
                << "\",\"to\":\"" << jsonEscape(journal.label(ev.labelB))
                << "\",\"state\":\""
                << jsonEscape(journal.label(ev.labelC)) << "\",\"dur_s\":"
                << fmtDouble(ev.a) << ",\"joules\":" << fmtDouble(ev.b);
            break;
          case EventKind::MigrationStart:
            out << ",\"src\":" << fmtDouble(ev.a)
                << ",\"dst\":" << fmtDouble(ev.b)
                << ",\"expected_s\":" << fmtDouble(ev.c);
            break;
          case EventKind::MigrationFinish:
            out << ",\"src\":" << fmtDouble(ev.a)
                << ",\"dst\":" << fmtDouble(ev.b)
                << ",\"dur_s\":" << fmtDouble(ev.c);
            break;
          case EventKind::MigrationAbort:
            out << ",\"src\":" << fmtDouble(ev.a)
                << ",\"dst\":" << fmtDouble(ev.b) << ",\"reason\":\""
                << jsonEscape(journal.label(ev.labelA)) << '"';
            break;
          case EventKind::Forecast:
            out << ",\"predictor\":\""
                << jsonEscape(journal.label(ev.labelA))
                << "\",\"forecast\":" << fmtDouble(ev.a)
                << ",\"actual\":" << fmtDouble(ev.b);
            break;
          case EventKind::SleepDecision:
            out << ",\"state\":\"" << jsonEscape(journal.label(ev.labelA))
                << "\",\"expected_idle_s\":" << fmtDouble(ev.a)
                << ",\"idle_w\":" << fmtDouble(ev.b)
                << ",\"sleep_w\":" << fmtDouble(ev.c);
            break;
          case EventKind::WakeDecision:
            out << ",\"reason\":\""
                << jsonEscape(journal.label(ev.labelA)) << '"';
            break;
          case EventKind::MigrateDecision:
            out << ",\"reason\":\""
                << jsonEscape(journal.label(ev.labelA))
                << "\",\"moves\":" << fmtDouble(ev.a)
                << ",\"subject_host\":" << fmtDouble(ev.b);
            break;
          case EventKind::SlaViolation:
            out << ",\"satisfaction\":" << fmtDouble(ev.a)
                << ",\"demand_mhz\":" << fmtDouble(ev.b);
            break;
          case EventKind::IdleTransition:
            out << ",\"level\":\"" << jsonEscape(journal.label(ev.labelA))
                << "\",\"from\":\"" << jsonEscape(journal.label(ev.labelB))
                << "\",\"to\":\"" << jsonEscape(journal.label(ev.labelC))
                << "\",\"cores\":" << fmtDouble(ev.a)
                << ",\"dur_s\":" << fmtDouble(ev.b)
                << ",\"joules\":" << fmtDouble(ev.c);
            break;
          case EventKind::Alert:
            out << ",\"rule\":\"" << jsonEscape(journal.label(ev.labelA))
                << "\",\"op\":\"" << jsonEscape(journal.label(ev.labelB))
                << "\",\"series\":\""
                << jsonEscape(journal.label(ev.labelC))
                << "\",\"value\":" << fmtDouble(ev.a)
                << ",\"threshold\":" << fmtDouble(ev.b)
                << ",\"buckets\":" << fmtDouble(ev.c);
            break;
        }
        out << "}\n";
    }
}

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeMetricsCsv(const Telemetry &telemetry, std::ostream &out)
{
    PROF_ZONE("telemetry.export.csv");
    out << "t_us";
    for (const std::string &column : telemetry.seriesColumns())
        out << ',' << csvQuote(column);
    out << '\n';
    for (const SeriesRow &row : telemetry.seriesRows()) {
        out << row.timeUs;
        for (const double v : row.values)
            out << ',' << fmtDouble(v);
        out << '\n';
    }
}

namespace {

/** Chrome trace process ids, one per timeline family. */
constexpr int kPidMetrics = 0;
constexpr int kPidHosts = 1;
constexpr int kPidMigrations = 2;
constexpr int kPidManager = 3;

void
emitMeta(std::ostream &out, int pid, std::int64_t tid, const char *what,
         const std::string &name, bool &first)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
        << jsonEscape(name) << "\"}}";
}

} // namespace

void
writeChromeTrace(const Telemetry &telemetry, std::ostream &out)
{
    PROF_ZONE("telemetry.export.chrome");
    const EventJournal &journal = telemetry.journal();
    const std::vector<JournalEvent> events = journal.sortedEvents();

    out << "{\"traceEvents\":[\n";
    bool first = true;

    emitMeta(out, kPidHosts, 0, "process_name", "hosts", first);
    emitMeta(out, kPidMigrations, 0, "process_name", "migrations", first);
    emitMeta(out, kPidManager, 0, "process_name", "manager", first);
    emitMeta(out, kPidMetrics, 0, "process_name", "metrics", first);

    // Name every track that appears in the journal.
    std::map<std::int32_t, std::string> host_tracks, vm_tracks;
    for (const JournalEvent &ev : events) {
        if (ev.domain == TrackDomain::Host)
            host_tracks.try_emplace(
                ev.track, displayTrack(journal, ev.domain, ev.track));
        else if (ev.domain == TrackDomain::Vm)
            vm_tracks.try_emplace(
                ev.track, displayTrack(journal, ev.domain, ev.track));
    }
    for (const auto &[track, name] : host_tracks)
        emitMeta(out, kPidHosts, track, "thread_name", name, first);
    for (const auto &[track, name] : vm_tracks)
        emitMeta(out, kPidMigrations, track, "thread_name", name, first);

    const auto emit = [&](const std::string &event_json) {
        if (!first)
            out << ",\n";
        first = false;
        out << event_json;
    };

    // Open migrations: start seen, finish/abort pending.
    std::map<std::int32_t, JournalEvent> open_migrations;

    for (const JournalEvent &ev : events) {
        std::ostringstream line;
        switch (ev.kind) {
          case EventKind::PowerTransition: {
            // The event marks the *end* of the from-phase: render that
            // phase as a completed span.
            const std::string &from = journal.label(ev.labelA);
            const std::string &state = journal.label(ev.labelC);
            std::string name = from;
            if (!state.empty() && from != "On")
                name += "(" + state + ")";
            const auto dur_us =
                static_cast<std::int64_t>(ev.a * 1e6 + 0.5);
            line << "{\"ph\":\"X\",\"cat\":\"power\",\"name\":\""
                 << jsonEscape(name) << "\",\"pid\":" << kPidHosts
                 << ",\"tid\":" << ev.track << ",\"ts\":"
                 << ev.timeUs - dur_us << ",\"dur\":" << dur_us
                 << ",\"args\":{\"to\":\""
                 << jsonEscape(journal.label(ev.labelB))
                 << "\",\"joules\":" << fmtDouble(ev.b) << "}}";
            emit(line.str());
            break;
          }
          case EventKind::MigrationStart:
            open_migrations[ev.track] = ev;
            break;
          case EventKind::MigrationFinish:
          case EventKind::MigrationAbort: {
            const auto it = open_migrations.find(ev.track);
            const std::int64_t start_us =
                it != open_migrations.end() ? it->second.timeUs
                                            : ev.timeUs;
            if (it != open_migrations.end())
                open_migrations.erase(it);
            const bool aborted = ev.kind == EventKind::MigrationAbort;
            line << "{\"ph\":\"X\",\"cat\":\"migration\",\"name\":\""
                 << (aborted ? "migrate(aborted)" : "migrate")
                 << " host" << fmtDouble(ev.a) << "->host"
                 << fmtDouble(ev.b) << "\",\"pid\":" << kPidMigrations
                 << ",\"tid\":" << ev.track << ",\"ts\":" << start_us
                 << ",\"dur\":" << ev.timeUs - start_us << ",\"args\":{";
            if (aborted)
                line << "\"reason\":\""
                     << jsonEscape(journal.label(ev.labelA)) << '"';
            else
                line << "\"seconds\":" << fmtDouble(ev.c);
            line << "}}";
            emit(line.str());
            break;
          }
          case EventKind::Forecast:
            line << "{\"ph\":\"C\",\"name\":\"forecast\",\"pid\":"
                 << kPidManager << ",\"tid\":0,\"ts\":" << ev.timeUs
                 << ",\"args\":{\"forecast\":" << fmtDouble(ev.a)
                 << ",\"actual\":" << fmtDouble(ev.b) << "}}";
            emit(line.str());
            break;
          case EventKind::SleepDecision:
            line << "{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"decision\","
                    "\"name\":\"sleep("
                 << jsonEscape(journal.label(ev.labelA)) << ") "
                 << jsonEscape(displayTrack(journal, TrackDomain::Host,
                                            ev.track))
                 << "\",\"pid\":" << kPidManager << ",\"tid\":0,\"ts\":"
                 << ev.timeUs << ",\"args\":{\"expected_idle_s\":"
                 << fmtDouble(ev.a) << "}}";
            emit(line.str());
            break;
          case EventKind::WakeDecision:
            line << "{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"decision\","
                    "\"name\":\"wake "
                 << jsonEscape(displayTrack(journal, TrackDomain::Host,
                                            ev.track))
                 << "\",\"pid\":" << kPidManager << ",\"tid\":0,\"ts\":"
                 << ev.timeUs << ",\"args\":{\"reason\":\""
                 << jsonEscape(journal.label(ev.labelA)) << "\"}}";
            emit(line.str());
            break;
          case EventKind::MigrateDecision:
            line << "{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"decision\","
                    "\"name\":\"migrate("
                 << jsonEscape(journal.label(ev.labelA))
                 << ")\",\"pid\":" << kPidManager << ",\"tid\":0,\"ts\":"
                 << ev.timeUs << ",\"args\":{\"moves\":" << fmtDouble(ev.a)
                 << ",\"subject_host\":" << fmtDouble(ev.b) << "}}";
            emit(line.str());
            break;
          case EventKind::SlaViolation:
            line << "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"sla\","
                    "\"name\":\"SLA violation "
                 << jsonEscape(displayTrack(journal, TrackDomain::Vm,
                                            ev.track))
                 << "\",\"pid\":" << kPidMigrations << ",\"tid\":"
                 << ev.track << ",\"ts\":" << ev.timeUs
                 << ",\"args\":{\"satisfaction\":" << fmtDouble(ev.a)
                 << "}}";
            emit(line.str());
            break;
          case EventKind::Alert:
            line << "{\"ph\":\"i\",\"s\":\"g\",\"cat\":\"alert\","
                    "\"name\":\"alert "
                 << jsonEscape(journal.label(ev.labelA))
                 << "\",\"pid\":" << kPidManager << ",\"tid\":0,\"ts\":"
                 << ev.timeUs << ",\"args\":{\"value\":" << fmtDouble(ev.a)
                 << ",\"threshold\":" << fmtDouble(ev.b) << "}}";
            emit(line.str());
            break;
        }
    }

    // Still-in-flight migrations at the end of the journal: render as
    // zero-duration-from-start spans so they are visible, not lost.
    for (const auto &[track, start] : open_migrations) {
        std::ostringstream line;
        line << "{\"ph\":\"X\",\"cat\":\"migration\",\"name\":\""
                "migrate(in flight) host"
             << fmtDouble(start.a) << "->host" << fmtDouble(start.b)
             << "\",\"pid\":" << kPidMigrations << ",\"tid\":" << track
             << ",\"ts\":" << start.timeUs << ",\"dur\":"
             << static_cast<std::int64_t>(start.c * 1e6 + 0.5)
             << ",\"args\":{\"expected_s\":" << fmtDouble(start.c)
             << "}}";
        emit(line.str());
    }

    // Gauge columns of the sampled series become counter tracks.
    const std::vector<std::string> &columns = telemetry.seriesColumns();
    for (const SeriesRow &row : telemetry.seriesRows()) {
        for (std::size_t i = 0; i < columns.size() &&
                                i < row.values.size(); ++i) {
            if (columns[i].rfind("gauge.", 0) != 0)
                continue;
            const std::string name = columns[i].substr(6);
            std::ostringstream line;
            line << "{\"ph\":\"C\",\"name\":\"" << jsonEscape(name)
                 << "\",\"pid\":" << kPidMetrics << ",\"tid\":0,\"ts\":"
                 << row.timeUs << ",\"args\":{\"value\":"
                 << fmtDouble(row.values[i]) << "}}";
            emit(line.str());
        }
    }

    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
writeTraceFiles(const Telemetry &telemetry, const std::string &chrome_path)
{
    std::string stem = chrome_path;
    if (stem.size() > 5 && stem.substr(stem.size() - 5) == ".json")
        stem = stem.substr(0, stem.size() - 5);

    const auto open = [](std::ofstream &f, const std::string &path) {
        f.open(path);
        if (!f) {
            std::fprintf(stderr,
                         "telemetry: cannot open '%s' for writing\n",
                         path.c_str());
            return false;
        }
        return true;
    };

    std::ofstream chrome, jsonl, csv;
    if (!open(chrome, chrome_path) || !open(jsonl, stem + ".jsonl") ||
        !open(csv, stem + ".csv")) {
        return false;
    }
    writeChromeTrace(telemetry, chrome);
    writeJournalJsonl(telemetry.journal(), jsonl);
    writeMetricsCsv(telemetry, csv);
    return chrome.good() && jsonl.good() && csv.good();
}

} // namespace vpm::telemetry
