#include "telemetry/watchdog.hpp"

#include <limits>

#include "telemetry/event_journal.hpp"
#include "telemetry/json_util.hpp"

namespace vpm::telemetry {

namespace {

double
aggValue(const TsBucket &bucket, WatchAgg agg)
{
    switch (agg) {
      case WatchAgg::Last:
        return bucket.last;
      case WatchAgg::Min:
        return bucket.min;
      case WatchAgg::Max:
        return bucket.max;
      case WatchAgg::Mean:
        return bucket.mean();
      case WatchAgg::Sum:
        return bucket.sum;
      case WatchAgg::Count:
        return static_cast<double>(bucket.count);
    }
    return 0.0;
}

bool
parseAgg(const std::string &name, WatchAgg &out)
{
    if (name == "last")
        out = WatchAgg::Last;
    else if (name == "min")
        out = WatchAgg::Min;
    else if (name == "max")
        out = WatchAgg::Max;
    else if (name == "mean")
        out = WatchAgg::Mean;
    else if (name == "sum")
        out = WatchAgg::Sum;
    else if (name == "count")
        out = WatchAgg::Count;
    else
        return false;
    return true;
}

bool
parseKind(const std::string &name, WatchKind &out)
{
    if (name == "above")
        out = WatchKind::Above;
    else if (name == "below")
        out = WatchKind::Below;
    else if (name == "rate_above")
        out = WatchKind::RateAbove;
    else if (name == "absence")
        out = WatchKind::Absence;
    else
        return false;
    return true;
}

std::int64_t
alignDown(std::int64_t t_us, std::int64_t bucket_us)
{
    return t_us - ((t_us % bucket_us) + bucket_us) % bucket_us;
}

} // namespace

const char *
toString(WatchAgg agg)
{
    switch (agg) {
      case WatchAgg::Last:
        return "last";
      case WatchAgg::Min:
        return "min";
      case WatchAgg::Max:
        return "max";
      case WatchAgg::Mean:
        return "mean";
      case WatchAgg::Sum:
        return "sum";
      case WatchAgg::Count:
        return "count";
    }
    return "unknown";
}

const char *
toString(WatchKind kind)
{
    switch (kind) {
      case WatchKind::Above:
        return "above";
      case WatchKind::Below:
        return "below";
      case WatchKind::RateAbove:
        return "rate_above";
      case WatchKind::Absence:
        return "absence";
    }
    return "unknown";
}

bool
Watchdog::configure(const std::string &rules_json, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    JsonValue doc;
    std::string parse_error;
    if (!parseJson(rules_json, doc, &parse_error))
        return fail("watchdog rules: " + parse_error);
    if (!doc.isObject())
        return fail("watchdog rules: top level must be an object");
    const JsonValue *rules_node = doc.find("rules");
    if (!rules_node || !rules_node->isArray())
        return fail("watchdog rules: missing \"rules\" array");

    std::vector<WatchRule> parsed;
    for (std::size_t i = 0; i < rules_node->array.size(); ++i) {
        const JsonValue &node = rules_node->array[i];
        const std::string at = "rule #" + std::to_string(i) + ": ";
        if (!node.isObject())
            return fail("watchdog " + at + "must be an object");
        WatchRule rule;
        rule.name = stringOr(node.find("name"), "");
        rule.series = stringOr(node.find("series"), "");
        if (rule.name.empty())
            return fail("watchdog " + at + "missing \"name\"");
        if (rule.series.empty())
            return fail("watchdog " + at + "missing \"series\"");
        for (const WatchRule &seen : parsed)
            if (seen.name == rule.name)
                return fail("watchdog " + at + "duplicate name \"" +
                            rule.name + "\"");
        const std::string kind = stringOr(node.find("kind"), "above");
        if (!parseKind(kind, rule.kind))
            return fail("watchdog " + at + "unknown kind \"" + kind + "\"");
        const std::string agg = stringOr(node.find("agg"), "last");
        if (!parseAgg(agg, rule.agg))
            return fail("watchdog " + at + "unknown agg \"" + agg + "\"");
        rule.threshold = numberOr(node.find("threshold"), 0.0);
        const double for_buckets = numberOr(node.find("for_buckets"), 1.0);
        rule.forBuckets = static_cast<int>(for_buckets);
        if (rule.forBuckets < 1 ||
            static_cast<double>(rule.forBuckets) != for_buckets)
            return fail("watchdog " + at +
                        "\"for_buckets\" must be a positive integer");
        parsed.push_back(std::move(rule));
    }
    configure(std::move(parsed));
    return true;
}

void
Watchdog::configure(std::vector<WatchRule> rules)
{
    rules_ = std::move(rules);
    reset();
}

void
Watchdog::reset()
{
    states_.assign(rules_.size(), RuleState{});
    alertCount_ = 0;
}

std::vector<WatchAlert>
Watchdog::evaluate(TimeSeriesStore &store, EventJournal &journal,
                   std::int64_t t_us)
{
    std::vector<WatchAlert> out;
    if (rules_.empty() || !store.enabled())
        return out;
    const std::int64_t bucket_us = store.config().bucketUs;
    // Intervals starting before sealed_end have fully ended by t_us, so
    // flushAt(t_us) has sealed whatever buckets they will ever have.
    const std::int64_t sealed_end = alignDown(t_us, bucket_us);

    for (std::size_t r = 0; r < rules_.size(); ++r) {
        const WatchRule &rule = rules_[r];
        RuleState &state = states_[r];
        if (!state.haveCursor) {
            state.series = store.seriesId(rule.series);
            // Baseline at the series' first sealed bucket: absence means
            // "went silent", not "has not started yet". Until the series
            // seals its first bucket there is nothing to walk — keep
            // re-checking on later evaluations instead of latching a
            // cursor that would turn the pre-data gap into absence.
            const auto first = store.query(
                state.series, std::numeric_limits<std::int64_t>::min() / 4,
                sealed_end - 1);
            if (first.empty())
                continue;
            state.cursorUs = first.front().startUs;
            state.haveCursor = true;
        }
        if (state.cursorUs >= sealed_end)
            continue;
        const auto step = [&](std::int64_t start, const TsBucket *bucket) {
            bool satisfied = false;
            double observed = 0.0;
            switch (rule.kind) {
              case WatchKind::Above:
              case WatchKind::Below:
                if (bucket) {
                    observed = aggValue(*bucket, rule.agg);
                    satisfied = rule.kind == WatchKind::Above
                                    ? observed > rule.threshold
                                    : observed < rule.threshold;
                }
                break;
              case WatchKind::RateAbove:
                if (bucket) {
                    const double value = aggValue(*bucket, rule.agg);
                    if (state.havePrev) {
                        observed = value - state.prev;
                        satisfied = observed > rule.threshold;
                    }
                    state.prev = value;
                    state.havePrev = true;
                } else {
                    // A gap breaks the delta chain; never rate across it.
                    state.havePrev = false;
                }
                break;
              case WatchKind::Absence:
                satisfied = bucket == nullptr;
                break;
            }

            if (satisfied) {
                ++state.streak;
                if (!state.latched && state.streak >= rule.forBuckets) {
                    state.latched = true;
                    ++alertCount_;
                    WatchAlert alert;
                    alert.rule = rule.name;
                    alert.timeUs = start;
                    alert.value = observed;
                    alert.threshold = rule.threshold;
                    alert.buckets = state.streak;
                    journal.alert(alert.timeUs, rule.name,
                                  toString(rule.kind), rule.series,
                                  alert.value, alert.threshold,
                                  alert.buckets);
                    out.push_back(std::move(alert));
                }
            } else {
                state.streak = 0;
                state.latched = false; // re-arm
            }
        };

        if (sealed_end - state.cursorUs == bucket_us) {
            // Steady state: exactly one interval ended since the last
            // evaluation, and sealing is time-ordered, so the newest
            // sealed bucket either IS that interval or the interval is a
            // gap — an O(1) peek instead of a materialized query.
            TsBucket peek;
            const TsBucket *bucket =
                store.lastSealed(state.series, peek) &&
                        peek.startUs == state.cursorUs
                    ? &peek
                    : nullptr;
            step(state.cursorUs, bucket);
        } else {
            // Catch-up after a pause (or first walk): materialize the
            // window and join it against the wall grid.
            const std::vector<TsBucket> sealed =
                store.query(state.series, state.cursorUs, sealed_end - 1);
            std::size_t next = 0;
            for (std::int64_t start = state.cursorUs; start < sealed_end;
                 start += bucket_us) {
                const TsBucket *bucket = nullptr;
                while (next < sealed.size() && sealed[next].startUs < start)
                    ++next;
                if (next < sealed.size() && sealed[next].startUs == start)
                    bucket = &sealed[next++];
                step(start, bucket);
            }
        }
        state.cursorUs = sealed_end;
    }
    return out;
}

} // namespace vpm::telemetry
