/**
 * @file
 * The one JSON escaper and the one JSON mini-parser shared by every
 * telemetry reader/writer.
 *
 * All three JSON writers (journal/Chrome-trace export, profiler reports,
 * bench reports) used to carry their own escape helpers, and two of them
 * silently replaced control characters with spaces — lossy, and in the
 * profiler's case emitted labels Perfetto could not round-trip. Escaping
 * lives here exactly once: `"` and `\` are backslash-escaped, newline and
 * tab use their two-character forms, and every other control character
 * below 0x20 becomes a \u00xx escape, which is the minimal set RFC 8259
 * requires for valid JSON.
 *
 * The parser started life inside bench_report.cpp; the sweep orchestrator
 * (manifests, vpm-sweep-1 matrices) needed the same machinery, so it was
 * promoted here. It is deliberately minimal: objects, arrays, strings,
 * numbers, bools, null — enough for our own schemas plus unknown-field
 * tolerance, with no allocation tricks and positions in error messages.
 */

#ifndef VPM_TELEMETRY_JSON_UTIL_HPP
#define VPM_TELEMETRY_JSON_UTIL_HPP

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vpm::telemetry {

/** Escaped form of @p s for a JSON string literal (no surrounding quotes). */
std::string jsonEscape(std::string_view s);

/** Stream jsonEscape(s) without building the intermediate string. */
void writeJsonEscaped(std::ostream &out, std::string_view s);

/**
 * A parsed JSON document node. Object member order is preserved
 * (insertion-ordered vector of pairs, not a map) so round-trips keep
 * files diffable.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Member lookup on an object node; nullptr when absent. */
    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
};

/**
 * Parse @p text as one complete JSON document.
 * @return false with @p error set (byte offset included) on malformed
 *         input or trailing garbage.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string *error);

/** @name Typed field access with fallbacks (nullptr-tolerant)
 *  The accessors take the result of JsonValue::find() directly, so
 *  `numberOr(obj.find("x"), 0.0)` reads a field in one line whether or
 *  not it exists or has the right type. */
///@{
double numberOr(const JsonValue *value, double fallback);
std::string stringOr(const JsonValue *value, const std::string &fallback);
bool boolOr(const JsonValue *value, bool fallback);
///@}

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_JSON_UTIL_HPP
