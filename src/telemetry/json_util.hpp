/**
 * @file
 * The one JSON string escaper shared by every telemetry exporter.
 *
 * All three JSON writers (journal/Chrome-trace export, profiler reports,
 * bench reports) used to carry their own escape helpers, and two of them
 * silently replaced control characters with spaces — lossy, and in the
 * profiler's case emitted labels Perfetto could not round-trip. Escaping
 * lives here exactly once: `"` and `\` are backslash-escaped, newline and
 * tab use their two-character forms, and every other control character
 * below 0x20 becomes a \u00xx escape, which is the minimal set RFC 8259
 * requires for valid JSON.
 */

#ifndef VPM_TELEMETRY_JSON_UTIL_HPP
#define VPM_TELEMETRY_JSON_UTIL_HPP

#include <iosfwd>
#include <string>
#include <string_view>

namespace vpm::telemetry {

/** Escaped form of @p s for a JSON string literal (no surrounding quotes). */
std::string jsonEscape(std::string_view s);

/** Stream jsonEscape(s) without building the intermediate string. */
void writeJsonEscaped(std::ostream &out, std::string_view s);

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_JSON_UTIL_HPP
