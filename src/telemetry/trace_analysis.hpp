/**
 * @file
 * Causal-chain reconstruction over a telemetry journal.
 *
 * The journal records isolated events; this library links them back into
 * the chains the paper's agility argument is about:
 *
 *  - a *wake chain* per wake decision: decision -> (wait out any in-flight
 *    entry) -> exit transition -> host On -> respread migrations landing on
 *    the woken host. The three components (wait, resume, respread) are cut
 *    from the same timestamps, so they sum to the end-to-end latency by
 *    construction; the interesting checks are completeness (every chain has
 *    its transition records, correctly attributed) and which component
 *    dominates.
 *
 *  - a *sleep chain* per sleep decision: entry span, asleep span, exit
 *    span, with the energy actually spent versus what idling would have
 *    cost (the decision record carries the host's idle and sleep watts so
 *    the journal alone suffices).
 *
 *  - *SLA-violation attribution*: each violation is charged to the sleep
 *    decision whose episode window covers it (latest decision wins when
 *    several hosts slept concurrently), falling back to the most recent
 *    sleep decision before the violation.
 *
 * Input is a neutral TraceRecord stream, obtainable either from a live
 * EventJournal (in-process, used by the benches) or by parsing the JSONL
 * dump (used by tools/trace_analyze) — both reach the same analysis.
 */

#ifndef VPM_TELEMETRY_TRACE_ANALYSIS_HPP
#define VPM_TELEMETRY_TRACE_ANALYSIS_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vpm::telemetry {

class EventJournal;

/**
 * One journal row, journal- and file-format-neutral. The double and text
 * slots mirror JournalEvent's a/b/c and labelA/B/C per-kind layout (see
 * event_journal.hpp); `host`/`vm` are the numeric track ids (-1 when the
 * row is not in that domain).
 */
struct TraceRecord
{
    std::int64_t timeUs = 0;
    std::uint64_t seq = 0;
    std::string kind; ///< wire name, e.g. "power_transition"
    std::string track;
    std::int32_t host = -1;
    std::int32_t vm = -1;
    std::uint64_t cause = 0;
    std::uint64_t causeSeq = 0;
    std::string textA, textB, textC;
    double a = 0.0, b = 0.0, c = 0.0;
};

/** Snapshot a live journal into records (chronological order). */
std::vector<TraceRecord> recordsFromJournal(const EventJournal &journal);

/**
 * Parse one JSONL journal line (as written by writeJournalJsonl) into
 * @p out. @return false for blank or malformed lines (out untouched).
 */
bool parseJournalLine(const std::string &line, TraceRecord &out);

/** Parse a whole JSONL stream, skipping blank/malformed lines. */
std::vector<TraceRecord> readJournalFile(std::istream &in);

/** Analysis knobs. */
struct AnalyzerOptions
{
    /**
     * Inbound migrations starting within this many seconds of the host
     * coming back On count as that wake's respread work (covers the
     * management-period gap between boot and the rebalance that uses the
     * new capacity).
     */
    double respreadWindowS = 180.0;

    /** Decomposition-sum check tolerance, in simulated microseconds. */
    std::int64_t toleranceUs = 1;
};

/** Wake decision -> host serving again, decomposed. */
struct WakeChain
{
    std::uint64_t decisionId = 0;
    std::int32_t host = -1;
    std::string hostName;
    std::string reason;
    std::int64_t decisionUs = 0;
    std::int64_t exitStartUs = -1; ///< exit began (Asleep span closed)
    std::int64_t onUs = -1;        ///< host reached On
    std::int64_t serviceUs = -1;   ///< last respread migration landed

    double waitS = 0.0;     ///< decision -> exit start (latched entries)
    double resumeS = 0.0;   ///< exit start -> On (incl. failed attempts)
    double respreadS = 0.0; ///< On -> last inbound migration landed
    double endToEndS = 0.0; ///< decision -> serving (sum of the above)
    int inboundMigrations = 0;

    bool complete = false;  ///< all transition records found
    bool truncated = false; ///< journal ended mid-transition
};

/** Sleep decision -> back On, with the episode's energy accounting. */
struct SleepChain
{
    std::uint64_t decisionId = 0;
    std::int32_t host = -1;
    std::string hostName;
    std::string state;
    std::int64_t decisionUs = 0;
    std::int64_t wakeUs = -1;   ///< asleep span closed (exit began)
    std::int64_t backOnUs = -1; ///< exit span closed
    std::uint64_t wakeDecisionId = 0; ///< decision that ended the episode

    double entryS = 0.0, asleepS = 0.0, exitS = 0.0;
    double idleW = 0.0, sleepW = 0.0;
    /** idle watts over the whole episode minus joules actually spent. */
    double netSavedJ = 0.0;
    /** (idle - sleep) watts over the asleep span only. */
    double grossSavedJ = 0.0;
    std::uint64_t violationsCharged = 0;

    bool open = false; ///< episode not finished within the journal
};

/** Per-rule roll-up of watchdog `alert` records. */
struct AlertSummary
{
    std::string rule;
    std::string op;     ///< rule kind ("above"/"below"/"rate_above"/...)
    std::string series; ///< watched series name
    std::uint64_t count = 0;
    std::int64_t firstUs = 0; ///< first trip time
    std::int64_t lastUs = 0;  ///< last trip time
    /** Decision id ambient at the first trip (0 = none active). */
    std::uint64_t firstCause = 0;
    /** Trips that carried a non-zero causal decision id. */
    std::uint64_t attributed = 0;
};

/** Everything analyzeTrace() reconstructs. */
struct TraceAnalysis
{
    std::vector<WakeChain> wakes;
    std::vector<SleepChain> sleeps;

    /** Alert roll-ups, in first-trip order. */
    std::vector<AlertSummary> alerts;
    /** Alert records missing their rule name or kind, or with a
     *  non-positive streak length — a malformed emitter or a corrupt
     *  trace; fails analysisPassesChecks(). */
    std::uint64_t malformedAlerts = 0;

    std::uint64_t violations = 0;
    std::uint64_t violationsAttributed = 0;

    /** @name Idle-hierarchy activity (zero when no hierarchy journaled) */
    ///@{
    std::uint64_t idleTransitions = 0;
    /** Transitions carrying a decision id (policy- or manager-caused, as
     *  opposed to legacy/untraced records). */
    std::uint64_t idleTransitionsAttributed = 0;
    double idleTransitionJoules = 0.0;
    ///@}

    /** Component totals over complete wake chains. */
    double totalWaitS = 0.0, totalResumeS = 0.0, totalRespreadS = 0.0;
    /** Chains whose dominant component is wait / resume / respread. */
    int dominatedByWait = 0, dominatedByResume = 0, dominatedByRespread = 0;
    double meanEndToEndS = 0.0, maxEndToEndS = 0.0;
};

TraceAnalysis analyzeTrace(const std::vector<TraceRecord> &records,
                           const AnalyzerOptions &options = {});

/** Human-readable tables (what the benches print at end-of-run). */
void writeAnalysisText(const TraceAnalysis &analysis, std::ostream &out);

/** Machine-readable JSON (one object; stable field order). */
void writeAnalysisJson(const TraceAnalysis &analysis, std::ostream &out);

/**
 * CI gate: every non-truncated wake chain must be complete, its components
 * must sum to the end-to-end latency within the tolerance, and every SLA
 * violation must be attributed to a decision.
 * @param why On failure, filled with a one-line explanation if non-null.
 */
bool analysisPassesChecks(const TraceAnalysis &analysis,
                          const AnalyzerOptions &options = {},
                          std::string *why = nullptr);

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_TRACE_ANALYSIS_HPP
