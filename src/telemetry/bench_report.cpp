#include "telemetry/bench_report.hpp"

#include "stats/ci.hpp"
#include "telemetry/json_util.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

// Build fingerprint macros, normally injected by src/telemetry/CMakeLists.
#ifndef VPM_BUILD_TYPE
#define VPM_BUILD_TYPE "unknown"
#endif
#ifndef VPM_CXX_FLAGS
#define VPM_CXX_FLAGS ""
#endif

namespace vpm::telemetry {

// ---------------------------------------------------------------------------
// Environment fingerprint

BenchEnvironment
currentEnvironment()
{
    BenchEnvironment env;
#if defined(__clang__)
    env.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
    env.compiler = "gcc " __VERSION__;
#else
    env.compiler = "unknown";
#endif
    env.buildType = VPM_BUILD_TYPE;
    env.cxxFlags = VPM_CXX_FLAGS;
#if defined(__unix__) || defined(__APPLE__)
    char host[256] = {0};
    if (gethostname(host, sizeof(host) - 1) == 0)
        env.host = host;
    struct utsname uts{};
    if (uname(&uts) == 0)
        env.os = std::string(uts.sysname) + " " + uts.release + " " +
                 uts.machine;
#endif
    if (env.host.empty())
        env.host = "unknown";
    if (env.os.empty())
        env.os = "unknown";
    return env;
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void
writeEscaped(std::ostream &out, const std::string &text)
{
    out << '"';
    writeJsonEscaped(out, text);
    out << '"';
}

std::string
fmtDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

} // namespace

void
writeBenchJson(const BenchReport &report, std::ostream &out)
{
    out << "{\n  \"schema\": ";
    writeEscaped(out, report.schema);
    out << ",\n  \"bench\": ";
    writeEscaped(out, report.bench);
    out << ",\n  \"quick\": " << (report.quick ? "true" : "false")
        << ",\n  \"profile\": " << (report.profile ? "true" : "false")
        << ",\n  \"repeat\": " << report.repeat
        << ",\n  \"warmup\": " << report.warmup
        << ",\n  \"environment\": {\n    \"compiler\": ";
    writeEscaped(out, report.environment.compiler);
    out << ",\n    \"build_type\": ";
    writeEscaped(out, report.environment.buildType);
    out << ",\n    \"cxx_flags\": ";
    writeEscaped(out, report.environment.cxxFlags);
    out << ",\n    \"host\": ";
    writeEscaped(out, report.environment.host);
    out << ",\n    \"os\": ";
    writeEscaped(out, report.environment.os);
    out << "\n  },\n  \"runs\": [";
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        out << (i ? ", " : "") << "{\"wall_ms\": "
            << fmtDouble(report.runs[i].wallMs)
            << ", \"events\": " << report.runs[i].events << "}";
    }
    out << "],\n  \"median_wall_ms\": " << fmtDouble(report.medianWallMs)
        << ",\n  \"events_per_sec\": " << fmtDouble(report.eventsPerSec)
        << ",\n  \"process\": {\"peak_rss_kb\": " << report.peakRssKb
        << ", \"alloc_count\": " << report.allocCount
        << ", \"alloc_bytes\": " << report.allocBytes
        << "},\n  \"zones\": [";
    for (std::size_t i = 0; i < report.zones.size(); ++i) {
        const BenchZoneRow &zone = report.zones[i];
        out << (i ? ",\n    " : "\n    ") << "{\"path\": ";
        writeEscaped(out, zone.path);
        out << ", \"name\": ";
        writeEscaped(out, zone.name);
        out << ", \"calls\": " << zone.calls
            << ", \"incl_ms\": " << fmtDouble(zone.inclMs)
            << ", \"excl_ms\": " << fmtDouble(zone.exclMs) << "}";
    }
    out << (report.zones.empty() ? "]" : "\n  ]") << "\n}\n";
}

// ---------------------------------------------------------------------------
// Reader (the JSON mini-parser itself lives in json_util)

bool
readBenchJson(std::istream &in, BenchReport &out, std::string *error)
{
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    JsonValue root;
    std::string parse_error;
    if (!parseJson(text, root, &parse_error) || !root.isObject()) {
        if (error)
            *error = parse_error.empty() ? "not a JSON object" : parse_error;
        return false;
    }

    out = BenchReport{};
    out.schema = stringOr(root.find("schema"), "");
    if (out.schema != "vpm-bench-1") {
        if (error)
            *error = "unsupported schema '" + out.schema +
                     "' (want vpm-bench-1)";
        return false;
    }
    out.bench = stringOr(root.find("bench"), "");
    out.quick = boolOr(root.find("quick"), false);
    out.profile = boolOr(root.find("profile"), false);
    out.repeat = static_cast<int>(numberOr(root.find("repeat"), 0));
    out.warmup = static_cast<int>(numberOr(root.find("warmup"), 0));

    if (const JsonValue *env = root.find("environment");
        env && env->kind == JsonValue::Kind::Object) {
        out.environment.compiler = stringOr(env->find("compiler"), "");
        out.environment.buildType = stringOr(env->find("build_type"), "");
        out.environment.cxxFlags = stringOr(env->find("cxx_flags"), "");
        out.environment.host = stringOr(env->find("host"), "");
        out.environment.os = stringOr(env->find("os"), "");
    }

    if (const JsonValue *runs = root.find("runs");
        runs && runs->kind == JsonValue::Kind::Array) {
        for (const JsonValue &run : runs->array) {
            BenchRun r;
            r.wallMs = numberOr(run.find("wall_ms"), 0.0);
            r.events =
                static_cast<std::uint64_t>(numberOr(run.find("events"), 0));
            out.runs.push_back(r);
        }
    }
    out.medianWallMs = numberOr(root.find("median_wall_ms"), 0.0);
    out.eventsPerSec = numberOr(root.find("events_per_sec"), 0.0);

    if (const JsonValue *process = root.find("process");
        process && process->kind == JsonValue::Kind::Object) {
        out.peakRssKb = static_cast<std::int64_t>(
            numberOr(process->find("peak_rss_kb"), 0));
        out.allocCount = static_cast<std::uint64_t>(
            numberOr(process->find("alloc_count"), 0));
        out.allocBytes = static_cast<std::uint64_t>(
            numberOr(process->find("alloc_bytes"), 0));
    }

    if (const JsonValue *zones = root.find("zones");
        zones && zones->kind == JsonValue::Kind::Array) {
        for (const JsonValue &zone : zones->array) {
            BenchZoneRow row;
            row.path = stringOr(zone.find("path"), "");
            row.name = stringOr(zone.find("name"), "");
            row.calls =
                static_cast<std::uint64_t>(numberOr(zone.find("calls"), 0));
            row.inclMs = numberOr(zone.find("incl_ms"), 0.0);
            row.exclMs = numberOr(zone.find("excl_ms"), 0.0);
            out.zones.push_back(std::move(row));
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Comparison

namespace {

double
pctChange(double base, double next)
{
    if (base > 0.0)
        return 100.0 * (next - base) / base;
    // A metric that appears out of nothing has no finite percentage; +inf
    // keeps it ordered above every real delta and is rendered as "(new)".
    // Returning 0 here (the old behavior) made zero-baseline growth
    // invisible to both the comparator and the report.
    return next > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

/** Delta column: "(new)" for growth from a zero baseline, else +x.x%. */
std::string
fmtDeltaPct(double pct)
{
    if (std::isinf(pct))
        return "  (new)";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+6.1f%%", pct);
    return buf;
}

} // namespace

CompareResult
compareBenchReports(const BenchReport &base, const BenchReport &next,
                    const CompareOptions &options)
{
    CompareResult result;
    if (base.schema != next.schema) {
        result.error = "schema mismatch: '" + base.schema + "' vs '" +
                       next.schema + "'";
        return result;
    }
    result.comparable = true;

    // Headline wall-clock: with enough repeats on both sides the raw
    // percentage threshold gives way to CI overlap — a regression must be
    // a worse median AND statistically separated from the baseline's
    // spread. Single-shot reports keep the old threshold semantics.
    result.usedCiGate =
        options.ciGate && base.runs.size() >= 3 && next.runs.size() >= 3;
    if (result.usedCiGate) {
        std::vector<double> base_walls;
        std::vector<double> next_walls;
        for (const BenchRun &run : base.runs)
            base_walls.push_back(run.wallMs);
        for (const BenchRun &run : next.runs)
            next_walls.push_back(run.wallMs);
        const stats::ConfidenceInterval base_ci =
            stats::confidenceInterval(base_walls);
        const stats::ConfidenceInterval next_ci =
            stats::confidenceInterval(next_walls);
        if (next_ci.point > base_ci.point &&
            stats::intervalsSeparated(base_ci, next_ci)) {
            result.regressions.push_back(
                {"median_wall_ms", base.medianWallMs, next.medianWallMs,
                 pctChange(base.medianWallMs, next.medianWallMs)});
        }
    } else if (base.medianWallMs > 0.0 &&
               next.medianWallMs >
                   base.medianWallMs * (1.0 + options.thresholdPct / 100.0)) {
        result.regressions.push_back(
            {"median_wall_ms", base.medianWallMs, next.medianWallMs,
             pctChange(base.medianWallMs, next.medianWallMs)});
    }
    // events/sec is derived from the median-rank run either way; it keeps
    // the percentage gate (its per-run samples are the same walls again).
    if (base.eventsPerSec > 0.0 && next.eventsPerSec > 0.0 &&
        !result.usedCiGate &&
        next.eventsPerSec <
            base.eventsPerSec * (1.0 - options.thresholdPct / 100.0)) {
        result.regressions.push_back(
            {"events_per_sec", base.eventsPerSec, next.eventsPerSec,
             pctChange(base.eventsPerSec, next.eventsPerSec)});
    }

    // Peak RSS: a fleet-scale bench growing its footprint is worth a loud
    // note even though RSS is too allocator-dependent to gate on. A zero
    // baseline (old-schema report, or a platform without getrusage) makes
    // any candidate value "(new)" — still advisory, and the candidate RSS
    // is carried so the rendering can print it instead of a bare marker.
    const bool rss_new =
        base.peakRssKb <= 0 && next.peakRssKb > 0;
    const bool rss_grew =
        base.peakRssKb > 0 && next.peakRssKb > 0 &&
        static_cast<double>(next.peakRssKb) >
            static_cast<double>(base.peakRssKb) *
                (1.0 + options.rssThresholdPct / 100.0);
    if (rss_new || rss_grew) {
        result.advisories.push_back(
            {"peak_rss_kb", static_cast<double>(base.peakRssKb),
             static_cast<double>(next.peakRssKb),
             pctChange(static_cast<double>(base.peakRssKb),
                       static_cast<double>(next.peakRssKb))});
    }

    std::map<std::string, const BenchZoneRow *> byPath;
    for (const BenchZoneRow &zone : base.zones)
        byPath[zone.path] = &zone;
    for (const BenchZoneRow &zone : next.zones) {
        const auto it = byPath.find(zone.path);
        if (it == byPath.end())
            continue; // new zone: informational, not a regression
        const BenchZoneRow &old = *it->second;
        if (old.exclMs < options.minZoneMs && zone.exclMs < options.minZoneMs)
            continue; // below the noise floor in both reports
        // A zone that grew from a 0 ms baseline defeats any percentage
        // threshold; past the noise floor it is a regression outright
        // (reported with an infinite delta, rendered as "(new)").
        const bool grew_from_zero = old.exclMs <= 0.0 && zone.exclMs > 0.0;
        if (grew_from_zero ||
            (old.exclMs > 0.0 &&
             zone.exclMs >
                 old.exclMs * (1.0 + options.zoneThresholdPct / 100.0))) {
            result.regressions.push_back({zone.path, old.exclMs, zone.exclMs,
                                          pctChange(old.exclMs,
                                                    zone.exclMs)});
        }
    }
    return result;
}

void
writeComparison(const BenchReport &base, const BenchReport &next,
                const CompareOptions &options, const CompareResult &result,
                std::ostream &out)
{
    char line[256];
    out << "bench: " << (base.bench.empty() ? "?" : base.bench);
    if (base.bench != next.bench)
        out << "  (WARNING: comparing against bench '" << next.bench << "')";
    out << "\nenvironment: " << base.environment.compiler << " / "
        << base.environment.buildType << "  ->  "
        << next.environment.compiler << " / " << next.environment.buildType
        << "\n\n";

    std::snprintf(line, sizeof(line), "%-44s %12s %12s %8s\n", "metric",
                  "base", "new", "delta");
    out << line;
    const auto row = [&](const char *name, double a, double b) {
        std::snprintf(line, sizeof(line), "%-44s %12.2f %12.2f %8s\n",
                      name, a, b, fmtDeltaPct(pctChange(a, b)).c_str());
        out << line;
    };
    row("median_wall_ms", base.medianWallMs, next.medianWallMs);
    row("events_per_sec", base.eventsPerSec, next.eventsPerSec);
    row("peak_rss_kb", static_cast<double>(base.peakRssKb),
        static_cast<double>(next.peakRssKb));

    std::map<std::string, std::pair<const BenchZoneRow *,
                                    const BenchZoneRow *>> zones;
    for (const BenchZoneRow &zone : base.zones)
        zones[zone.path].first = &zone;
    for (const BenchZoneRow &zone : next.zones)
        zones[zone.path].second = &zone;

    bool header = false;
    for (const auto &[path, pair] : zones) {
        const auto &[old_zone, new_zone] = pair;
        if (!old_zone || !new_zone)
            continue;
        if (old_zone->exclMs < options.minZoneMs &&
            new_zone->exclMs < options.minZoneMs)
            continue;
        if (!header) {
            std::snprintf(line, sizeof(line),
                          "\nzones (exclusive ms; floor %.1f ms, threshold "
                          "%.0f%%):\n",
                          options.minZoneMs, options.zoneThresholdPct);
            out << line;
            std::snprintf(line, sizeof(line),
                          "%-44s %12s %12s %8s  %21s %8s\n", "zone", "base",
                          "new", "delta", "calls (base -> new)", "delta");
            out << line;
            header = true;
        }
        std::string label = path;
        if (label.size() > 44)
            label = "..." + label.substr(label.size() - 41);
        // A wall-time delta with an unchanged call count is a per-call
        // cost change; a call-count delta localizes an algorithmic change
        // (e.g. a sweep becoming incremental) before any timing argument.
        std::snprintf(line, sizeof(line),
                      "%-44s %12.2f %12.2f %8s  %10llu -> %-8llu "
                      "%8s\n",
                      label.c_str(), old_zone->exclMs, new_zone->exclMs,
                      fmtDeltaPct(pctChange(old_zone->exclMs,
                                            new_zone->exclMs)).c_str(),
                      static_cast<unsigned long long>(old_zone->calls),
                      static_cast<unsigned long long>(new_zone->calls),
                      fmtDeltaPct(
                          pctChange(static_cast<double>(old_zone->calls),
                                    static_cast<double>(new_zone->calls)))
                          .c_str());
        out << line;
    }
    for (const auto &[path, pair] : zones) {
        if (pair.first && !pair.second)
            out << "removed zone: " << path << "\n";
        else if (!pair.first && pair.second)
            out << "new zone: " << path << "\n";
    }

    if (!result.advisories.empty()) {
        std::snprintf(line, sizeof(line),
                      "\nADVISORY (never fails the gate; RSS threshold "
                      "%.0f%%):\n",
                      options.rssThresholdPct);
        out << line;
        for (const Regression &advisory : result.advisories) {
            // The zero-baseline "(new)" case still prints the candidate
            // value: "(new)" alone tells a reader nothing about whether
            // 100 MB or 10 GB just appeared.
            if (std::isinf(advisory.deltaPct))
                std::snprintf(line, sizeof(line),
                              "  %s: (no baseline) -> %.0f kb (new)\n",
                              advisory.what.c_str(), advisory.newValue);
            else
                std::snprintf(line, sizeof(line),
                              "  %s: %.0f -> %.0f kb (%+.1f%%)\n",
                              advisory.what.c_str(), advisory.oldValue,
                              advisory.newValue, advisory.deltaPct);
            out << line;
        }
    }

    if (result.regressed()) {
        out << "\nRESULT: REGRESSION in " << result.regressions.size()
            << " metric(s):\n";
        for (const Regression &regression : result.regressions) {
            if (std::isinf(regression.deltaPct))
                std::snprintf(line, sizeof(line),
                              "  %s: %.2f -> %.2f (new, from a zero "
                              "baseline)\n",
                              regression.what.c_str(), regression.oldValue,
                              regression.newValue);
            else
                std::snprintf(line, sizeof(line),
                              "  %s: %.2f -> %.2f (%+.1f%%)\n",
                              regression.what.c_str(), regression.oldValue,
                              regression.newValue, regression.deltaPct);
            out << line;
        }
    } else {
        if (result.usedCiGate)
            std::snprintf(line, sizeof(line),
                          "\nRESULT: no regression (headline gated on 95%% "
                          "CI overlap over %zu vs %zu runs; zones %.0f%% "
                          "above %.1f ms)\n",
                          base.runs.size(), next.runs.size(),
                          options.zoneThresholdPct, options.minZoneMs);
        else
            std::snprintf(line, sizeof(line),
                          "\nRESULT: no regression (headline %.0f%%, zones "
                          "%.0f%% above %.1f ms)\n",
                          options.thresholdPct, options.zoneThresholdPct,
                          options.minZoneMs);
        out << line;
    }
}

} // namespace vpm::telemetry
