/**
 * @file
 * Machine-readable bench results: the stable BENCH_*.json schema, its
 * reader, and the regression comparator behind tools/bench_compare.
 *
 * Schema "vpm-bench-1" (all times wall-clock):
 *
 *     {
 *       "schema": "vpm-bench-1",
 *       "bench": "F7",
 *       "quick": true, "profile": true, "repeat": 5, "warmup": 1,
 *       "environment": {
 *         "compiler": "gcc 12.2.0", "build_type": "RelWithDebInfo",
 *         "cxx_flags": "-Wall ...", "host": "ci-runner", "os": "Linux ..."
 *       },
 *       "runs": [ {"wall_ms": 3081.21, "events": 5409121}, ... ],
 *       "median_wall_ms": 3081.21,     // interpolated median of runs[]
 *       "events_per_sec": 1755421.0,   // of the median-rank run
 *       "process": { "peak_rss_kb": 131072,
 *                    "alloc_count": 0, "alloc_bytes": 0 },  // 0 = off
 *       "zones": [                     // median-rank run, preorder
 *         { "path": "bench/sim.dispatch/mgmt.cycle", "name": "mgmt.cycle",
 *           "calls": 1440, "incl_ms": 812.4, "excl_ms": 31.2 }, ... ]
 *     }
 *
 * Stability contract: fields are only ever added, never renamed or
 * repurposed; a schema-breaking change bumps the "schema" string and
 * bench_compare refuses mixed versions. Zone identity for comparison is
 * the slash-joined root-to-zone "path", so moving a PROF_ZONE to a
 * different caller is (correctly) a new zone, not a silent merge.
 */

#ifndef VPM_TELEMETRY_BENCH_REPORT_HPP
#define VPM_TELEMETRY_BENCH_REPORT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vpm::telemetry {

/** One zone row of a bench report (see Profiler). */
struct BenchZoneRow
{
    std::string path; ///< "bench/sim.dispatch/mgmt.cycle"
    std::string name; ///< last path component
    std::uint64_t calls = 0;
    double inclMs = 0.0;
    double exclMs = 0.0;
};

/** One measured repetition. */
struct BenchRun
{
    double wallMs = 0.0;
    std::uint64_t events = 0; ///< simulator events dispatched during the run
};

/** Compiler / flags / host fingerprint embedded in every report. */
struct BenchEnvironment
{
    std::string compiler;
    std::string buildType;
    std::string cxxFlags;
    std::string host;
    std::string os;
};

/** The fingerprint of the running build (uses macros + uname). */
BenchEnvironment currentEnvironment();

/** Everything one bench invocation measured. */
struct BenchReport
{
    std::string schema = "vpm-bench-1";
    std::string bench;
    bool quick = false;
    bool profile = false;
    int repeat = 0;
    int warmup = 0;
    BenchEnvironment environment;
    std::vector<BenchRun> runs;
    double medianWallMs = 0.0;
    double eventsPerSec = 0.0;
    std::int64_t peakRssKb = 0;
    std::uint64_t allocCount = 0;
    std::uint64_t allocBytes = 0;
    std::vector<BenchZoneRow> zones;
};

/** Serialize @p report in the schema above (pretty, stable field order). */
void writeBenchJson(const BenchReport &report, std::ostream &out);

/**
 * Parse a bench report previously written by writeBenchJson (tolerates
 * unknown extra fields, per the stability contract).
 * @return false with @p error set on malformed input or a schema mismatch.
 */
bool readBenchJson(std::istream &in, BenchReport &out, std::string *error);

/** Thresholds for compareBenchReports; percentages are relative growth. */
struct CompareOptions
{
    /** Regression threshold for the headline median wall-clock and
     *  events/sec numbers, in percent. */
    double thresholdPct = 5.0;

    /** Per-zone exclusive-time regression threshold, in percent. Zones
     *  are noisier than the headline, hence the wider default. */
    double zoneThresholdPct = 25.0;

    /** Ignore zones whose exclusive time is below this in BOTH reports:
     *  sub-millisecond zones are clock noise, not signal. */
    double minZoneMs = 1.0;

    /**
     * Statistically honest headline gating: when both reports carry >= 3
     * measured runs, the headline wall-clock gate uses 95% confidence
     * intervals over the per-run samples instead of the raw percentage
     * threshold — a regression is flagged only when the candidate median
     * is worse AND the two intervals do not overlap. Reports with fewer
     * runs (or this set to false) fall back to the threshold path. Zones
     * always use the percentage threshold (the schema stores only the
     * median-rank run's zone table).
     */
    bool ciGate = true;

    /**
     * Peak-RSS growth threshold, in percent. RSS deltas past it are
     * ADVISORY — printed loudly but never failing the exit code — because
     * RSS is an allocator-and-OS artifact noisier than wall time, yet a
     * fleet-scale bench doubling its footprint is exactly what this tool
     * should surface. A zero RSS on either side (an old-schema report or
     * a platform without getrusage) is never flagged.
     */
    double rssThresholdPct = 10.0;
};

/** One regressed metric (headline or zone). */
struct Regression
{
    std::string what; ///< "median_wall_ms", "events_per_sec" or zone path
    double oldValue = 0.0;
    double newValue = 0.0;
    double deltaPct = 0.0;
};

/** Outcome of comparing two reports. */
struct CompareResult
{
    bool comparable = false; ///< schemas matched and both parsed
    std::string error;       ///< set when !comparable
    std::vector<Regression> regressions;

    /** Non-gating findings (peak-RSS growth past the threshold): printed
     *  by the CLI but never part of regressed(). */
    std::vector<Regression> advisories;

    /** True when the headline wall-clock gate ran on CI overlap (both
     *  reports had >= 3 runs and CompareOptions::ciGate was set). */
    bool usedCiGate = false;

    bool regressed() const { return !regressions.empty(); }
};

/**
 * Compare @p next against the @p base(line): headline median wall-clock,
 * events/sec throughput, and per-zone exclusive times matched by path.
 * New/removed zones are never regressions (they are reported by the CLI as
 * informational); a zone must exceed the threshold in relative terms AND
 * clear the minZoneMs noise floor to count.
 */
CompareResult compareBenchReports(const BenchReport &base,
                                  const BenchReport &next,
                                  const CompareOptions &options);

/**
 * Human-readable comparison table (old vs new, delta %), ending with one
 * line naming each regressed metric/zone — or "no regression" when clean.
 */
void writeComparison(const BenchReport &base, const BenchReport &next,
                     const CompareOptions &options,
                     const CompareResult &result, std::ostream &out);

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_BENCH_REPORT_HPP
