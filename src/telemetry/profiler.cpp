#include "telemetry/profiler.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "telemetry/json_util.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace vpm::telemetry {

namespace detail {
std::atomic<std::uint64_t> allocCount{0};
std::atomic<std::uint64_t> allocBytes{0};
} // namespace detail

std::atomic<bool> Profiler::enabledFlag_{false};

Profiler::ThreadState::ThreadState()
{
    ZoneNode root;
    root.name = "(root)";
    nodes.push_back(std::move(root));
}

Profiler::Profiler() : mainThreadId_(std::this_thread::get_id()) {}

Profiler::ThreadState &
Profiler::localState()
{
    // One pointer per (thread, process); the profiler is a singleton, so
    // a function-local thread_local is equivalent to a per-instance one.
    thread_local ThreadState *tls = nullptr;
    if (tls == nullptr) {
        if (std::this_thread::get_id() == mainThreadId_) {
            tls = &mainState_;
        } else {
            auto state = std::make_unique<ThreadState>();
            tls = state.get();
            std::lock_guard<std::mutex> lock(statesMutex_);
            workerStates_.push_back(std::move(state));
        }
    }
    return *tls;
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool on)
{
    enabledFlag_.store(on, std::memory_order_relaxed);
}

std::uint32_t
Profiler::enter(const char *name)
{
    ThreadState &state = localState();
    std::vector<ZoneNode> &nodes = state.nodes;
    ZoneNode &parent = nodes[state.current];
    for (const std::uint32_t child : parent.children) {
        // PROF_ZONE names are string literals: after the first visit the
        // pointer itself identifies the node, so the steady-state lookup
        // is one compare per sibling with no character scan.
        ZoneNode &candidate = nodes[child];
        if (candidate.key == name || candidate.name == name) {
            candidate.key = name;
            state.current = child;
            return child;
        }
    }
    const auto index = static_cast<std::uint32_t>(nodes.size());
    ZoneNode node;
    node.name = name;
    node.key = name;
    node.parent = state.current;
    node.depth = parent.depth + 1;
    nodes.push_back(std::move(node));
    // push_back may reallocate; re-reference the parent before linking.
    nodes[state.current].children.push_back(index);
    state.current = index;
    return index;
}

void
Profiler::leave(std::uint32_t node, std::uint64_t start_ns)
{
    leaveAt(node, start_ns, nowNs());
}

void
Profiler::leaveAt(std::uint32_t node, std::uint64_t start_ns,
                  std::uint64_t now_ns)
{
    ThreadState &state = localState();
    // A reset() between enter and leave invalidates the index; tolerate it
    // (the harness only resets outside any zone, but be safe).
    if (node >= state.nodes.size()) {
        state.current = 0;
        return;
    }
    const std::uint64_t now = now_ns;
    const std::uint64_t dt = now > start_ns ? now - start_ns : 0;
    ZoneNode &n = state.nodes[node];
    n.inclusiveNs += dt;
    ++n.calls;
    state.nodes[n.parent].childNs += dt;
    state.current = n.parent;
}

void
Profiler::recordDispatch(const std::string &label, std::uint64_t ns)
{
    DispatchStats *stats = nullptr;
    for (auto &[key, index] : dispatchIndex_) {
        if (key == label) {
            stats = &dispatch_[index];
            break;
        }
    }
    if (stats == nullptr) {
        dispatchIndex_.emplace_back(label, dispatch_.size());
        dispatch_.emplace_back();
        stats = &dispatch_.back();
        stats->label = label;
    }
    ++stats->count;
    stats->totalNs += ns;
    stats->maxNs = std::max(stats->maxNs, ns);
    const std::uint64_t us = ns / 1000;
    const std::size_t bucket =
        us == 0 ? 0
                : std::min<std::size_t>(
                      static_cast<std::size_t>(std::bit_width(us)) - 1,
                      dispatchBucketCount - 1);
    ++stats->buckets[bucket];
}

double
DispatchStats::percentileUs(double fraction) const
{
    if (count == 0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) >= target)
            return static_cast<double>(std::uint64_t{1} << (i + 1));
    }
    return static_cast<double>(std::uint64_t{1} << buckets.size());
}

void
Profiler::reset()
{
    const auto resetState = [](ThreadState &state) {
        state.nodes.clear();
        ZoneNode root;
        root.name = "(root)";
        state.nodes.push_back(std::move(root));
        state.current = 0;
    };
    resetState(mainState_);
    {
        // Worker states are reset in place, never destroyed: thread_local
        // pointers into them must survive (a pool's threads outlive any
        // number of resets).
        std::lock_guard<std::mutex> lock(statesMutex_);
        for (const auto &state : workerStates_)
            resetState(*state);
    }
    dispatch_.clear();
    dispatchIndex_.clear();
}

void
Profiler::mergeTree(std::vector<ZoneNode> &merged, std::uint32_t into,
                    const std::vector<ZoneNode> &from, std::uint32_t node)
{
    const ZoneNode &src = from[node];
    merged[into].calls += src.calls;
    merged[into].inclusiveNs += src.inclusiveNs;
    merged[into].childNs += src.childNs;
    for (const std::uint32_t child_index : src.children) {
        const std::string &child_name = from[child_index].name;
        // Find-or-create by (parent, name), the same key enter() uses, so
        // a zone reached on several threads folds into one row. 0 is a
        // safe "not found" sentinel: the root is never anyone's child.
        std::uint32_t target = 0;
        for (const std::uint32_t existing : merged[into].children) {
            if (merged[existing].name == child_name) {
                target = existing;
                break;
            }
        }
        if (target == 0) {
            target = static_cast<std::uint32_t>(merged.size());
            ZoneNode fresh;
            fresh.name = child_name;
            fresh.parent = into;
            fresh.depth = merged[into].depth + 1;
            merged.push_back(std::move(fresh));
            merged[into].children.push_back(target);
        }
        mergeTree(merged, target, from, child_index);
    }
}

std::vector<ZoneNode>
Profiler::mergedNodes() const
{
    std::vector<ZoneNode> merged = mainState_.nodes;
    std::lock_guard<std::mutex> lock(statesMutex_);
    for (const auto &state : workerStates_) {
        if (state->nodes.size() > 1)
            mergeTree(merged, 0, state->nodes, 0);
    }
    return merged;
}

std::vector<DispatchStats>
Profiler::dispatchStats() const
{
    std::vector<DispatchStats> out = dispatch_;
    std::sort(out.begin(), out.end(),
              [](const DispatchStats &a, const DispatchStats &b) {
                  return a.totalNs > b.totalNs;
              });
    return out;
}

namespace {

double
toMs(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

void
writeZoneLine(std::ostream &out, const std::vector<ZoneNode> &nodes,
              std::uint32_t index, std::uint64_t tracked_ns)
{
    const ZoneNode &node = nodes[index];
    std::string label(static_cast<std::size_t>(node.depth - 1) * 2, ' ');
    label += node.name;
    if (label.size() > 44)
        label.resize(44);
    const double share =
        tracked_ns > 0 ? 100.0 * static_cast<double>(node.exclusiveNs()) /
                             static_cast<double>(tracked_ns)
                       : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-44s %10" PRIu64 " %11.2f %11.2f %6.1f%%\n",
                  label.c_str(), node.calls, toMs(node.inclusiveNs),
                  toMs(node.exclusiveNs()), share);
    out << line;
}

void
writeZoneTree(std::ostream &out, const std::vector<ZoneNode> &nodes,
              std::uint32_t index, std::uint64_t tracked_ns)
{
    writeZoneLine(out, nodes, index, tracked_ns);
    std::vector<std::uint32_t> children = nodes[index].children;
    std::sort(children.begin(), children.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return nodes[a].inclusiveNs > nodes[b].inclusiveNs;
              });
    for (const std::uint32_t child : children)
        writeZoneTree(out, nodes, child, tracked_ns);
}

} // namespace

void
Profiler::writeReport(std::ostream &out) const
{
    // Whole-process view: worker-thread zones folded in by (parent, name).
    const std::vector<ZoneNode> nodes = mergedNodes();
    const std::uint64_t tracked = nodes[0].childNs;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "=== self-profile: zones (wall-clock) ===\n"
                  "tracked: %.2f ms across %zu zone(s); exclusive column "
                  "sums to the tracked total\n\n",
                  toMs(tracked), nodes.size() - 1);
    out << line;
    std::snprintf(line, sizeof(line), "%-44s %10s %11s %11s %7s\n", "zone",
                  "calls", "incl ms", "excl ms", "excl%");
    out << line;
    std::vector<std::uint32_t> top = nodes[0].children;
    std::sort(top.begin(), top.end(), [&](std::uint32_t a, std::uint32_t b) {
        return nodes[a].inclusiveNs > nodes[b].inclusiveNs;
    });
    for (const std::uint32_t child : top)
        writeZoneTree(out, nodes, child, tracked);

    const std::vector<DispatchStats> dispatch = dispatchStats();
    if (!dispatch.empty()) {
        out << "\n=== self-profile: event dispatch (wall-clock) ===\n";
        std::snprintf(line, sizeof(line),
                      "%-28s %10s %11s %9s %9s %9s %9s\n", "label", "count",
                      "total ms", "mean us", "p50 us", "p99 us", "max us");
        out << line;
        for (const DispatchStats &stats : dispatch) {
            std::string label = stats.label;
            if (label.size() > 28)
                label.resize(28);
            std::snprintf(line, sizeof(line),
                          "%-28s %10" PRIu64
                          " %11.2f %9.2f %9.0f %9.0f %9.1f\n",
                          label.c_str(), stats.count, toMs(stats.totalNs),
                          stats.meanUs(), stats.percentileUs(0.50),
                          stats.percentileUs(0.99),
                          static_cast<double>(stats.maxNs) / 1000.0);
            out << line;
        }
    }

    out << "\n=== self-profile: process ===\n";
    const std::int64_t rss_kb = peakRssKb();
    if (rss_kb > 0) {
        std::snprintf(line, sizeof(line), "peak RSS: %.1f MB\n",
                      static_cast<double>(rss_kb) / 1024.0);
        out << line;
    } else {
        out << "peak RSS: unavailable on this platform\n";
    }
    const AllocStats alloc = allocStats();
    if (alloc.available) {
        std::snprintf(line, sizeof(line),
                      "heap: %" PRIu64 " allocation(s), %.1f MB total\n",
                      alloc.count,
                      static_cast<double>(alloc.bytes) / (1024.0 * 1024.0));
        out << line;
    } else {
        out << "heap: allocation counting off (configure with "
               "-DVPM_PROFILE_ALLOC=ON)\n";
    }
}

namespace {

/** Emit one synthetic flame span and, recursively, its children packed
 *  consecutively from the span's start. Returns nothing; the caller
 *  advances its own cursor by the node's inclusive time. */
void
writeChromeSpan(std::ostream &out, const std::vector<ZoneNode> &nodes,
                std::uint32_t index, double start_us, bool &first)
{
    const ZoneNode &node = nodes[index];
    if (!first)
        out << ",\n";
    first = false;
    char buf[96];
    out << R"({"ph":"X","pid":0,"tid":0,"cat":"profile","name":")";
    writeJsonEscaped(out, node.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"calls\":%" PRIu64
                  ",\"excl_ms\":%.3f}}",
                  start_us, static_cast<double>(node.inclusiveNs) / 1000.0,
                  node.calls,
                  static_cast<double>(node.exclusiveNs()) / 1e6);
    out << buf;
    double cursor = start_us;
    for (const std::uint32_t child : node.children) {
        writeChromeSpan(out, nodes, child, cursor, first);
        cursor += static_cast<double>(nodes[child].inclusiveNs) / 1000.0;
    }
}

} // namespace

void
Profiler::writeChromeTrace(std::ostream &out) const
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        << R"({"ph":"M","pid":0,"name":"process_name",)"
        << R"x("args":{"name":"vpm self-profile (wall-clock, aggregate)"}})x";
    bool first = false; // metadata record already emitted
    double cursor = 0.0;
    const std::vector<ZoneNode> nodes = mergedNodes();
    for (const std::uint32_t child : nodes[0].children) {
        writeChromeSpan(out, nodes, child, cursor, first);
        cursor += static_cast<double>(nodes[child].inclusiveNs) / 1000.0;
    }
    out << "\n]}\n";
}

std::int64_t
Profiler::peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss / 1024);
#else
    return static_cast<std::int64_t>(usage.ru_maxrss);
#endif
#else
    return 0;
#endif
}

AllocStats
Profiler::allocStats()
{
    AllocStats stats;
#ifdef VPM_PROFILE_ALLOC
    stats.available = true;
#endif
    stats.count = detail::allocCount.load(std::memory_order_relaxed);
    stats.bytes = detail::allocBytes.load(std::memory_order_relaxed);
    return stats;
}

} // namespace vpm::telemetry
