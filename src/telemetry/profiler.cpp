#include "telemetry/profiler.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace vpm::telemetry {

namespace detail {
std::atomic<std::uint64_t> allocCount{0};
std::atomic<std::uint64_t> allocBytes{0};
} // namespace detail

bool Profiler::enabledFlag_ = false;

Profiler::Profiler()
{
    ZoneNode root;
    root.name = "(root)";
    nodes_.push_back(std::move(root));
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool on)
{
    enabledFlag_ = on;
}

std::uint32_t
Profiler::enter(const char *name)
{
    ZoneNode &parent = nodes_[current_];
    for (const std::uint32_t child : parent.children) {
        if (nodes_[child].name == name) {
            current_ = child;
            return child;
        }
    }
    const auto index = static_cast<std::uint32_t>(nodes_.size());
    ZoneNode node;
    node.name = name;
    node.parent = current_;
    node.depth = parent.depth + 1;
    nodes_.push_back(std::move(node));
    // push_back may reallocate; re-reference the parent before linking.
    nodes_[current_].children.push_back(index);
    current_ = index;
    return index;
}

void
Profiler::leave(std::uint32_t node, std::uint64_t start_ns)
{
    // A reset() between enter and leave invalidates the index; tolerate it
    // (the harness only resets outside any zone, but be safe).
    if (node >= nodes_.size()) {
        current_ = 0;
        return;
    }
    const std::uint64_t now = nowNs();
    const std::uint64_t dt = now > start_ns ? now - start_ns : 0;
    ZoneNode &n = nodes_[node];
    n.inclusiveNs += dt;
    ++n.calls;
    nodes_[n.parent].childNs += dt;
    current_ = n.parent;
}

void
Profiler::recordDispatch(const std::string &label, std::uint64_t ns)
{
    DispatchStats *stats = nullptr;
    for (auto &[key, index] : dispatchIndex_) {
        if (key == label) {
            stats = &dispatch_[index];
            break;
        }
    }
    if (stats == nullptr) {
        dispatchIndex_.emplace_back(label, dispatch_.size());
        dispatch_.emplace_back();
        stats = &dispatch_.back();
        stats->label = label;
    }
    ++stats->count;
    stats->totalNs += ns;
    stats->maxNs = std::max(stats->maxNs, ns);
    const std::uint64_t us = ns / 1000;
    const std::size_t bucket =
        us == 0 ? 0
                : std::min<std::size_t>(
                      static_cast<std::size_t>(std::bit_width(us)) - 1,
                      dispatchBucketCount - 1);
    ++stats->buckets[bucket];
}

double
DispatchStats::percentileUs(double fraction) const
{
    if (count == 0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) >= target)
            return static_cast<double>(std::uint64_t{1} << (i + 1));
    }
    return static_cast<double>(std::uint64_t{1} << buckets.size());
}

void
Profiler::reset()
{
    nodes_.clear();
    ZoneNode root;
    root.name = "(root)";
    nodes_.push_back(std::move(root));
    current_ = 0;
    dispatch_.clear();
    dispatchIndex_.clear();
}

std::vector<DispatchStats>
Profiler::dispatchStats() const
{
    std::vector<DispatchStats> out = dispatch_;
    std::sort(out.begin(), out.end(),
              [](const DispatchStats &a, const DispatchStats &b) {
                  return a.totalNs > b.totalNs;
              });
    return out;
}

namespace {

double
toMs(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

void
writeZoneLine(std::ostream &out, const std::vector<ZoneNode> &nodes,
              std::uint32_t index, std::uint64_t tracked_ns)
{
    const ZoneNode &node = nodes[index];
    std::string label(static_cast<std::size_t>(node.depth - 1) * 2, ' ');
    label += node.name;
    if (label.size() > 44)
        label.resize(44);
    const double share =
        tracked_ns > 0 ? 100.0 * static_cast<double>(node.exclusiveNs()) /
                             static_cast<double>(tracked_ns)
                       : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-44s %10" PRIu64 " %11.2f %11.2f %6.1f%%\n",
                  label.c_str(), node.calls, toMs(node.inclusiveNs),
                  toMs(node.exclusiveNs()), share);
    out << line;
}

void
writeZoneTree(std::ostream &out, const std::vector<ZoneNode> &nodes,
              std::uint32_t index, std::uint64_t tracked_ns)
{
    writeZoneLine(out, nodes, index, tracked_ns);
    std::vector<std::uint32_t> children = nodes[index].children;
    std::sort(children.begin(), children.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return nodes[a].inclusiveNs > nodes[b].inclusiveNs;
              });
    for (const std::uint32_t child : children)
        writeZoneTree(out, nodes, child, tracked_ns);
}

void
jsonEscape(std::ostream &out, const std::string &text)
{
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            out << ' ';
        else
            out << c;
    }
}

} // namespace

void
Profiler::writeReport(std::ostream &out) const
{
    const std::uint64_t tracked = totalTrackedNs();
    char line[200];
    std::snprintf(line, sizeof(line),
                  "=== self-profile: zones (wall-clock) ===\n"
                  "tracked: %.2f ms across %zu zone(s); exclusive column "
                  "sums to the tracked total\n\n",
                  toMs(tracked), nodes_.size() - 1);
    out << line;
    std::snprintf(line, sizeof(line), "%-44s %10s %11s %11s %7s\n", "zone",
                  "calls", "incl ms", "excl ms", "excl%");
    out << line;
    std::vector<std::uint32_t> top = nodes_[0].children;
    std::sort(top.begin(), top.end(), [&](std::uint32_t a, std::uint32_t b) {
        return nodes_[a].inclusiveNs > nodes_[b].inclusiveNs;
    });
    for (const std::uint32_t child : top)
        writeZoneTree(out, nodes_, child, tracked);

    const std::vector<DispatchStats> dispatch = dispatchStats();
    if (!dispatch.empty()) {
        out << "\n=== self-profile: event dispatch (wall-clock) ===\n";
        std::snprintf(line, sizeof(line),
                      "%-28s %10s %11s %9s %9s %9s %9s\n", "label", "count",
                      "total ms", "mean us", "p50 us", "p99 us", "max us");
        out << line;
        for (const DispatchStats &stats : dispatch) {
            std::string label = stats.label;
            if (label.size() > 28)
                label.resize(28);
            std::snprintf(line, sizeof(line),
                          "%-28s %10" PRIu64
                          " %11.2f %9.2f %9.0f %9.0f %9.1f\n",
                          label.c_str(), stats.count, toMs(stats.totalNs),
                          stats.meanUs(), stats.percentileUs(0.50),
                          stats.percentileUs(0.99),
                          static_cast<double>(stats.maxNs) / 1000.0);
            out << line;
        }
    }

    out << "\n=== self-profile: process ===\n";
    const std::int64_t rss_kb = peakRssKb();
    if (rss_kb > 0) {
        std::snprintf(line, sizeof(line), "peak RSS: %.1f MB\n",
                      static_cast<double>(rss_kb) / 1024.0);
        out << line;
    } else {
        out << "peak RSS: unavailable on this platform\n";
    }
    const AllocStats alloc = allocStats();
    if (alloc.available) {
        std::snprintf(line, sizeof(line),
                      "heap: %" PRIu64 " allocation(s), %.1f MB total\n",
                      alloc.count,
                      static_cast<double>(alloc.bytes) / (1024.0 * 1024.0));
        out << line;
    } else {
        out << "heap: allocation counting off (configure with "
               "-DVPM_PROFILE_ALLOC=ON)\n";
    }
}

namespace {

/** Emit one synthetic flame span and, recursively, its children packed
 *  consecutively from the span's start. Returns nothing; the caller
 *  advances its own cursor by the node's inclusive time. */
void
writeChromeSpan(std::ostream &out, const std::vector<ZoneNode> &nodes,
                std::uint32_t index, double start_us, bool &first)
{
    const ZoneNode &node = nodes[index];
    if (!first)
        out << ",\n";
    first = false;
    char buf[96];
    out << R"({"ph":"X","pid":0,"tid":0,"cat":"profile","name":")";
    jsonEscape(out, node.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"calls\":%" PRIu64
                  ",\"excl_ms\":%.3f}}",
                  start_us, static_cast<double>(node.inclusiveNs) / 1000.0,
                  node.calls,
                  static_cast<double>(node.exclusiveNs()) / 1e6);
    out << buf;
    double cursor = start_us;
    for (const std::uint32_t child : node.children) {
        writeChromeSpan(out, nodes, child, cursor, first);
        cursor += static_cast<double>(nodes[child].inclusiveNs) / 1000.0;
    }
}

} // namespace

void
Profiler::writeChromeTrace(std::ostream &out) const
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        << R"({"ph":"M","pid":0,"name":"process_name",)"
        << R"x("args":{"name":"vpm self-profile (wall-clock, aggregate)"}})x";
    bool first = false; // metadata record already emitted
    double cursor = 0.0;
    for (const std::uint32_t child : nodes_[0].children) {
        writeChromeSpan(out, nodes_, child, cursor, first);
        cursor += static_cast<double>(nodes_[child].inclusiveNs) / 1000.0;
    }
    out << "\n]}\n";
}

std::int64_t
Profiler::peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss / 1024);
#else
    return static_cast<std::int64_t>(usage.ru_maxrss);
#endif
#else
    return 0;
#endif
}

AllocStats
Profiler::allocStats()
{
    AllocStats stats;
#ifdef VPM_PROFILE_ALLOC
    stats.available = true;
#endif
    stats.count = detail::allocCount.load(std::memory_order_relaxed);
    stats.bytes = detail::allocBytes.load(std::memory_order_relaxed);
    return stats;
}

} // namespace vpm::telemetry
