#include "telemetry/json_util.hpp"

#include <cstdio>
#include <ostream>

namespace vpm::telemetry {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonEscaped(std::ostream &out, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

} // namespace vpm::telemetry
