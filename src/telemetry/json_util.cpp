#include "telemetry/json_util.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace vpm::telemetry {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonEscaped(std::ostream &out, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser (promoted from bench_report.cpp when the sweep orchestrator needed
// to read manifests and vpm-sweep-1 matrices with the same machinery).

namespace {

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool
    fail(const char *message)
    {
        if (error_ && error_->empty()) {
            std::ostringstream oss;
            oss << message << " (offset " << pos_ << ")";
            *error_ = oss.str();
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return parseNumber(out);
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'u':
                    // Schema strings are ASCII; keep \u escapes verbatim.
                    out += "\\u";
                    break;
                default: out += e; break;
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipSpace();
            if (!parseValue(item))
                return false;
            out.array.push_back(std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    JsonParser parser(text, error);
    return parser.parse(out);
}

double
numberOr(const JsonValue *value, double fallback)
{
    return value && value->kind == JsonValue::Kind::Number ? value->number
                                                           : fallback;
}

std::string
stringOr(const JsonValue *value, const std::string &fallback)
{
    return value && value->kind == JsonValue::Kind::String ? value->string
                                                           : fallback;
}

bool
boolOr(const JsonValue *value, bool fallback)
{
    return value && value->kind == JsonValue::Kind::Bool ? value->boolean
                                                         : fallback;
}

} // namespace vpm::telemetry
