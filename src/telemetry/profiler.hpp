/**
 * @file
 * Wall-clock self-profiler for the simulator process.
 *
 * PRs 1–2 instrumented the simulated datacenter (sim-time journal, metrics,
 * causal tracing); this layer instruments the simulator *itself*: where
 * does the process spend real time while it chews through a scenario?
 *
 * The interface is a hierarchical RAII scoped timer:
 *
 *     void VpmManager::managementCycle() {
 *         PROF_ZONE("mgmt.cycle");
 *         ...
 *     }
 *
 * Zones form a call tree keyed by (parent zone, name): the same
 * "placement.plan" zone appears once under "mgmt.rebalance" and once under
 * "mgmt.capacity" if it is reached both ways, so the report reads like a
 * collapsed flame graph. Per zone we aggregate call count, inclusive
 * wall-clock time and child time; exclusive time is inclusive minus child
 * time, so the exclusive column across the whole tree sums to the total
 * tracked time (no double counting).
 *
 * Cost model: when disabled (the default) a PROF_ZONE is one load and one
 * predictable branch — cheap enough to leave compiled into the hottest
 * paths (event-queue push/pop, journal append). When enabled, a zone is
 * two steady_clock reads plus a small-children linear lookup.
 *
 * The profiler is process-global and thread-aware: each thread owns a
 * private zone tree (a plain thread_local — enter/leave never touch a
 * lock), and mergedNodes() folds the worker trees into the main thread's
 * by (parent, name) when a report is written. Merging and reset() must
 * run while no worker is inside a zone — in this codebase that means
 * outside any ThreadPool::parallelFor, whose fork-join barrier provides
 * the needed happens-before edge. nodes()/totalTrackedNs() keep their
 * historical meaning: the main thread's tree only. Tests that want
 * isolation call reset().
 *
 * Beyond zones it also collects:
 *  - per-event-label dispatch timing (count, total, max, log2-bucket
 *    histogram) fed by Simulator::dispatchOne, so "which event type burns
 *    the wall clock" is answerable directly;
 *  - process stats: peak RSS, plus heap-allocation counters when the build
 *    enables VPM_PROFILE_ALLOC (a counting operator new hook; see
 *    alloc_hook.cpp).
 *
 * Reports: writeReport() prints the flame-style text tree; a wall-clock
 * Chrome-trace track (complementing the sim-time tracks of export.hpp) and
 * the machine-readable BENCH_*.json schema live in bench_report.hpp.
 */

#ifndef VPM_TELEMETRY_PROFILER_HPP
#define VPM_TELEMETRY_PROFILER_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vpm::telemetry {

namespace detail {
/** Incremented by the counting operator new (alloc_hook.cpp) in
 *  VPM_PROFILE_ALLOC builds; otherwise stay zero. Atomics because the
 *  allocator hook must be safe even if a dependency spins up a thread. */
extern std::atomic<std::uint64_t> allocCount;
extern std::atomic<std::uint64_t> allocBytes;
} // namespace detail

/** One aggregated node of the zone call tree. */
struct ZoneNode
{
    std::string name;          ///< zone label as passed to PROF_ZONE
    const char *key = nullptr; ///< last literal pointer that matched this
                               ///< node: enter()'s fast path is a pointer
                               ///< compare, since PROF_ZONE names are
                               ///< string literals with stable addresses
    std::uint32_t parent = 0;  ///< index into Profiler::nodes(); the root
                               ///< (index 0) is its own parent
    std::uint32_t depth = 0;   ///< root = 0, its children = 1, ...
    std::uint64_t calls = 0;
    std::uint64_t inclusiveNs = 0;
    std::uint64_t childNs = 0; ///< summed inclusive time of direct children

    /** Time spent in this zone but not in any child zone. */
    std::uint64_t
    exclusiveNs() const
    {
        return inclusiveNs > childNs ? inclusiveNs - childNs : 0;
    }

    std::vector<std::uint32_t> children; ///< node indices, creation order
};

/** Number of log2 dispatch-latency buckets (bucket i covers
 *  [2^i, 2^(i+1)) microseconds; the first also takes sub-microsecond
 *  dispatches and the last everything slower). */
inline constexpr std::size_t dispatchBucketCount = 16;

/** Aggregated wall-clock cost of dispatching one event label. */
struct DispatchStats
{
    std::string label;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;
    std::array<std::uint64_t, dispatchBucketCount> buckets{};

    double
    meanUs() const
    {
        return count ? static_cast<double>(totalNs) / 1000.0 /
                           static_cast<double>(count)
                     : 0.0;
    }

    /** Bucket-resolution percentile (upper bucket edge), in microseconds. */
    double percentileUs(double fraction) const;
};

/** Heap-allocation counters; `available` is false unless the build was
 *  configured with -DVPM_PROFILE_ALLOC=ON. */
struct AllocStats
{
    bool available = false;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
};

/** The process-global zone/dispatch profiler. */
class Profiler
{
  public:
    Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    static Profiler &instance();

    /** The disabled-mode fast path: one load + branch in ProfileScope.
     *  A relaxed atomic load — same single mov as the plain bool it
     *  replaces, but race-free when pool workers hit PROF_ZONEs. */
    static bool
    profilingEnabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }

    /** Flip collection on or off. Toggling mid-zone is safe: scopes that
     *  saw the profiler disabled at entry never report. */
    void setEnabled(bool on);

    /** @name Hot-path hooks (call via ProfileScope / Simulator) */
    ///@{
    /** Find-or-create the child zone @p name of the calling thread's
     *  current zone, make it current, and return its node index (within
     *  that thread's tree). Lock-free: touches only thread-local state. */
    std::uint32_t enter(const char *name);

    /** Close the zone opened at @p start_ns; restores its parent as the
     *  calling thread's current zone. Must pair LIFO with enter() on the
     *  same thread (RAII guarantees it). */
    void leave(std::uint32_t node, std::uint64_t start_ns);

    /** leave() with the clock read hoisted out: @p now_ns must be a
     *  nowNs() taken after the zone's work. Lets per-event hot paths
     *  (Simulator::dispatchOne) share one timestamp between the end of
     *  one zone and the start of the next instead of reading the clock
     *  twice. */
    void leaveAt(std::uint32_t node, std::uint64_t start_ns,
                 std::uint64_t now_ns);

    /** Record one event dispatch of @p label taking @p ns wall-clock.
     *  Main-thread only (fed by Simulator::dispatchOne). */
    void recordDispatch(const std::string &label, std::uint64_t ns);
    ///@}

    /** Monotonic wall-clock nanoseconds (steady_clock). */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Drop every zone and dispatch record (keeps the enabled flag),
     *  across every thread's tree. Callers must ensure no thread is
     *  inside a zone (pool quiescent). */
    void reset();

    /** The main thread's zone tree; index 0 is the synthetic root. Valid
     *  until the next enter()/reset(). Worker-thread zones are NOT here —
     *  use mergedNodes() for the whole-process view. */
    const std::vector<ZoneNode> &nodes() const { return mainState_.nodes; }

    /**
     * The whole-process zone tree: the main thread's tree with every
     * worker thread's tree folded in by (parent, name), worker trees in
     * thread-registration order. Index 0 is the synthetic root; its
     * childNs is the merged tracked total. Must run while no worker is
     * inside a zone.
     */
    std::vector<ZoneNode> mergedNodes() const;

    /** Wall-clock accounted to the main thread's top-level zones (the
     *  root's child time); see mergedNodes()[0].childNs for all threads. */
    std::uint64_t totalTrackedNs() const
    {
        return mainState_.nodes[0].childNs;
    }

    /** Dispatch-cost table, most expensive label first. */
    std::vector<DispatchStats> dispatchStats() const;

    /**
     * Flame-style text report: the zone tree (calls, inclusive/exclusive
     * ms, share of tracked time), the dispatch table and process stats.
     */
    void writeReport(std::ostream &out) const;

    /**
     * Wall-clock Chrome-trace JSON of the *aggregate* tree: each zone
     * becomes one complete ("X") span, children laid out consecutively
     * inside their parent. This is a synthetic flame graph — per-call
     * spans are not retained — so it is O(zones), not O(calls), and
     * costs nothing on the hot path. Loads in Perfetto next to the
     * sim-time tracks from export.hpp.
     */
    void writeChromeTrace(std::ostream &out) const;

    /** @name Process statistics */
    ///@{
    /** Peak resident set size of this process in kilobytes (getrusage);
     *  0 when the platform does not report it. */
    static std::int64_t peakRssKb();

    /** Global heap-allocation counters (see alloc_hook.cpp). */
    static AllocStats allocStats();
    ///@}

  private:
    /** One thread's private call tree; index 0 is the synthetic root. */
    struct ThreadState
    {
        ThreadState();
        std::vector<ZoneNode> nodes;
        std::uint32_t current = 0;
    };

    /** The calling thread's state: mainState_ on the thread that built
     *  the profiler, a lazily registered per-thread state elsewhere. */
    ThreadState &localState();

    /** Fold `from[node]` (and its subtree) into `merged[into]`. */
    static void mergeTree(std::vector<ZoneNode> &merged, std::uint32_t into,
                          const std::vector<ZoneNode> &from,
                          std::uint32_t node);

    // The enabled flag is static so ProfileScope's disabled path needs no
    // instance() call.
    static std::atomic<bool> enabledFlag_;

    ThreadState mainState_;
    std::thread::id mainThreadId_;

    /** Guards workerStates_ (registration + merge); never taken on the
     *  enter/leave hot path. States live for the process lifetime so
     *  thread_local pointers into them stay valid across reset(). */
    mutable std::mutex statesMutex_;
    std::vector<std::unique_ptr<ThreadState>> workerStates_;

    std::vector<DispatchStats> dispatch_;
    // label -> index into dispatch_; kept as a sorted flat vector would be
    // overkill: labels are few (tens), so a small open map suffices.
    std::vector<std::pair<std::string, std::size_t>> dispatchIndex_;
};

/** RAII zone timer; use through PROF_ZONE rather than directly. */
class ProfileScope
{
  public:
    explicit ProfileScope(const char *name)
    {
        if (!Profiler::profilingEnabled())
            return;
        startNs_ = Profiler::nowNs();
        node_ = Profiler::instance().enter(name);
        active_ = true;
    }

    ~ProfileScope()
    {
        if (active_)
            Profiler::instance().leave(node_, startNs_);
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    std::uint64_t startNs_ = 0;
    std::uint32_t node_ = 0;
    bool active_ = false;
};

} // namespace vpm::telemetry

#define VPM_PROF_CONCAT2(a, b) a##b
#define VPM_PROF_CONCAT(a, b) VPM_PROF_CONCAT2(a, b)

/** Open a profiler zone for the rest of the enclosing block. */
#define PROF_ZONE(name)                                                      \
    ::vpm::telemetry::ProfileScope VPM_PROF_CONCAT(vpm_prof_zone_,           \
                                                   __LINE__)(name)

#endif // VPM_TELEMETRY_PROFILER_HPP
