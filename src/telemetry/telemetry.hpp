/**
 * @file
 * Telemetry facade: one object bundling the metrics registry, the event
 * journal and the sampled metric time series, plus the process-global
 * instance the instrumented libraries emit into.
 *
 * The simulator is single-threaded and one-per-experiment, so a global
 * sink (mirroring the logging module's global level) keeps wiring trivial:
 * any layer can emit without threading a handle through every constructor.
 * Tests that want isolation construct their own Telemetry and drive the
 * same classes directly.
 */

#ifndef VPM_TELEMETRY_TELEMETRY_HPP
#define VPM_TELEMETRY_TELEMETRY_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event_journal.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry_config.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"

namespace vpm::telemetry {

/** One sampled row of the metric time series. */
struct SeriesRow
{
    std::int64_t timeUs = 0;
    std::vector<double> values; ///< parallel to Telemetry::seriesColumns()
};

/** Registry + journal + series under one switch. */
class Telemetry
{
  public:
    Telemetry() = default;

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /**
     * Apply a configuration. Enabling preallocates the journal ring and
     * reserves series rows; disabling releases the ring and drops any
     * recorded events/series. Metrics registrations always survive (their
     * handles are cached by instrumented code).
     */
    void configure(const TelemetryConfig &config);

    const TelemetryConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled; }

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    EventJournal &journal() { return journal_; }
    const EventJournal &journal() const { return journal_; }

    TimeSeriesStore &timeseries() { return timeseries_; }
    const TimeSeriesStore &timeseries() const { return timeseries_; }

    /** Watchdog rules survive configure(); only streak state resets. */
    Watchdog &watchdog() { return watchdog_; }
    const Watchdog &watchdog() const { return watchdog_; }

    /**
     * Seal time-series buckets up to @p t_us, then evaluate the watchdog
     * against the freshly sealed buckets — alerts land in the journal with
     * the ambient TraceContext and bump the `watchdog.alerts` counter.
     * Call once per management tick after recording the tick's samples.
     * When a snapshot target is set, the files are also refreshed (at most
     * once per wall-clock interval) so an external vpm_top can watch live.
     */
    void flushTimeseries(std::int64_t t_us);

    /**
     * Have flushTimeseries() periodically rewrite @p path as a `vpm-ts-1`
     * snapshot plus a Prometheus-text sibling at `<path>.prom`. Empty path
     * disables. Rewrites are whole-store dumps (every copy on disk is
     * self-contained) and are throttled by wall clock — at most one per
     * @p min_interval_ms — so simulated time moving much faster than real
     * time cannot turn the refresh into the run's dominant cost. Callers
     * that need the final, complete snapshot must call
     * writeSnapshotFiles() once at the end of the run.
     */
    void setSnapshotTarget(std::string path, int min_interval_ms = 1000);

    const std::string &snapshotPath() const { return snapshotPath_; }

    /** Write the snapshot files now. @return false when no target is set
     *  or a file cannot be opened. */
    bool writeSnapshotFiles() const;

    /**
     * Snapshot every counter and gauge into one series row at @p t_us.
     * The column set freezes on the first sample of a run; metrics created
     * later are not retro-added to the series. No-op when disabled.
     */
    void sampleSeries(std::int64_t t_us);

    /** Column names, frozen at the first sample ("ctr."/"gauge." prefixed
     *  counters and gauges, in registration order). */
    const std::vector<std::string> &seriesColumns() const
    {
        return seriesColumns_;
    }

    const std::vector<SeriesRow> &seriesRows() const { return seriesRows_; }

    /** Drop events, series and metric values; keep all registrations. */
    void reset();

  private:
    TelemetryConfig config_;
    MetricsRegistry metrics_;
    EventJournal journal_;
    TimeSeriesStore timeseries_;
    Watchdog watchdog_;
    Counter *alertCounter_ = nullptr; ///< lazy `watchdog.alerts` handle
    /** Bucket-grid position of the last flushTimeseries() that did work.
     *  Sealing, watchdog evaluation and snapshot refresh are all
     *  idempotent while the grid stands still (buckets only change state
     *  when simulated time crosses a bucket boundary), so repeat calls
     *  within one interval return immediately — with a sub-bucket
     *  management tick that drops two thirds of the flush cost. */
    std::int64_t lastFlushWallUs_ = 0;
    bool haveFlushWall_ = false;
    std::string snapshotPath_;        ///< "": periodic snapshots off
    int snapshotIntervalMs_ = 1000;
    std::chrono::steady_clock::time_point lastSnapshotWrite_{};
    std::vector<std::string> seriesColumns_;
    std::size_t seriesCounterCount_ = 0;
    std::size_t seriesGaugeCount_ = 0;
    std::vector<SeriesRow> seriesRows_;
};

/** The process-global sink all instrumented libraries emit into. */
Telemetry &global();

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_TELEMETRY_HPP
