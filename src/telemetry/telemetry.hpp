/**
 * @file
 * Telemetry facade: one object bundling the metrics registry, the event
 * journal and the sampled metric time series, plus the process-global
 * instance the instrumented libraries emit into.
 *
 * The simulator is single-threaded and one-per-experiment, so a global
 * sink (mirroring the logging module's global level) keeps wiring trivial:
 * any layer can emit without threading a handle through every constructor.
 * Tests that want isolation construct their own Telemetry and drive the
 * same classes directly.
 */

#ifndef VPM_TELEMETRY_TELEMETRY_HPP
#define VPM_TELEMETRY_TELEMETRY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event_journal.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry_config.hpp"

namespace vpm::telemetry {

/** One sampled row of the metric time series. */
struct SeriesRow
{
    std::int64_t timeUs = 0;
    std::vector<double> values; ///< parallel to Telemetry::seriesColumns()
};

/** Registry + journal + series under one switch. */
class Telemetry
{
  public:
    Telemetry() = default;

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /**
     * Apply a configuration. Enabling preallocates the journal ring and
     * reserves series rows; disabling releases the ring and drops any
     * recorded events/series. Metrics registrations always survive (their
     * handles are cached by instrumented code).
     */
    void configure(const TelemetryConfig &config);

    const TelemetryConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled; }

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    EventJournal &journal() { return journal_; }
    const EventJournal &journal() const { return journal_; }

    /**
     * Snapshot every counter and gauge into one series row at @p t_us.
     * The column set freezes on the first sample of a run; metrics created
     * later are not retro-added to the series. No-op when disabled.
     */
    void sampleSeries(std::int64_t t_us);

    /** Column names, frozen at the first sample ("ctr."/"gauge." prefixed
     *  counters and gauges, in registration order). */
    const std::vector<std::string> &seriesColumns() const
    {
        return seriesColumns_;
    }

    const std::vector<SeriesRow> &seriesRows() const { return seriesRows_; }

    /** Drop events, series and metric values; keep all registrations. */
    void reset();

  private:
    TelemetryConfig config_;
    MetricsRegistry metrics_;
    EventJournal journal_;
    std::vector<std::string> seriesColumns_;
    std::size_t seriesCounterCount_ = 0;
    std::size_t seriesGaugeCount_ = 0;
    std::vector<SeriesRow> seriesRows_;
};

/** The process-global sink all instrumented libraries emit into. */
Telemetry &global();

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_TELEMETRY_HPP
