#include "telemetry/trace_context.hpp"

namespace vpm::telemetry {

namespace {

// Single-threaded by design (see header); plain globals keep the common
// path — a schedule() capturing the context — down to two loads.
TraceContext g_current;
std::uint64_t g_nextDecisionId = 1;

} // namespace

TraceContext
currentContext()
{
    return g_current;
}

void
setCurrentContext(TraceContext context)
{
    g_current = context;
}

std::uint64_t
newDecisionId()
{
    return g_nextDecisionId++;
}

TraceScope::TraceScope(TraceContext context) : previous_(g_current)
{
    g_current = context;
}

TraceScope::TraceScope(std::uint64_t cause)
    : TraceScope(TraceContext{cause, 0})
{
}

void
TraceScope::setCauseSeq(std::uint64_t seq)
{
    g_current.causeSeq = seq;
}

TraceScope::~TraceScope()
{
    g_current = previous_;
}

} // namespace vpm::telemetry
