/**
 * @file
 * Causal trace context: which decision an emission is happening "because of".
 *
 * The simulator is single-threaded, so causality is ambient: whatever
 * decision id is installed while code runs is the cause of everything that
 * code emits or schedules. `EventQueue::schedule()` captures the current
 * context into the scheduled event and `Simulator::dispatchOne()` reinstalls
 * it around the callback, so context flows through arbitrarily deep event
 * chains (entry -> latched wake -> exit -> retry) without any plumbing in
 * the domain code. `EventJournal::record()` stamps the current context onto
 * every record, which is how journal rows gain their `cause` field for free.
 *
 * Decision ids are minted by the management layer (one per sleep / wake /
 * migration-batch decision) from a process-global counter that is never
 * reset, so ids stay unique across the back-to-back per-policy runs a bench
 * performs even though simulated time restarts at zero.
 */

#ifndef VPM_TELEMETRY_TRACE_CONTEXT_HPP
#define VPM_TELEMETRY_TRACE_CONTEXT_HPP

#include <cstdint>

namespace vpm::telemetry {

/** The ambient cause of whatever is currently executing. */
struct TraceContext
{
    /** Decision id responsible for the current activity; 0 = none. */
    std::uint64_t cause = 0;

    /** Journal sequence number of the record that announced the cause
     *  (e.g. the migrate_decision row); 0 = unknown/none. */
    std::uint64_t causeSeq = 0;
};

/** The context installed right now ({0, 0} outside any scope). */
TraceContext currentContext();

/** Replace the current context (prefer TraceScope, which restores). */
void setCurrentContext(TraceContext context);

/** Mint a fresh decision id (monotonic from 1, never reset). */
std::uint64_t newDecisionId();

/**
 * RAII installer: constructor swaps in a context, destructor restores the
 * previous one. Scopes nest; the innermost wins, which is what causality
 * means when one decision's handler makes a sub-decision.
 */
class TraceScope
{
  public:
    explicit TraceScope(TraceContext context);

    /** Convenience: install {cause, 0}. */
    explicit TraceScope(std::uint64_t cause);

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /**
     * Late-bind the announcing record's sequence number into the installed
     * context (the decision row can only be journaled after the scope is
     * open, because the row itself must carry the decision id).
     */
    void setCauseSeq(std::uint64_t seq);

    ~TraceScope();

  private:
    TraceContext previous_;
};

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_TRACE_CONTEXT_HPP
