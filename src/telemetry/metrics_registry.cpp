#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <cmath>

namespace vpm::telemetry {

HistogramMetric::HistogramMetric(std::string name, double lo, double hi,
                                 std::size_t buckets)
    : name_(std::move(name)), lo_(lo), hi_(hi),
      counts_(std::max<std::size_t>(buckets, 1), 0)
{
    if (!(hi_ > lo_))
        hi_ = lo_ + 1.0; // degenerate range: clamp rather than crash
}

HistogramMetric::HistogramMetric(const HistogramMetric &other)
    : name_(other.name_)
{
    const std::lock_guard<std::mutex> guard(other.observeMutex_);
    lo_ = other.lo_;
    hi_ = other.hi_;
    counts_ = other.counts_;
    underflow_ = other.underflow_;
    overflow_ = other.overflow_;
    count_ = other.count_;
    sum_ = other.sum_;
}

double
HistogramMetric::bucketWidth() const
{
    return (hi_ - lo_) / static_cast<double>(counts_.size());
}

void
HistogramMetric::observe(double x)
{
    const std::lock_guard<std::mutex> guard(observeMutex_);
    ++count_;
    sum_ += x;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const auto bucket = static_cast<std::size_t>((x - lo_) / bucketWidth());
    ++counts_[std::min(bucket, counts_.size() - 1)];
}

double
HistogramSnapshot::percentile(double fraction) const
{
    if (count == 0)
        return 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(count);

    double seen = static_cast<double>(underflow);
    if (target <= seen)
        return lo;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const double in_bucket = static_cast<double>(buckets[i]);
        if (seen + in_bucket >= target && in_bucket > 0.0) {
            const double within = (target - seen) / in_bucket;
            return lo + (static_cast<double>(i) + within) * bucketWidth();
        }
        seen += in_bucket;
    }
    return hi;
}

HistogramSnapshot
HistogramMetric::snapshot() const
{
    const std::lock_guard<std::mutex> guard(observeMutex_);
    HistogramSnapshot snap;
    snap.lo = lo_;
    snap.hi = hi_;
    snap.buckets = counts_;
    snap.underflow = underflow_;
    snap.overflow = overflow_;
    snap.count = count_;
    snap.sum = sum_;
    return snap;
}

double
HistogramMetric::percentile(double fraction) const
{
    return snapshot().percentile(fraction);
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    const std::lock_guard<std::mutex> guard(lookupMutex_);
    const auto it = counterIndex_.find(std::string(name));
    if (it != counterIndex_.end())
        return counters_[it->second];
    counters_.push_back(Counter(std::string(name)));
    counterIndex_.emplace(std::string(name), counters_.size() - 1);
    return counters_.back();
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    const std::lock_guard<std::mutex> guard(lookupMutex_);
    const auto it = gaugeIndex_.find(std::string(name));
    if (it != gaugeIndex_.end())
        return gauges_[it->second];
    gauges_.push_back(Gauge(std::string(name)));
    gaugeIndex_.emplace(std::string(name), gauges_.size() - 1);
    return gauges_.back();
}

HistogramMetric &
MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                           std::size_t buckets)
{
    const std::lock_guard<std::mutex> guard(lookupMutex_);
    const auto it = histogramIndex_.find(std::string(name));
    if (it != histogramIndex_.end())
        return histograms_[it->second];
    histograms_.push_back(HistogramMetric(std::string(name), lo, hi,
                                          buckets));
    histogramIndex_.emplace(std::string(name), histograms_.size() - 1);
    return histograms_.back();
}

void
MetricsRegistry::zero()
{
    const std::lock_guard<std::mutex> guard(lookupMutex_);
    for (Counter &c : counters_)
        c.value_.store(0, std::memory_order_relaxed);
    for (Gauge &g : gauges_)
        g.value_.store(0.0, std::memory_order_relaxed);
    for (HistogramMetric &h : histograms_) {
        const std::lock_guard<std::mutex> hist_guard(h.observeMutex_);
        std::fill(h.counts_.begin(), h.counts_.end(), 0);
        h.underflow_ = h.overflow_ = h.count_ = 0;
        h.sum_ = 0.0;
    }
}

} // namespace vpm::telemetry
