/**
 * @file
 * Named counters, gauges and fixed-bucket histograms.
 *
 * The registry is the always-on half of the telemetry subsystem: metrics
 * are cheap enough (an integer add, a double store) to stay live even when
 * event journaling is disabled. Handles returned by the registry are stable
 * for the registry's lifetime, so hot paths resolve a metric by name once
 * and then touch only the handle.
 *
 * Thread safety: the sweep orchestrator runs whole simulations concurrently
 * on plain OS threads, and several metrics are written unconditionally
 * (the dispatch counter, log counters, predictor MAE gauge, migration
 * histogram), so the registry is safe for concurrent use:
 *
 *  - find-or-create lookups take the registry mutex (hot paths resolve
 *    handles once, so this is constructor-time cost);
 *  - Counter and Gauge use relaxed atomics (Gauge::add is last-writer-wins
 *    read-modify-write, which is fine for an instantaneous measurement);
 *  - HistogramMetric::observe takes a per-histogram mutex (observations
 *    are management-rate events, not per-dispatch).
 *
 * Cross-metric consistency is NOT promised — an exporter may see counter A
 * updated and counter B not yet; that has always been true on a single
 * thread too (exports happen mid-run).
 */

#ifndef VPM_TELEMETRY_METRICS_REGISTRY_HPP
#define VPM_TELEMETRY_METRICS_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vpm::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    const std::string &name() const { return name_; }

    /** Deque growth relocates nothing, but needs copy-insertability. */
    Counter(const Counter &other)
        : name_(other.name_),
          value_(other.value_.load(std::memory_order_relaxed))
    {
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value-wins instantaneous measurement. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }
    /** Not an atomic RMW: concurrent add() is last-writer-wins, which is
     *  acceptable for a gauge (it is a sampled instantaneous value). */
    void add(double delta)
    {
        value_.store(value_.load(std::memory_order_relaxed) + delta,
                     std::memory_order_relaxed);
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    const std::string &name() const { return name_; }

    Gauge(const Gauge &other)
        : name_(other.name_),
          value_(other.value_.load(std::memory_order_relaxed))
    {
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::atomic<double> value_{0.0};
};

/**
 * A consistent copy of one histogram's state, taken under its observe
 * guard. Percentiles computed from a snapshot can never mix bucket counts
 * from before an observe() with a sum/count from after it.
 */
struct HistogramSnapshot
{
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;

    double bucketWidth() const
    {
        return (hi - lo) / static_cast<double>(buckets.empty()
                                                   ? 1
                                                   : buckets.size());
    }
    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /** Same contract as HistogramMetric::percentile. */
    double percentile(double fraction) const;
};

/**
 * Fixed-range histogram over [lo, hi) with equal-width buckets plus
 * underflow/overflow buckets.
 *
 * Bucket convention: with width w = (hi - lo) / n, bucket i spans
 * [lo + i*w, lo + (i+1)*w) — closed below, open above. A sample exactly
 * on an internal edge therefore counts in the bucket whose range it
 * opens (observe(lo + w) lands in bucket 1, never bucket 0); lo itself
 * lands in bucket 0, and hi itself is already out of range and lands in
 * overflow, as does everything above it. Samples below lo land in
 * underflow. Out-of-range samples still contribute to count()/sum()/
 * mean() — the histogram accounts for every observation, the buckets
 * only bound its resolution — but percentile() clamps them to the range
 * edges.
 */
class HistogramMetric
{
  public:
    void observe(double x);

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    double lowerEdge() const { return lo_; }
    double upperEdge() const { return hi_; }
    double bucketWidth() const;

    /**
     * Value below which @p fraction of the samples fall, by linear
     * interpolation within the containing bucket. Under/overflow samples
     * clamp to the range edges. Returns 0 when empty. Computed from a
     * consistent snapshot (takes the observe guard).
     */
    double percentile(double fraction) const;

    /**
     * All fields copied under the observe guard, so readers racing a
     * concurrent observe() see either all of an observation or none of
     * it. The raw accessors above remain for single-field reads; any
     * multi-field computation (p50/p99 exports) must go through here.
     */
    HistogramSnapshot snapshot() const;

    double sum() const { return sum_; }
    double mean() const { return count_ > 0 ? sum_ / double(count_) : 0.0; }
    const std::string &name() const { return name_; }

    /** Copies the data, not the mutex (deque copy-insertability); takes
     *  the source's observe guard so the copy is never torn. */
    HistogramMetric(const HistogramMetric &other);

  private:
    friend class MetricsRegistry;
    HistogramMetric(std::string name, double lo, double hi,
                    std::size_t buckets);

    std::string name_;
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;

    /** Serializes observe() against snapshot()/percentile()/copy, so
     *  concurrent readers never see a half-applied observation. */
    mutable std::mutex observeMutex_;
};

/**
 * Owner of all named metrics. Lookup is by name and creates on first use;
 * returned references stay valid until the registry is destroyed (storage
 * is a deque, so growth never moves existing metrics).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create the named counter. */
    Counter &counter(std::string_view name);

    /** Find-or-create the named gauge. */
    Gauge &gauge(std::string_view name);

    /**
     * Find-or-create the named histogram. The range/bucket arguments only
     * apply on first creation; later lookups return the existing metric
     * unchanged.
     */
    HistogramMetric &histogram(std::string_view name, double lo, double hi,
                               std::size_t buckets);

    /** @name Iteration, in registration order (for exporters) */
    ///@{
    const std::deque<Counter> &counters() const { return counters_; }
    const std::deque<Gauge> &gauges() const { return gauges_; }
    const std::deque<HistogramMetric> &histograms() const
    {
        return histograms_;
    }
    ///@}

    /**
     * Zero every metric's value. Registrations (and therefore handles held
     * by instrumented code) survive, so this is safe mid-run.
     */
    void zero();

  private:
    /** Guards the three find-or-create indexes and deque growth. */
    std::mutex lookupMutex_;

    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<HistogramMetric> histograms_;
    std::unordered_map<std::string, std::size_t> counterIndex_;
    std::unordered_map<std::string, std::size_t> gaugeIndex_;
    std::unordered_map<std::string, std::size_t> histogramIndex_;
};

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_METRICS_REGISTRY_HPP
