/**
 * @file
 * Bounded-memory downsampling time-series store (`vpm-ts-1`).
 *
 * The journal answers "what happened"; this store answers "how did it
 * *move*": selected metrics (cluster watts, SLA violation rate, hosts per
 * power/idle depth, queue depth, migration inflight, forecast error) are
 * folded into fixed-interval buckets of {min, max, sum, count, last} and
 * sealed buckets are compressed Gorilla-style — delta-of-delta bucket
 * timestamps plus XOR-packed aggregate channels — into bounded blocks.
 * When the configured memory budget is exceeded the oldest block in the
 * store is evicted (and counted), so a week-long replay-service run costs
 * the same memory as a ten-minute bench.
 *
 * Determinism contract (the PR 5 rule): everything observable — the
 * snapshot bytes, Prometheus text, query results — is a function of the
 * recorded samples alone, never of the thread count. Sharded producers
 * accumulate into per-shard `SeriesRecorder`s (plain struct updates, no
 * shared state) and the owner folds them with `mergeRecorders()` in shard
 * index order on the main thread, which reproduces the sequential
 * min/max/sum/count/last fold exactly.
 *
 * Snapshot format `vpm-ts-1` (little-endian, documented in DESIGN.md):
 *   "VPMTS001" magic, u64 bucket_us, u32 series_count, then per series:
 *   name (u16 len + bytes), u64 evicted_buckets, u32 block_count, blocks
 *   (u64 first_bucket_us, u32 bucket_count, u32 byte_len, payload), then
 *   the open bucket (u8 present, u64 start_us, 5 f64 aggregates + u64
 *   count). Readers and writers share this one implementation.
 */

#ifndef VPM_TELEMETRY_TIMESERIES_HPP
#define VPM_TELEMETRY_TIMESERIES_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vpm::telemetry {

/** One sealed (or decoded) downsampling bucket. */
struct TsBucket
{
    std::int64_t startUs = 0; ///< bucket start (aligned to the interval)
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::uint64_t count = 0;
    double last = 0.0;

    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Store sizing knobs. */
struct TimeSeriesConfig
{
    /** Downsampling interval: samples within one interval fold into one
     *  bucket. */
    std::int64_t bucketUs = 60'000'000; // one simulated minute

    /** Hard budget for sealed compressed blocks across all series; the
     *  oldest block in the store is evicted when it would be exceeded. */
    std::size_t memoryBudgetBytes = 1u << 20;

    /** Sealed buckets per compressed block. Small enough that eviction
     *  granularity stays fine, large enough to amortize block headers. */
    std::size_t bucketsPerBlock = 128;
};

/** @name Gorilla-style bit packing (shared by store and snapshot reader)
 *  Layout per bucket: timestamp delta-of-delta (Gorilla prefix codes),
 *  then the five aggregate channels (min, max, sum, count-as-double,
 *  last), each XOR-compressed against the channel's previous value with
 *  the classic leading/meaningful-bits windows. */
///@{

/** Append-only bit stream writer (MSB-first within each byte). */
class BitWriter
{
  public:
    void writeBit(bool bit);
    void writeBits(std::uint64_t value, int bits); ///< high bits first
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::size_t sizeBytes() const { return bytes_.size(); }
    void clear();

  private:
    std::vector<std::uint8_t> bytes_;
    int bitPos_ = 8; ///< next free bit within bytes_.back(); 8 = full
};

/** Sequential reader over a BitWriter's bytes. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size_bytes)
        : data_(data), sizeBits_(size_bytes * 8)
    {
    }

    bool readBit();
    std::uint64_t readBits(int bits);
    bool exhausted() const { return pos_ >= sizeBits_; }

  private:
    const std::uint8_t *data_;
    std::size_t sizeBits_;
    std::size_t pos_ = 0;
};

/** Per-channel XOR compressor state (prev value + bit windows). */
struct XorChannel
{
    std::uint64_t prev = 0;
    int prevLeading = -1; ///< -1: no window established yet
    int prevTrailing = 0;

    void write(BitWriter &out, double value);
    double read(BitReader &in);
};

///@}

/** One compressed run of consecutive sealed buckets. */
struct TsBlock
{
    std::int64_t firstBucketUs = 0;
    std::int64_t lastBucketUs = 0; ///< query prune only; not serialized
    std::uint32_t bucketCount = 0;
    std::vector<std::uint8_t> payload;

    std::size_t sizeBytes() const
    {
        return payload.size() + sizeof(TsBlock);
    }
};

/** Encode @p buckets (ascending startUs) into one block payload. */
TsBlock encodeBlock(const std::vector<TsBucket> &buckets);

/** Decode a block back into buckets. @return false on a corrupt payload
 *  (fewer decodable buckets than the header promises). */
bool decodeBlock(const TsBlock &block, std::vector<TsBucket> &out);

/**
 * Thread-private accumulator for one shard of a sharded producer loop.
 * Records fold into per-series open buckets keyed by series id; nothing
 * here touches shared state. The owning store folds recorders in shard
 * index order (mergeRecorders), reproducing the sequential fold exactly:
 * min/max/count are order-free, sum adds in shard order, and `last`
 * resolves to the highest shard's latest sample — the same value the
 * one-thread sweep would have left behind.
 */
class SeriesRecorder
{
  public:
    void record(std::uint32_t series, double value);
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

  private:
    friend class TimeSeriesStore;
    struct Partial
    {
        std::uint32_t series;
        TsBucket agg; ///< startUs unused; times come from the fold point
    };
    /** Dense by first-touch order within the shard; series ids are
     *  interned on the main thread so touch order is deterministic. */
    std::vector<Partial> entries_;
    std::unordered_map<std::uint32_t, std::size_t> index_;
};

/** The store: named series of compressed bucket history. */
class TimeSeriesStore
{
  public:
    TimeSeriesStore() = default;

    TimeSeriesStore(const TimeSeriesStore &) = delete;
    TimeSeriesStore &operator=(const TimeSeriesStore &) = delete;

    /** (Re)initialize. Enabling resets all history; disabling releases
     *  every block. Series name registrations survive re-configuration so
     *  cached ids stay valid (mirroring MetricsRegistry semantics). */
    void configure(const TimeSeriesConfig &config, bool enabled);

    bool enabled() const { return enabled_; }
    const TimeSeriesConfig &config() const { return config_; }

    /**
     * Find-or-create the series named @p name.
     * @return a stable series id (index into series order). Ids are valid
     *         for the store's lifetime, including across configure().
     */
    std::uint32_t seriesId(std::string_view name);

    /** Number of registered series. */
    std::size_t seriesCount() const { return series_.size(); }

    /** Name of a series id ("" when out of range). */
    const std::string &seriesName(std::uint32_t id) const;

    /**
     * Fold one sample into the series' open bucket at @p t_us. Buckets
     * seal lazily: a sample landing past the open bucket's interval first
     * seals it into the block writer. Samples are expected in
     * non-decreasing time order per series; a stale sample (before the
     * open bucket) folds into the open bucket rather than resurrecting a
     * sealed one. No-op when disabled. Defined inline below: producers
     * call this once per series per tick, so the fold-into-open-bucket
     * fast path is kept call-free.
     */
    void record(std::uint32_t series, std::int64_t t_us, double value);

    /** record() on every series touched by @p recorder, folding shard
     *  partials at time @p t_us, then clear the recorder. Call once per
     *  shard in shard index order, on the owning thread. */
    void mergeRecorder(SeriesRecorder &recorder, std::int64_t t_us);

    /**
     * Seal every open bucket whose interval ended at or before @p t_us.
     * Called by the owner at flush points (every telemetry sample tick);
     * also the moment watchdog rules are evaluated against fresh buckets.
     */
    void flushAt(std::int64_t t_us);

    /** @name Introspection / query */
    ///@{
    /** Sealed + open buckets of @p series intersecting [t0, t1]. */
    std::vector<TsBucket> query(std::uint32_t series, std::int64_t t0_us,
                                std::int64_t t1_us) const;

    /** The most recently sealed bucket, if any. */
    bool lastSealed(std::uint32_t series, TsBucket &out) const;

    /** Buckets lost to eviction on @p series. */
    std::uint64_t evictedBuckets(std::uint32_t series) const;

    /** Total sealed-block payload bytes currently held. */
    std::size_t memoryBytes() const { return blockBytes_; }
    ///@}

    /** @name Snapshots */
    ///@{
    /** Write the whole store as a `vpm-ts-1` binary snapshot. */
    void writeSnapshot(std::ostream &out) const;

    /** Write the latest aggregates per series in Prometheus text
     *  exposition format (one gauge per aggregate channel). */
    void writePrometheus(std::ostream &out) const;
    ///@}

    /** Drop all buckets/blocks; keep series registrations. */
    void reset();

  private:
    struct Series
    {
        std::string name;
        std::vector<TsBlock> blocks;
        std::vector<TsBucket> pendingSealed; ///< sealed, not yet blocked
        TsBucket open;
        bool openActive = false;
        std::uint64_t evicted = 0;
    };

    void seal(Series &series);
    void packPending(Series &series);
    void evictOldest();

    /** Cold half of record(): seal the finished open bucket (if any) and
     *  start a fresh one at @p start with @p value as its first sample. */
    void roll(Series &series, std::int64_t start, double value);

    bool enabled_ = false;
    TimeSeriesConfig config_;
    std::vector<Series> series_;
    std::unordered_map<std::string, std::uint32_t> index_;
    std::size_t blockBytes_ = 0;

    /** One-entry bucket-alignment cache: a sampling pass records many
     *  series at the same timestamp, so the int64 divisions in the
     *  alignment are paid once per distinct t_us, not once per record. */
    std::int64_t lastAlignT_ = 0;
    std::int64_t lastAlignStart_ = 0;
    bool haveAlign_ = false;
};

inline void
TimeSeriesStore::record(std::uint32_t series, std::int64_t t_us,
                        double value)
{
    if (!enabled_ || series >= series_.size())
        return;
    Series &s = series_[series];
    if (!haveAlign_ || t_us != lastAlignT_) {
        lastAlignStart_ =
            t_us - ((t_us % config_.bucketUs) + config_.bucketUs) %
                       config_.bucketUs;
        lastAlignT_ = t_us;
        haveAlign_ = true;
    }
    const std::int64_t start = lastAlignStart_;
    // Fast path: fold into the live bucket (stale samples fold too — a
    // sample from before the open bucket must not resurrect sealed ones).
    if (s.openActive && start <= s.open.startUs) {
        s.open.min = std::min(s.open.min, value);
        s.open.max = std::max(s.open.max, value);
        s.open.sum += value;
        ++s.open.count;
        s.open.last = value;
        return;
    }
    roll(s, start, value);
}

/** Parsed form of a `vpm-ts-1` snapshot (what vpm_top works from). */
struct TsSnapshot
{
    std::int64_t bucketUs = 0;
    struct Series
    {
        std::string name;
        std::uint64_t evicted = 0;
        std::vector<TsBucket> buckets; ///< decoded, ascending, incl. open
    };
    std::vector<Series> series;

    const Series *find(std::string_view name) const;
};

/** Parse a snapshot stream. @return false (with @p error set when
 *  non-null) on bad magic or a truncated/corrupt payload. */
bool readSnapshot(std::istream &in, TsSnapshot &out,
                  std::string *error = nullptr);

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_TIMESERIES_HPP
