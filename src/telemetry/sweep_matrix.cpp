#include "telemetry/sweep_matrix.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "telemetry/json_util.hpp"

namespace vpm::telemetry {

namespace {

/** Shortest round-trip decimal form (matches the bench report writer). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) {
        // Try to shorten: %.17g is exact but ugly; %g usually suffices.
        char short_buf[64];
        std::snprintf(short_buf, sizeof(short_buf), "%g", v);
        std::sscanf(short_buf, "%lf", &parsed);
        if (parsed == v)
            return short_buf;
    }
    return buf;
}

void
writeCi(const stats::ConfidenceInterval &ci, std::ostream &out)
{
    out << "{\"point\":" << num(ci.point) << ",\"lo\":" << num(ci.lo)
        << ",\"hi\":" << num(ci.hi) << ",\"n\":" << ci.n << "}";
}

void
writeCellBody(const SweepCell &cell, std::ostream &out,
              const std::string &indent)
{
    out << indent << "\"id\": \"" << jsonEscape(cell.id) << "\",\n";
    out << indent << "\"index\": " << cell.index << ",\n";
    out << indent << "\"status\": \"" << toString(cell.status) << "\",\n";
    out << indent << "\"error\": \"" << jsonEscape(cell.error) << "\",\n";
    out << indent << "\"manifest_hash\": \""
        << jsonEscape(cell.manifestHash) << "\",\n";
    out << indent << "\"axes\": {";
    for (std::size_t i = 0; i < cell.axes.size(); ++i) {
        if (i > 0)
            out << ", ";
        out << "\"" << jsonEscape(cell.axes[i].axis) << "\": \""
            << jsonEscape(cell.axes[i].value) << "\"";
    }
    out << "},\n";
    out << indent << "\"seeds\": [";
    for (std::size_t i = 0; i < cell.seeds.size(); ++i) {
        if (i > 0)
            out << ", ";
        out << cell.seeds[i];
    }
    out << "],\n";
    out << indent << "\"repeats\": " << cell.repeats << ",\n";
    out << indent << "\"metrics\": {";
    for (std::size_t i = 0; i < cell.metrics.size(); ++i) {
        if (i > 0)
            out << ",";
        out << "\n" << indent << "  \"" << jsonEscape(cell.metrics[i].name)
            << "\": ";
        writeCi(cell.metrics[i].ci, out);
    }
    if (!cell.metrics.empty())
        out << "\n" << indent;
    out << "}\n";
}

bool
parseCi(const JsonValue *node, stats::ConfidenceInterval &ci)
{
    if (!node || !node->isObject())
        return false;
    ci.point = numberOr(node->find("point"), 0.0);
    ci.lo = numberOr(node->find("lo"), 0.0);
    ci.hi = numberOr(node->find("hi"), 0.0);
    ci.n = static_cast<std::uint64_t>(numberOr(node->find("n"), 0.0));
    return true;
}

bool
parseCell(const JsonValue &node, SweepCell &cell, std::string *error)
{
    if (!node.isObject()) {
        if (error)
            *error = "cell is not an object";
        return false;
    }
    cell.id = stringOr(node.find("id"), "");
    cell.index =
        static_cast<std::uint64_t>(numberOr(node.find("index"), 0.0));
    const std::string status = stringOr(node.find("status"), "ok");
    if (status == "ok") {
        cell.status = CellStatus::Ok;
    } else if (status == "failed") {
        cell.status = CellStatus::Failed;
    } else if (status == "timeout") {
        cell.status = CellStatus::Timeout;
    } else {
        if (error)
            *error = "cell '" + cell.id + "': unknown status '" + status +
                     "'";
        return false;
    }
    cell.error = stringOr(node.find("error"), "");
    cell.manifestHash = stringOr(node.find("manifest_hash"), "");
    if (const JsonValue *axes = node.find("axes");
        axes && axes->isObject()) {
        for (const auto &[key, value] : axes->object)
            cell.axes.push_back({key, stringOr(&value, "")});
    }
    if (const JsonValue *seeds = node.find("seeds");
        seeds && seeds->isArray()) {
        for (const JsonValue &seed : seeds->array)
            cell.seeds.push_back(
                static_cast<std::uint64_t>(numberOr(&seed, 0.0)));
    }
    cell.repeats = static_cast<int>(numberOr(node.find("repeats"), 0.0));
    if (const JsonValue *metrics = node.find("metrics");
        metrics && metrics->isObject()) {
        for (const auto &[key, value] : metrics->object) {
            CellMetric metric;
            metric.name = key;
            if (!parseCi(&value, metric.ci)) {
                if (error)
                    *error = "cell '" + cell.id + "': metric '" + key +
                             "' is not an interval object";
                return false;
            }
            cell.metrics.push_back(std::move(metric));
        }
    }
    if (cell.id.empty()) {
        if (error)
            *error = "cell without an id";
        return false;
    }
    return true;
}

std::string
slurp(std::istream &in)
{
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

const char *
toString(CellStatus status)
{
    switch (status) {
      case CellStatus::Ok:
        return "ok";
      case CellStatus::Failed:
        return "failed";
      case CellStatus::Timeout:
        return "timeout";
    }
    return "failed";
}

const CellMetric *
SweepCell::metric(const std::string &name) const
{
    for (const CellMetric &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::string
SweepCell::axis(const std::string &name) const
{
    for (const AxisValue &a : axes)
        if (a.axis == name)
            return a.value;
    return "";
}

const SweepCell *
SweepMatrix::cell(const std::string &id) const
{
    for (const SweepCell &c : cells)
        if (c.id == id)
            return &c;
    return nullptr;
}

void
writeSweepJson(const SweepMatrix &matrix, std::ostream &out)
{
    out << "{\n";
    out << "  \"schema\": \"" << jsonEscape(matrix.schema) << "\",\n";
    out << "  \"name\": \"" << jsonEscape(matrix.name) << "\",\n";
    out << "  \"threads\": " << matrix.threads << ",\n";
    out << "  \"exec\": \"" << jsonEscape(matrix.exec) << "\",\n";
    out << "  \"cells\": [";
    for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
        if (i > 0)
            out << ",";
        out << "\n    {\n";
        writeCellBody(matrix.cells[i], out, "      ");
        out << "    }";
    }
    if (!matrix.cells.empty())
        out << "\n  ";
    out << "]\n}\n";
}

void
writeCellJson(const SweepCell &cell, std::ostream &out)
{
    out << "{\n";
    writeCellBody(cell, out, "  ");
    out << "}\n";
}

bool
readSweepJson(std::istream &in, SweepMatrix &out, std::string *error)
{
    JsonValue root;
    if (!parseJson(slurp(in), root, error))
        return false;
    if (!root.isObject()) {
        if (error)
            *error = "top level is not an object";
        return false;
    }
    out.schema = stringOr(root.find("schema"), "");
    if (out.schema != "vpm-sweep-1") {
        if (error)
            *error = "unsupported schema '" + out.schema +
                     "' (want vpm-sweep-1)";
        return false;
    }
    out.name = stringOr(root.find("name"), "");
    out.threads = static_cast<int>(numberOr(root.find("threads"), 1.0));
    out.exec = stringOr(root.find("exec"), "inproc");
    const JsonValue *cells = root.find("cells");
    if (!cells || !cells->isArray()) {
        if (error)
            *error = "missing 'cells' array";
        return false;
    }
    for (const JsonValue &node : cells->array) {
        SweepCell cell;
        if (!parseCell(node, cell, error))
            return false;
        out.cells.push_back(std::move(cell));
    }
    return true;
}

bool
readCellJson(std::istream &in, SweepCell &out, std::string *error)
{
    JsonValue root;
    if (!parseJson(slurp(in), root, error))
        return false;
    return parseCell(root, out, error);
}

SweepCompareResult
compareSweepMatrices(const SweepMatrix &base, const SweepMatrix &next,
                     const SweepCompareOptions &options)
{
    SweepCompareResult result;
    if (base.schema != next.schema) {
        result.error = "schema mismatch: '" + base.schema + "' vs '" +
                       next.schema + "'";
        return result;
    }
    result.comparable = true;

    std::unordered_map<std::string, const SweepCell *> base_cells;
    for (const SweepCell &cell : base.cells)
        base_cells.emplace(cell.id, &cell);

    for (const SweepCell &next_cell : next.cells) {
        const auto it = base_cells.find(next_cell.id);
        if (it == base_cells.end()) {
            result.onlyInNext.push_back(next_cell.id);
            continue;
        }
        const SweepCell &base_cell = *it->second;
        base_cells.erase(it);

        if (next_cell.status != CellStatus::Ok) {
            result.unhealthyNext.push_back(next_cell.id);
            continue;
        }
        if (base_cell.status != CellStatus::Ok)
            continue; // nothing sound to compare against

        for (const auto &[metric_name, larger_is_worse] :
             options.gatedMetrics) {
            const CellMetric *base_metric = base_cell.metric(metric_name);
            const CellMetric *next_metric = next_cell.metric(metric_name);
            if (!base_metric || !next_metric)
                continue;
            if (!stats::intervalsSeparated(base_metric->ci,
                                           next_metric->ci))
                continue; // indistinguishable at 95% — the gate stays quiet
            SweepDelta delta;
            delta.cellId = next_cell.id;
            delta.metric = metric_name;
            delta.base = base_metric->ci;
            delta.next = next_metric->ci;
            const bool larger = next_metric->ci.point > base_metric->ci.point;
            delta.worse = larger == larger_is_worse;
            if (delta.worse)
                result.regressions.push_back(std::move(delta));
            else
                result.improvements.push_back(std::move(delta));
        }
    }
    for (const auto &[id, cell] : base_cells)
        result.onlyInBase.push_back(id);
    std::sort(result.onlyInBase.begin(), result.onlyInBase.end());
    return result;
}

void
writeSweepComparison(const SweepMatrix &base, const SweepMatrix &next,
                     const SweepCompareResult &result, std::ostream &out)
{
    out << "sweep_compare: '" << base.name << "' (" << base.cells.size()
        << " cells) vs '" << next.name << "' (" << next.cells.size()
        << " cells)\n";
    if (!result.comparable) {
        out << "  not comparable: " << result.error << "\n";
        return;
    }
    for (const std::string &id : result.onlyInBase)
        out << "  removed cell (informational): " << id << "\n";
    for (const std::string &id : result.onlyInNext)
        out << "  new cell (informational): " << id << "\n";
    for (const std::string &id : result.unhealthyNext)
        out << "  UNHEALTHY: " << id << " did not complete\n";

    const auto show = [&](const SweepDelta &delta, const char *tag) {
        out << "  " << tag << ": " << delta.cellId << " " << delta.metric
            << " " << delta.base.point << " [" << delta.base.lo << ", "
            << delta.base.hi << "] -> " << delta.next.point << " ["
            << delta.next.lo << ", " << delta.next.hi
            << "] (CIs separated, n=" << delta.base.n << " vs "
            << delta.next.n << ")\n";
    };
    for (const SweepDelta &delta : result.regressions)
        show(delta, "REGRESSION");
    for (const SweepDelta &delta : result.improvements)
        show(delta, "improvement");

    if (!result.regressed() && result.improvements.empty())
        out << "  no statistically separable change on any gated metric\n";
    else if (!result.regressed())
        out << "  no regression (improvements only)\n";
}

} // namespace vpm::telemetry
