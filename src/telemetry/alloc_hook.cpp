/**
 * @file
 * Counting global operator new/delete for profile builds.
 *
 * Compiled in only when the build sets VPM_PROFILE_ALLOC (CMake option
 * -DVPM_PROFILE_ALLOC=ON); otherwise this translation unit is empty and the
 * default allocator is untouched. The hook adds one relaxed atomic add per
 * allocation — cheap, but not free, which is why it is a build-time opt-in
 * rather than a runtime flag: replacing operator new is a whole-program
 * property. Profiler::allocStats() reports the totals.
 */

#ifdef VPM_PROFILE_ALLOC

#include <cstdlib>
#include <new>

#include "telemetry/profiler.hpp"

namespace {

void *
countedAlloc(std::size_t size)
{
    vpm::telemetry::detail::allocCount.fetch_add(1,
                                                 std::memory_order_relaxed);
    vpm::telemetry::detail::allocBytes.fetch_add(size,
                                                 std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

} // namespace

void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#endif // VPM_PROFILE_ALLOC
