/**
 * @file
 * Configuration for the telemetry subsystem.
 *
 * Telemetry is off by default and every emission point early-outs on the
 * enabled flag, so instrumented code costs one predictable branch per event
 * when tracing is not wanted. All journal storage is preallocated at
 * configure() time: recording never allocates.
 */

#ifndef VPM_TELEMETRY_TELEMETRY_CONFIG_HPP
#define VPM_TELEMETRY_TELEMETRY_CONFIG_HPP

#include <cstddef>
#include <cstdint>

namespace vpm::telemetry {

/** Knobs for the journal and metric-series collectors. */
struct TelemetryConfig
{
    /** Master switch; when false the journal and series record nothing. */
    bool enabled = false;

    /**
     * Ring-buffer capacity of the event journal, in events. When the
     * journal is full the oldest events are overwritten (and counted as
     * dropped), so a run can never exhaust memory by tracing.
     */
    std::size_t journalCapacity = 1u << 16;

    /** Rows reserved up front for the metric time series. */
    std::size_t seriesReserveRows = 4096;

    /**
     * Collect per-tick rows of every counter/gauge (the CSV export path).
     * Store-only runs (--timeseries/--watchdog without --trace) turn this
     * off: the compressed store already holds the history, and the rows
     * would grow unbounded for nothing.
     */
    bool seriesRowsEnabled = true;

    /** Enables the compressed downsampling time-series store (vpm-ts-1).
     *  Independent switch under the master one: tracing a run does not
     *  imply paying for the store and vice versa. */
    bool timeseriesEnabled = false;

    /** Downsampling interval of the time-series store. */
    std::int64_t timeseriesBucketUs = 60'000'000;

    /** Memory budget for sealed compressed blocks (oldest evicted). */
    std::size_t timeseriesBudgetBytes = 1u << 20;
};

} // namespace vpm::telemetry

#endif // VPM_TELEMETRY_TELEMETRY_CONFIG_HPP
