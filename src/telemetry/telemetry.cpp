#include "telemetry/telemetry.hpp"

#include <fstream>

#include "telemetry/profiler.hpp"

namespace vpm::telemetry {

void
Telemetry::configure(const TelemetryConfig &config)
{
    config_ = config;
    journal_.configure(config.journalCapacity, config.enabled);
    TimeSeriesConfig ts;
    ts.bucketUs = config.timeseriesBucketUs;
    ts.memoryBudgetBytes = config.timeseriesBudgetBytes;
    timeseries_.configure(ts, config.enabled && config.timeseriesEnabled);
    watchdog_.reset();
    haveFlushWall_ = false; // bucket grid (or history) may have changed
    seriesColumns_.clear();
    seriesCounterCount_ = 0;
    seriesGaugeCount_ = 0;
    seriesRows_.clear();
    seriesRows_.shrink_to_fit();
    if (config_.enabled)
        seriesRows_.reserve(config_.seriesReserveRows);
}

void
Telemetry::sampleSeries(std::int64_t t_us)
{
    PROF_ZONE("telemetry.sample_series");
    if (!config_.enabled || !config_.seriesRowsEnabled)
        return;
    if (seriesColumns_.empty()) {
        // Freeze the column set on first sample.
        seriesCounterCount_ = metrics_.counters().size();
        seriesGaugeCount_ = metrics_.gauges().size();
        seriesColumns_.reserve(seriesCounterCount_ + seriesGaugeCount_);
        for (const Counter &c : metrics_.counters())
            seriesColumns_.push_back("ctr." + c.name());
        for (const Gauge &g : metrics_.gauges())
            seriesColumns_.push_back("gauge." + g.name());
        if (seriesColumns_.empty())
            return; // nothing registered yet; try again next sample
    }

    SeriesRow row;
    row.timeUs = t_us;
    row.values.reserve(seriesColumns_.size());
    std::size_t i = 0;
    for (const Counter &c : metrics_.counters()) {
        if (i++ >= seriesCounterCount_)
            break;
        row.values.push_back(static_cast<double>(c.value()));
    }
    i = 0;
    for (const Gauge &g : metrics_.gauges()) {
        if (i++ >= seriesGaugeCount_)
            break;
        row.values.push_back(g.value());
    }
    seriesRows_.push_back(std::move(row));
}

void
Telemetry::flushTimeseries(std::int64_t t_us)
{
    if (!timeseries_.enabled())
        return;
    // Idempotence gate: nothing seals (and the watchdog's wall grid does
    // not advance) until t_us crosses a bucket boundary, so only the first
    // call per bucket interval does any work.
    const std::int64_t bucket = timeseries_.config().bucketUs;
    const std::int64_t wall =
        t_us - (((t_us % bucket) + bucket) % bucket);
    if (haveFlushWall_ && wall == lastFlushWallUs_)
        return;
    lastFlushWallUs_ = wall;
    haveFlushWall_ = true;
    timeseries_.flushAt(t_us);
    if (!watchdog_.empty()) {
        const auto alerts = watchdog_.evaluate(timeseries_, journal_, t_us);
        if (!alerts.empty()) {
            if (alertCounter_ == nullptr)
                alertCounter_ = &metrics_.counter("watchdog.alerts");
            alertCounter_->increment(alerts.size());
        }
    }
    if (!snapshotPath_.empty()) {
        // Wall-clock throttle: a quick run flushes thousands of simulated
        // ticks per real second, and each refresh rewrites the whole
        // store; count-based spacing would make the rewrite the dominant
        // cost of fast runs.
        const auto now = std::chrono::steady_clock::now();
        if (lastSnapshotWrite_.time_since_epoch().count() == 0 ||
            now - lastSnapshotWrite_ >=
                std::chrono::milliseconds(snapshotIntervalMs_)) {
            writeSnapshotFiles();
            lastSnapshotWrite_ = now;
        }
    }
}

void
Telemetry::setSnapshotTarget(std::string path, int min_interval_ms)
{
    snapshotPath_ = std::move(path);
    snapshotIntervalMs_ = min_interval_ms > 0 ? min_interval_ms : 1;
    lastSnapshotWrite_ = {};
}

bool
Telemetry::writeSnapshotFiles() const
{
    if (snapshotPath_.empty())
        return false;
    std::ofstream bin(snapshotPath_, std::ios::binary | std::ios::trunc);
    if (!bin)
        return false;
    timeseries_.writeSnapshot(bin);
    std::ofstream prom(snapshotPath_ + ".prom", std::ios::trunc);
    if (!prom)
        return false;
    timeseries_.writePrometheus(prom);
    return true;
}

void
Telemetry::reset()
{
    journal_.clear();
    metrics_.zero();
    timeseries_.reset();
    watchdog_.reset();
    haveFlushWall_ = false;
    seriesColumns_.clear();
    seriesCounterCount_ = 0;
    seriesGaugeCount_ = 0;
    seriesRows_.clear();
}

Telemetry &
global()
{
    static Telemetry instance;
    return instance;
}

} // namespace vpm::telemetry
