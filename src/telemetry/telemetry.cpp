#include "telemetry/telemetry.hpp"

#include "telemetry/profiler.hpp"

namespace vpm::telemetry {

void
Telemetry::configure(const TelemetryConfig &config)
{
    config_ = config;
    journal_.configure(config.journalCapacity, config.enabled);
    seriesColumns_.clear();
    seriesCounterCount_ = 0;
    seriesGaugeCount_ = 0;
    seriesRows_.clear();
    seriesRows_.shrink_to_fit();
    if (config_.enabled)
        seriesRows_.reserve(config_.seriesReserveRows);
}

void
Telemetry::sampleSeries(std::int64_t t_us)
{
    PROF_ZONE("telemetry.sample_series");
    if (!config_.enabled)
        return;
    if (seriesColumns_.empty()) {
        // Freeze the column set on first sample.
        seriesCounterCount_ = metrics_.counters().size();
        seriesGaugeCount_ = metrics_.gauges().size();
        seriesColumns_.reserve(seriesCounterCount_ + seriesGaugeCount_);
        for (const Counter &c : metrics_.counters())
            seriesColumns_.push_back("ctr." + c.name());
        for (const Gauge &g : metrics_.gauges())
            seriesColumns_.push_back("gauge." + g.name());
        if (seriesColumns_.empty())
            return; // nothing registered yet; try again next sample
    }

    SeriesRow row;
    row.timeUs = t_us;
    row.values.reserve(seriesColumns_.size());
    std::size_t i = 0;
    for (const Counter &c : metrics_.counters()) {
        if (i++ >= seriesCounterCount_)
            break;
        row.values.push_back(static_cast<double>(c.value()));
    }
    i = 0;
    for (const Gauge &g : metrics_.gauges()) {
        if (i++ >= seriesGaugeCount_)
            break;
        row.values.push_back(g.value());
    }
    seriesRows_.push_back(std::move(row));
}

void
Telemetry::reset()
{
    journal_.clear();
    metrics_.zero();
    seriesColumns_.clear();
    seriesCounterCount_ = 0;
    seriesGaugeCount_ = 0;
    seriesRows_.clear();
}

Telemetry &
global()
{
    static Telemetry instance;
    return instance;
}

} // namespace vpm::telemetry
