/**
 * @file
 * DVFS controller: the classic alternative power knob (E5 extension).
 *
 * Before low-latency sleep states, the standard dynamic power lever was
 * per-host frequency/voltage scaling. This controller implements it so
 * the evaluation can compare and combine the two: every period it sets
 * each powered-on host to the lowest discrete frequency whose scaled
 * capacity still covers recent demand with headroom. Because idle power
 * is static, DVFS alone cannot approach proportionality — which is
 * exactly the comparison the E5 bench draws.
 */

#ifndef VPM_CORE_DVFS_HPP
#define VPM_CORE_DVFS_HPP

#include <cstdint>
#include <vector>

#include "datacenter/datacenter_sim.hpp"

namespace vpm::mgmt {

/** DVFS policy knobs. */
struct DvfsConfig
{
    /** Selectable frequency fractions, ascending, each in (0, 1], last
     *  must be 1.0 (nominal). */
    std::vector<double> levels{0.6, 0.7, 0.8, 0.9, 1.0};

    /** Demand headroom kept at the chosen level: pick the lowest f with
     *  demand <= target * capacity * f. */
    double targetUtilization = 0.85;

    /** Controller period; must be a multiple of the evaluation interval. */
    sim::SimTime period = sim::SimTime::minutes(1.0);
};

/** Per-host frequency governor driven off the evaluation cadence. */
class DvfsController
{
  public:
    DvfsController(dc::Cluster &cluster, dc::DatacenterSim &dcsim,
                   const DvfsConfig &config = {});

    DvfsController(const DvfsController &) = delete;
    DvfsController &operator=(const DvfsController &) = delete;

    /** Hook onto the evaluation cadence. Call exactly once. */
    void start();

    /** Run one control step immediately (tests drive this directly). */
    void controlCycle();

    /** Frequency-change commands issued so far. */
    std::uint64_t transitions() const { return transitions_; }

    const DvfsConfig &config() const { return config_; }

  private:
    dc::Cluster &cluster_;
    dc::DatacenterSim &dcsim_;
    DvfsConfig config_;
    bool started_ = false;
    std::uint64_t evaluationsSeen_ = 0;
    std::uint64_t evaluationsPerCycle_ = 1;
    std::uint64_t transitions_ = 0;
};

} // namespace vpm::mgmt

#endif // VPM_CORE_DVFS_HPP
