/**
 * @file
 * VpmManager: the end-to-end power-aware virtualization manager — the
 * paper's primary contribution.
 *
 * Every management period the manager:
 *   1. feeds per-VM and aggregate demand into its predictors;
 *   2. restores capacity if a shortfall is predicted — first by cancelling
 *      in-progress drains (free: those hosts are still on), then by waking
 *      sleeping hosts, lowest-exit-latency states first;
 *   3. rebalances load across usable hosts (the DRM baseline behaviour);
 *   4. after a hysteresis streak of surplus cycles, evacuates the least
 *      loaded host via live migration and marks it draining;
 *   5. puts fully drained hosts to sleep, choosing the state either by
 *      policy fiat ("S3"/"S5") or by break-even analysis against the
 *      observed idle-interval estimate.
 *
 * Configured with loadBalance only it *is* the DRM baseline; with neither
 * flag it is the static NoPM baseline. This is how the paper's policy
 * comparison stays apples-to-apples: one code path, different knobs.
 */

#ifndef VPM_CORE_MANAGER_HPP
#define VPM_CORE_MANAGER_HPP

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/placement.hpp"
#include "core/predictor.hpp"
#include "datacenter/datacenter_sim.hpp"
#include "datacenter/fleet_tree.hpp"
#include "datacenter/provisioning.hpp"
#include "power/breakeven.hpp"

namespace vpm::mgmt {

/** Full policy configuration of the manager. */
struct VpmConfig
{
    /** Management period; must be a multiple of the evaluation interval. */
    sim::SimTime period = sim::SimTime::minutes(5.0);

    /** Enable DRS-style load balancing (step 3). */
    bool loadBalance = true;

    /** Enable power management (steps 2, 4, 5). */
    bool powerManage = true;

    /** Predictor family used for per-VM sizing and the aggregate. */
    PredictorKind predictor = PredictorKind::WindowMax;

    /** Destination-choice heuristic for packing and balancing. */
    PackingHeuristic heuristic = PackingHeuristic::BestFitDecreasing;

    /** @name DRM knobs */
    ///@{
    /** Per-host predicted-utilization cap enforced by placement. */
    double targetUtilization = 0.80;

    /** Max-min predicted-utilization spread tolerated before balancing. */
    double imbalanceThreshold = 0.25;

    /** Migration budget per management cycle (balancing + evacuation). */
    int maxMigrationsPerCycle = 10;
    ///@}

    /** @name Power-management knobs */
    ///@{
    /** Extra fraction of predicted demand kept as powered-on capacity. */
    double capacityBuffer = 0.15;

    /** Consecutive surplus cycles required before an evacuation starts. */
    int hysteresisCycles = 3;

    /** Max evacuations initiated per cycle. */
    int maxEvacuationsPerCycle = 1;

    /**
     * Sleep state to use ("S3", "S5", ...); empty string selects the state
     * adaptively by break-even analysis against the idle-interval estimate.
     */
    std::string sleepState = "S3";

    /**
     * Heterogeneity-aware victim choice: score evacuation candidates by
     * parkable watts per unit of load to move, instead of load alone, so
     * mixed clusters park their power-hungry generation first.
     */
    bool heterogeneityAware = false;

    /**
     * Prefer same-rack migration destinations (needs a Topology attached
     * via attachTopology); falls back to any rack when the home rack is
     * full. Keeps consolidation traffic off the slow shared uplinks.
     */
    bool rackAffinity = false;

    /**
     * Cluster power cap in watts; 0 disables. Enforcement is on the
     * admission side: a wake is denied while the projected worst case
     * (peak power of every committed host plus the sleep floors) would
     * exceed the cap. Demand on already-running hosts is never throttled
     * — denials trade SLA for the cap, which is the E4 experiment.
     */
    double clusterPowerCapWatts = 0.0;

    /** Seed/floor for the observed idle-interval estimate (adaptive mode).*/
    sim::SimTime expectedIdleSeed = sim::SimTime::minutes(20.0);

    /**
     * Issue S-state sleep commands for drained hosts. When false the
     * manager *parks* them instead: the host stays On with its idle
     * hierarchy fully descended, is excluded from placement, balancing
     * and consolidation like a maintenance host, and is reclaimed
     * instantly (no boot transition) on a capacity shortfall. Models
     * consolidation on hardware whose only idle mechanism is C-states;
     * without an attached hierarchy a parked host just burns idle watts.
     */
    bool hostSleep = true;

    /**
     * With hostSleep on: drained hosts park first, and only once more
     * than this many are parked does the oldest escalate to a real
     * S-state sleep. The reserve absorbs surges with zero boot latency
     * (a parked host is usable in the same management cycle) while the
     * overflow still reaches deep-sleep watts — the host-level tier of
     * the idle hierarchy. 0 keeps the classic behavior: every drained
     * host is slept immediately.
     */
    int parkedReserve = 0;
    ///@}

    /** @name Hierarchical fleet mode */
    ///@{
    /**
     * Manage through the rack → pod → cluster aggregate tree instead of
     * per-VM scans: demand is predicted from the tree's root row alone,
     * capacity decisions descend only into racks whose aggregates changed
     * or that report relevant members (asleep hosts for wakes, empty On
     * hosts for sleeps), and per-cycle cost is O(dirty racks x rack
     * width), not O(VMs). Consolidation is wake/sleep of naturally empty
     * hosts only — no balancing or evacuation migrations — which is the
     * regime that scales to 100k hosts (F12). Off by default: the tree's
     * rack-wise demand fold changes FP summation order versus the flat
     * walk, so enabling it is a (tiny but real) policy change.
     */
    bool hierarchical = false;

    /** Contiguous hosts per rack for the aggregate tree. */
    std::size_t hostsPerRack = 32;

    /** Contiguous racks per pod for the aggregate tree. */
    std::size_t racksPerPod = 16;
    ///@}

    /**
     * Anti-affinity groups: VMs within a group are never placed on the
     * same host by the planner (HA replicas). Ids referring to departed
     * VMs are ignored.
     */
    std::vector<std::vector<dc::VmId>> antiAffinityGroups;

    /** @name High availability */
    ///@{
    /**
     * Restart VMs stranded on a non-On host (crash) onto live hosts at
     * the start of every management cycle. On by default: HA restart is
     * part of the base management stack the paper builds on.
     */
    bool haRestart = true;

    /**
     * Keep this many hosts' worth of spare powered-on capacity beyond
     * predicted demand (N+k failover headroom). Consolidation will not
     * dig into the spare, and wakes trigger when it erodes — e.g. after
     * a crash. Assumes roughly uniform host sizes.
     */
    int spareHostsFloor = 0;
    ///@}
};

/** Counters exposed for the overhead comparisons (F4/F7). */
struct ManagerStats
{
    std::uint64_t cycles = 0;
    std::uint64_t migrationsRequested = 0;
    std::uint64_t balanceMoves = 0;
    std::uint64_t evacuationsStarted = 0;
    std::uint64_t evacuationsAbandoned = 0;
    std::uint64_t drainsCancelled = 0;
    std::uint64_t sleepsIssued = 0;
    std::uint64_t wakesIssued = 0;
    std::uint64_t hostsParked = 0;
    std::uint64_t hostsUnparked = 0;
    std::uint64_t wakesDeniedByCap = 0;
    std::uint64_t shortfallCycles = 0;
    std::uint64_t haRestarts = 0;
};

/** The periodic power-aware virtualization management controller. */
class VpmManager
{
  public:
    VpmManager(sim::Simulator &simulator, dc::Cluster &cluster,
               dc::MigrationEngine &migration, dc::DatacenterSim &dcsim,
               const VpmConfig &config = {});

    VpmManager(const VpmManager &) = delete;
    VpmManager &operator=(const VpmManager &) = delete;

    /**
     * Hook the manager onto the datacenter's evaluation cadence. The
     * management cycle runs right after every (period / evaluation
     * interval)-th evaluation, so it always acts on fresh demand.
     * Call exactly once, before the simulation runs.
     */
    void start();

    /** Run one management cycle immediately (tests drive this directly). */
    void managementCycle();

    /**
     * Couple a provisioning engine: the manager counts arrivals waiting
     * for a host as required capacity, so it wakes hosts for them instead
     * of leaving placement to starve against a consolidated cluster.
     */
    void attachProvisioning(dc::ProvisioningEngine &provisioning);

    /**
     * Couple the network topology so planners know rack assignments
     * (enables the rackAffinity policy knob). Must outlive the manager.
     */
    void attachTopology(const dc::Topology &topology);

    const ManagerStats &stats() const { return stats_; }
    const VpmConfig &config() const { return config_; }

    /** @name Operator maintenance mode */
    ///@{
    /**
     * Put a host into maintenance: the manager evacuates it (retrying
     * every cycle until the cluster can absorb its VMs) and then holds it
     * On but excluded from placement, balancing, consolidation and wake
     * candidates, until endMaintenance(). A sleeping host may also enter
     * maintenance; it simply stays asleep and will not be woken.
     * @return false if the host is already in maintenance.
     */
    bool requestMaintenance(dc::HostId host);

    /**
     * Release a host from maintenance; it becomes ordinary capacity
     * again (the next cycles will balance load onto it as needed).
     * @return false if the host was not in maintenance.
     */
    bool endMaintenance(dc::HostId host);

    /** true once a maintenance host is On and fully evacuated. */
    bool maintenanceReady(dc::HostId host) const;

    const std::set<dc::HostId> &maintenanceHosts() const
    {
        return maintenance_;
    }
    ///@}

    /** Hosts currently being evacuated for consolidation. */
    const std::set<dc::HostId> &drainingHosts() const { return draining_; }

    /** Drained hosts held On in deep idle (hostSleep = false mode). */
    const std::set<dc::HostId> &parkedHosts() const { return parked_; }

    /** Current estimate of a sleeping host's idle interval. */
    sim::SimTime expectedIdle() const { return expectedIdle_; }

    /** @name Replay / checkpoint support */
    ///@{
    /** The aggregate tree (configured only in hierarchical mode). */
    const dc::FleetTree &fleetTree() const { return tree_; }

    /**
     * Append the manager's complete mutable policy state — per-VM and
     * aggregate predictors, drain/maintenance/park sets and timestamps,
     * hysteresis streak, idle estimate, cycle counters, stats — to
     * @p out as raw bytes. Byte-stable given identical history; replay
     * checkpoints compare this against a deterministically re-executed
     * run (it is never loaded back).
     */
    void serializeState(std::vector<std::uint8_t> &out) const;

    /**
     * What-if branching: overwrite the runtime-safe knob subset of the
     * live config with @p next. Structural knobs are deliberately kept —
     * period (baked into the evaluation cadence), predictor family and
     * PeriodicProfile geometry (built state), hierarchical mode and rack
     * geometry (tree already configured), anti-affinity groups and the
     * expectedIdle seed (already consumed). Everything else (balancing,
     * power management, sleep state, parking, caps, buffers) takes
     * effect from the next management cycle.
     */
    void applyPolicyDelta(const VpmConfig &next);
    ///@}

  private:
    /**
     * Build a predictor of the configured family. PeriodicProfile
     * predictors are sized so one revolution equals 24 h of management
     * cycles at this manager's period.
     */
    std::unique_ptr<DemandPredictor> makeConfiguredPredictor() const;

    /** Feed predictors with this cycle's demand. */
    void observeDemand();

    /**
     * The whole management cycle in hierarchical mode: refresh the
     * aggregate tree, predict from its root row, then triage — wake
     * asleep hosts rack by rack on a shortfall, sleep empty On hosts
     * rack by rack on a sustained surplus. Never walks a rack whose
     * aggregate rules it out.
     */
    void hierarchicalCycle();

    /** Rack-triage wake loop; updates @p committed as hosts are issued. */
    void wakeHierarchical(double required, double limit, double committed);

    /** Rack-triage sleep loop over empty On hosts. */
    void sleepHierarchical(double required, double limit, double committed);

    /** Predicted demand of one VM, clamped to its size, in MHz. */
    double predictedVmMhz(const dc::Vm &vm) const;

    /** Predicted aggregate demand with the capacity buffer, in MHz. */
    double requiredCapacityMhz() const;

    /** Capacity that is on or inbound (exiting / pending wake), in MHz. */
    double committedCapacityMhz() const;

    /** Restart VMs stranded on crashed hosts onto live capacity. */
    void restartStrandedVms();

    /** Spare powered-on capacity the floor demands, in MHz. */
    double spareFloorMhz() const;

    /** Steps 2: ensure enough capacity is on or on the way. */
    void ensureCapacity();

    /** Wake a host if a pending arrival has no memory-feasible home. */
    void ensurePlacementHeadroom();

    /** Step 3 + 4: plan and issue migrations; returns evacuation victims. */
    void rebalanceAndConsolidate();

    /** Step 5: put fully drained hosts to sleep. */
    void completeDrains();

    /**
     * Return the planning snapshot of the current cluster state. The model
     * is persistent: it is rebuilt from scratch only on first use or when
     * the cluster's placement epoch moved (membership change); otherwise
     * the per-entity fields and usage accumulators are refreshed in place,
     * which yields a bit-identical model without reallocating. Any pins or
     * applied moves from a previous pass are overwritten.
     */
    PlacementModel &buildModel() const;

    /** Pick the sleep state for @p host; nullptr means "stay on". */
    const power::SleepStateSpec *chooseSleepState(const dc::Host &host) const;

    /**
     * Pick the next evacuation victim among on, non-draining hosts, or
     * nullptr if none qualify. Least predicted load by default;
     * watts-per-load scoring when heterogeneity-aware.
     */
    const dc::Host *chooseEvacuationCandidate(const PlacementModel &model)
        const;

    /** The most attractive wakeable host, or nullptr. */
    dc::Host *findWakeCandidate() const;

    /**
     * Worst-case committed power if @p extra additionally turns on:
     * peak watts for every on/arriving host, sleep floor for the rest.
     */
    double projectedPeakWatts(const dc::Host *extra) const;

    /**
     * Wake the most attractive sleeping host; false if none exists or
     * the power cap denies it (counted in wakesDeniedByCap).
     * @param reason Why the wake was needed; journaled with the decision.
     */
    bool wakeOneHost(const char *reason);

    void cancelDrain(dc::HostId host);

    sim::Simulator &simulator_;
    dc::Cluster &cluster_;
    dc::MigrationEngine &migration_;
    dc::DatacenterSim &dcsim_;
    dc::ProvisioningEngine *provisioning_ = nullptr;
    const dc::Topology *topology_ = nullptr;
    VpmConfig config_;

    /** Per-VM predictors in dense VM-id slots (null = none yet). */
    std::vector<std::unique_ptr<DemandPredictor>> vmPredictors_;
    std::unique_ptr<DemandPredictor> aggregatePredictor_;
    ForecastTracker forecastTracker_;

    /** Aggregate tree driving hierarchical mode (configured in start()). */
    dc::FleetTree tree_;

    /** Persistent planning model; see buildModel(). */
    mutable PlacementModel model_;
    mutable std::uint64_t modelEpoch_ = 0;
    mutable bool modelValid_ = false;

    /** true iff the host can hold VMs and take new ones. */
    bool hostUsable(const dc::Host &host) const;

    std::set<dc::HostId> draining_;
    std::set<dc::HostId> maintenance_;
    std::set<dc::HostId> parked_;
    std::map<dc::HostId, sim::SimTime> parkedAt_; ///< for oldest-first escalation
    std::map<dc::HostId, sim::SimTime> sleepStartedAt_;
    sim::SimTime expectedIdle_;
    int surplusStreak_ = 0;
    bool started_ = false;
    std::uint64_t evaluationsSeen_ = 0;
    std::uint64_t evaluationsPerCycle_ = 1;

    ManagerStats stats_;
};

} // namespace vpm::mgmt

#endif // VPM_CORE_MANAGER_HPP
