#include "core/joint_policy.hpp"

#include <algorithm>
#include <cmath>

#include "power/breakeven.hpp"
#include "power/idle_hierarchy.hpp"
#include "simcore/logging.hpp"
#include "telemetry/trace_context.hpp"

namespace vpm::mgmt {

JointPolicyController::JointPolicyController(dc::Cluster &cluster,
                                             dc::DatacenterSim &dcsim,
                                             const JointPolicyConfig &config)
    : cluster_(cluster), dcsim_(dcsim), config_(config)
{
    if (config_.controlSpeed) {
        if (config_.speedLevels.empty())
            sim::fatal("JointPolicyController: no speed levels");
        for (std::size_t i = 0; i < config_.speedLevels.size(); ++i) {
            const double f = config_.speedLevels[i];
            if (f <= 0.0 || f > 1.0)
                sim::fatal("JointPolicyController: level %g outside (0, 1]",
                           f);
            if (i > 0 && f <= config_.speedLevels[i - 1])
                sim::fatal("JointPolicyController: levels must be "
                           "ascending");
        }
        if (config_.speedLevels.back() != 1.0)
            sim::fatal("JointPolicyController: highest level must be 1.0 "
                       "(nominal)");
    }
    if (config_.targetUtilization <= 0.0 ||
        config_.targetUtilization > 1.0) {
        sim::fatal("JointPolicyController: target utilization %g outside "
                   "(0, 1]", config_.targetUtilization);
    }
    if (config_.period <= sim::SimTime())
        sim::fatal("JointPolicyController: period must be positive");
    if (config_.period.micros() %
            dcsim_.config().evaluationInterval.micros() != 0) {
        sim::fatal("JointPolicyController: period must be a multiple of "
                   "the evaluation interval");
    }
    if (config_.latencyBound < sim::SimTime())
        sim::fatal("JointPolicyController: negative latency bound");
    if (config_.idleEwmaAlpha <= 0.0 || config_.idleEwmaAlpha > 1.0)
        sim::fatal("JointPolicyController: EWMA alpha %g outside (0, 1]",
                   config_.idleEwmaAlpha);
    if (config_.speedWindowCycles < 1)
        sim::fatal("JointPolicyController: speed window %d wants >= 1",
                   config_.speedWindowCycles);
    if (config_.speedSurgeGuard < 1.0)
        sim::fatal("JointPolicyController: surge guard %g wants >= 1",
                   config_.speedSurgeGuard);
    if (!config_.controlSpeed && !config_.controlIdle)
        sim::fatal("JointPolicyController: both knobs disabled");

    rhoEwma_.assign(cluster_.hosts().size(), -1.0);
    demandWindow_.assign(cluster_.hosts().size(), {});
}

void
JointPolicyController::start()
{
    if (started_)
        sim::panic("JointPolicyController::start called twice");
    started_ = true;
    evaluationsPerCycle_ = static_cast<std::uint64_t>(
        config_.period.micros() /
        dcsim_.config().evaluationInterval.micros());

    dcsim_.addEvaluationHook([this] {
        ++evaluationsSeen_;
        if ((evaluationsSeen_ - 1) % evaluationsPerCycle_ == 0)
            controlCycle();
    });
}

void
JointPolicyController::controlCycle()
{
    ++cycles_;
    if (!active_)
        return;
    if (rhoEwma_.size() < cluster_.hosts().size()) {
        rhoEwma_.resize(cluster_.hosts().size(), -1.0);
        demandWindow_.resize(cluster_.hosts().size());
    }

    const double period_s = config_.period.toSeconds();
    const double bound_s = config_.latencyBound.toSeconds();
    bool any_speed_change = false;

    for (const auto &host_ptr : cluster_.hosts()) {
        dc::Host &host = *host_ptr;
        if (!host.isOn()) {
            // Forget the pre-sleep demand history: the fleet the host
            // rejoins with after a wake has nothing to do with the one
            // it was drained of.
            demandWindow_[static_cast<std::size_t>(host.id())].clear();
            continue;
        }

        const double demand =
            host.vmDemandMhz() + host.migrationOverheadMhz();

        // Speed first: the idle prediction below is made at the chosen
        // operating point, because slowing down shrinks the idle share.
        if (config_.controlSpeed) {
            // Size the frequency for the window's peak, so a recurring
            // demand step lands on a level that can already serve it.
            std::vector<double> &window =
                demandWindow_[static_cast<std::size_t>(host.id())];
            if (demand <= 0.0) {
                // An empty (drained or parked) host holds nominal: slow
                // idle cores cost nothing extra — the hierarchy owns
                // idle power — and placement must be able to load the
                // host at full capacity the moment it is reclaimed.
                window.clear();
            } else {
                window.push_back(demand);
                if (static_cast<int>(window.size()) >
                    config_.speedWindowCycles) {
                    window.erase(window.begin());
                }
            }
            // Downshifting needs a full window of evidence — a host
            // fresh out of a wake or park (empty history) stays at
            // nominal until the window fills, because placement is
            // about to load it.
            double chosen = config_.speedLevels.back();
            if (static_cast<int>(window.size()) >=
                config_.speedWindowCycles) {
                const double peak =
                    *std::max_element(window.begin(), window.end());
                for (const double f : config_.speedLevels) {
                    if (peak <= config_.targetUtilization *
                                    host.cpuCapacityMhz() * f &&
                        config_.speedSurgeGuard * peak <=
                            host.cpuCapacityMhz() * f) {
                        chosen = f;
                        break;
                    }
                }
            }
            if (host.frequencyFraction() != chosen) {
                host.setFrequencyFraction(chosen);
                ++speedTransitions_;
                any_speed_change = true;
            }
        }

        power::IdleHierarchy *hier = host.idleHierarchy();
        if (hier == nullptr || !config_.controlIdle || !hier->active())
            continue;
        const power::IdleHierarchySpec &spec = hier->spec();

        // Predicted idle interval: EWMA the utilization at the chosen
        // frequency, then take the un-utilized share of the period as the
        // expected per-core idle interval (SleepScale's estimator reduced
        // to its first moment).
        const double capacity = host.effectiveCpuCapacityMhz();
        const double rho = std::clamp(
            capacity > 0.0 ? demand / capacity : 1.0, 0.0, 1.0);
        double &ewma = rhoEwma_[static_cast<std::size_t>(host.id())];
        ewma = ewma < 0.0
                   ? rho
                   : config_.idleEwmaAlpha * rho +
                         (1.0 - config_.idleEwmaAlpha) * ewma;
        const double expected_idle_s = period_s * (1.0 - ewma);

        // Provision busy cores from demand with the same headroom rule as
        // the speed choice; the remainder are sleepable.
        const double per_core_mhz =
            capacity / static_cast<double>(spec.coreCount);
        int busy = spec.coreCount;
        if (demand <= 0.0) {
            busy = 0;
        } else if (per_core_mhz > 0.0) {
            busy = static_cast<int>(std::ceil(
                demand / (config_.targetUtilization * per_core_mhz)));
        }
        busy = std::clamp(busy, 0, spec.coreCount);

        // Deepest state per level whose break-even fits the prediction
        // and whose exit respects the latency bound. Each level amortizes
        // against its own baseline draw.
        int core_depth = 0;
        for (std::size_t d = 1; d <= spec.coreStates.size(); ++d) {
            const power::IdleStateSpec &state = spec.coreStates[d - 1];
            if (state.exitLatency.toSeconds() > bound_s)
                break;
            const std::optional<double> be = power::breakEvenSecondsFor(
                spec.corePowerC0Watts, state.powerWatts,
                state.roundTripEnergyJoules(),
                state.roundTripLatency().toSeconds());
            if (!be || *be > expected_idle_s)
                break;
            core_depth = static_cast<int>(d);
        }
        int pkg_depth = 0;
        for (std::size_t d = 1; d <= spec.packageStates.size(); ++d) {
            const power::IdleStateSpec &state = spec.packageStates[d - 1];
            if (state.exitLatency.toSeconds() > bound_s)
                break;
            const std::optional<double> be = power::breakEvenSecondsFor(
                spec.uncorePowerC0Watts, state.powerWatts,
                state.roundTripEnergyJoules(),
                state.roundTripLatency().toSeconds());
            if (!be || *be > expected_idle_s)
                break;
            pkg_depth = static_cast<int>(d);
        }

        // Only cycles that move a level mint a decision id, so the trace
        // attributes exactly the idle_transition records this cycle
        // caused and quiet cycles stay free.
        if (hier->wouldChange(busy, core_depth, pkg_depth)) {
            const std::uint64_t before = hier->transitions();
            const std::uint64_t decision = telemetry::newDecisionId();
            telemetry::TraceScope scope(decision);
            hier->setBusyCores(busy);
            hier->requestDepth(core_depth, pkg_depth);
            idleTransitions_ += hier->transitions() - before;
        }
    }

    // Frequencies moved: grants and power draws must follow.
    if (any_speed_change)
        dcsim_.reallocate();
}

void
JointPolicyController::serializeState(std::vector<std::uint8_t> &out) const
{
    const auto append = [&out](const void *data, std::size_t n) {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        out.insert(out.end(), bytes, bytes + n);
    };
    const auto appendU64 = [&append](std::uint64_t v) {
        append(&v, sizeof(v));
    };
    appendU64(active_ ? 1 : 0);
    appendU64(config_.controlSpeed ? 1 : 0);
    appendU64(evaluationsSeen_);
    appendU64(speedTransitions_);
    appendU64(idleTransitions_);
    appendU64(cycles_);
    appendU64(rhoEwma_.size());
    append(rhoEwma_.data(), rhoEwma_.size() * sizeof(double));
    appendU64(demandWindow_.size());
    for (const std::vector<double> &window : demandWindow_) {
        appendU64(window.size());
        append(window.data(), window.size() * sizeof(double));
    }
}

} // namespace vpm::mgmt
