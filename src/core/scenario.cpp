#include "core/scenario.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <memory>
#include <vector>

#include "simcore/logging.hpp"
#include "stats/summary.hpp"

namespace vpm::mgmt {

void
staticInitialPlacement(
    dc::Cluster &cluster,
    const std::vector<std::vector<dc::VmId>> &anti_affinity_groups)
{
    std::unordered_map<dc::VmId, int> group_of;
    for (std::size_t g = 0; g < anti_affinity_groups.size(); ++g) {
        for (const dc::VmId id : anti_affinity_groups[g])
            group_of.emplace(id, static_cast<int>(g));
    }

    // First-fit decreasing by full VM CPU size: the static placement an
    // administrator would configure once, with no knowledge of demand.
    std::vector<dc::VmId> order;
    for (const auto &vm_ptr : cluster.vms()) {
        if (!vm_ptr->placed())
            order.push_back(vm_ptr->id());
    }
    std::sort(order.begin(), order.end(), [&](dc::VmId a, dc::VmId b) {
        const double ca = cluster.vm(a).cpuMhz();
        const double cb = cluster.vm(b).cpuMhz();
        if (ca != cb)
            return ca > cb;
        return a < b;
    });

    std::vector<double> cpu_used(cluster.hostCount(), 0.0);
    std::vector<std::set<int>> groups_on(cluster.hostCount());
    for (dc::VmId vm_id : order) {
        const dc::Vm &vm = cluster.vm(vm_id);
        const auto group_it = group_of.find(vm_id);
        bool placed = false;
        for (std::size_t h = 0; h < cluster.hostCount(); ++h) {
            const dc::Host &host = cluster.host(static_cast<dc::HostId>(h));
            if (cpu_used[h] + vm.cpuMhz() > host.cpuCapacityMhz())
                continue;
            if (!cluster.memoryFits(vm, host))
                continue;
            if (group_it != group_of.end() &&
                groups_on[h].contains(group_it->second)) {
                continue; // an anti-affinity sibling already lives here
            }
            cluster.placeVm(vm_id, static_cast<dc::HostId>(h));
            cpu_used[h] += vm.cpuMhz();
            if (group_it != group_of.end())
                groups_on[h].insert(group_it->second);
            placed = true;
            break;
        }
        if (!placed)
            sim::fatal("staticInitialPlacement: VM '%s' (%g MHz, %g MB) "
                       "does not fit anywhere; shrink the fleet or grow "
                       "the cluster", vm.name().c_str(), vm.cpuMhz(),
                       vm.memoryMb());
    }
}

ScenarioResult
runScenario(const ScenarioConfig &config)
{
    if (config.hostCount < 1)
        sim::fatal("runScenario: need at least one host");
    if (config.duration <= sim::SimTime())
        sim::fatal("runScenario: duration must be positive");

    sim::Simulator simulator;
    dc::Cluster cluster(simulator);
    for (int h = 0; h < config.hostCount; ++h) {
        const power::HostPowerSpec &spec =
            config.heterogeneousSpecs.empty()
                ? config.powerSpec
                : config.heterogeneousSpecs[static_cast<std::size_t>(h) %
                                            config.heterogeneousSpecs
                                                .size()];
        cluster.addHost(config.hostConfig, spec);
    }

    sim::Rng rng(config.seed);
    std::vector<workload::VmWorkloadSpec> fleet =
        workload::makeEnterpriseMix(rng, config.vmCount, config.mix);
    if (config.transformFleet)
        config.transformFleet(fleet);
    for (workload::VmWorkloadSpec &spec : fleet)
        cluster.addVm(std::move(spec));

    if (config.idleHierarchy) {
        for (const auto &host_ptr : cluster.hosts())
            host_ptr->attachIdleHierarchy(
                std::make_unique<power::IdleHierarchy>(
                    simulator, *config.idleHierarchy));
    }

    staticInitialPlacement(cluster, config.manager.antiAffinityGroups);

    dc::MigrationEngine migration(simulator, cluster, config.migration);
    dc::DatacenterSim dcsim(simulator, cluster, migration,
                            config.datacenter);
    VpmManager manager(simulator, cluster, migration, dcsim,
                       config.manager);

    std::unique_ptr<dc::Topology> topology;
    if (config.topology) {
        topology = std::make_unique<dc::Topology>(config.hostCount,
                                                  *config.topology);
        migration.setTopology(topology.get());
        manager.attachTopology(*topology);
    }

    std::unique_ptr<dc::ProvisioningEngine> provisioning;
    if (config.provisioning) {
        provisioning = std::make_unique<dc::ProvisioningEngine>(
            simulator, cluster, *config.provisioning);
        manager.attachProvisioning(*provisioning);
        provisioning->start();
    }
    manager.start();

    std::unique_ptr<DvfsController> dvfs;
    if (config.dvfs) {
        if (config.jointPolicy)
            sim::fatal("runScenario: dvfs and jointPolicy both set — the "
                       "joint policy owns the speed knob");
        dvfs = std::make_unique<DvfsController>(cluster, dcsim,
                                                *config.dvfs);
        dvfs->start();
    }

    std::unique_ptr<JointPolicyController> joint;
    if (config.jointPolicy) {
        joint = std::make_unique<JointPolicyController>(cluster, dcsim,
                                                        *config.jointPolicy);
        joint->start();
    }

    std::unique_ptr<dc::FailureInjector> failures;
    if (config.failures) {
        failures = std::make_unique<dc::FailureInjector>(
            simulator, cluster, *config.failures);
        failures->start();
    }

    // Reference trackers, sampled on the evaluation cadence.
    const double total_capacity = cluster.totalCpuCapacityMhz();
    const double per_host_capacity =
        cluster.host(0).cpuCapacityMhz();
    double per_host_peak = config.powerSpec.peakPowerWatts();
    if (!config.heterogeneousSpecs.empty()) {
        per_host_peak = 0.0;
        for (const power::HostPowerSpec &spec : config.heterogeneousSpecs)
            per_host_peak += spec.peakPowerWatts();
        per_host_peak /= static_cast<double>(
            config.heterogeneousSpecs.size());
    }
    stats::TimeWeighted offered_load(simulator.now(), 0.0);
    stats::TimeWeighted ideal_power(simulator.now(), 0.0);
    dcsim.addEvaluationHook([&] {
        const double demand = cluster.totalVmDemandMhz();
        offered_load.update(simulator.now(), demand / total_capacity);
        ideal_power.update(simulator.now(),
                           demand / per_host_capacity * per_host_peak);
        if (config.evaluationProbe)
            config.evaluationProbe(cluster, simulator.now());
    });

    ScenarioResult result;
    result.metrics = dcsim.runFor(config.duration);
    offered_load.finish(simulator.now());
    ideal_power.finish(simulator.now());

    result.manager = manager.stats();
    result.offeredLoadFraction = offered_load.average();
    result.idealProportionalKwh =
        ideal_power.integralSeconds() / 3.6e6;
    result.meanMigrationSeconds =
        migration.completedCount() > 0 ? migration.durations().mean() : 0.0;
    result.crossRackMigrations = migration.crossRackCount();
    if (dvfs)
        result.dvfsTransitions = dvfs->transitions();
    if (joint) {
        result.jointSpeedTransitions = joint->speedTransitions();
        result.jointIdleTransitions = joint->idleTransitions();
    }
    if (config.idleHierarchy) {
        for (const auto &host_ptr : cluster.hosts()) {
            power::IdleHierarchy *hier = host_ptr->idleHierarchy();
            hier->finish(simulator.now());
            result.idleTransitions += hier->transitions();
            result.idleTransitionJoules += hier->transitionEnergyJoules();
        }
    }
    if (failures) {
        result.hostCrashes = failures->crashes();
        result.hostRepairs = failures->repairs();
    }
    if (provisioning) {
        result.vmArrivals = provisioning->arrivals();
        result.vmDepartures = provisioning->departures();
        result.meanPlacementDelaySeconds =
            provisioning->placementDelays().mean();
        result.maxPlacementDelaySeconds =
            provisioning->placementDelays().max();
    }

    // Fleet-wide wake agility: every completed wake's end-to-end latency,
    // pooled across hosts. The p99 is exact (per-wake samples, not
    // buckets) — it is the sweep orchestrator's agility objective.
    std::vector<double> wake_latencies;
    for (const auto &host_ptr : cluster.hosts()) {
        const std::vector<double> &samples =
            host_ptr->powerFsm().wakeLatenciesSeconds();
        wake_latencies.insert(wake_latencies.end(), samples.begin(),
                              samples.end());
    }
    result.wakes = wake_latencies.size();
    if (!wake_latencies.empty()) {
        stats::Summary wake_summary;
        for (const double s : wake_latencies)
            wake_summary.add(s);
        result.meanWakeSeconds = wake_summary.mean();
        result.wakeP99Seconds =
            stats::percentileExact(std::move(wake_latencies), 0.99);
    }
    result.eventsProcessed = simulator.eventsProcessed();
    return result;
}

} // namespace vpm::mgmt
