/**
 * @file
 * Joint speed/sleep policy: the SleepScale control law on top of the idle
 * hierarchy.
 *
 * SleepScale's observation (PAPERS.md) is that frequency scaling and sleep
 * states are one decision, not two: the DVFS operating point changes how
 * long the idle intervals are (slower cores idle less), and the chosen
 * idle state changes what an idle interval is worth. This controller
 * therefore picks, per host per control period, the pair
 *
 *     (DVFS level  x  deepest-allowed idle state per hierarchy level)
 *
 * from a predicted idle-interval length: it EWMA-smooths the host's demand
 * utilization, predicts the expected idle interval as the un-utilized
 * share of the control period, and descends each hierarchy level to the
 * deepest state whose break-even interval (power/breakeven.hpp math, on
 * the level's own baseline watts) fits inside the prediction — subject to
 * a wake-latency bound, the agility knob the source paper sweeps.
 *
 * Busy-core count is provisioned from demand at the chosen frequency, so
 * slowing down concentrates work onto more-busy cores while the remainder
 * sleep — exactly the coupling that makes the joint choice beat either
 * knob alone.
 *
 * Threading: control cycles run from the evaluation hook on the main
 * thread, mutating hierarchies and frequencies there only (PR 5 contract).
 */

#ifndef VPM_CORE_JOINT_POLICY_HPP
#define VPM_CORE_JOINT_POLICY_HPP

#include <cstdint>
#include <vector>

#include "datacenter/datacenter_sim.hpp"

namespace vpm::mgmt {

/** Joint policy knobs. */
struct JointPolicyConfig
{
    /** Selectable frequency fractions, ascending, each in (0, 1], last
     *  must be 1.0 (nominal). Ignored when controlSpeed is false. */
    std::vector<double> speedLevels{0.6, 0.7, 0.8, 0.9, 1.0};

    /** Demand headroom at the chosen level: pick the lowest f with
     *  demand <= target * capacity * f. */
    double targetUtilization = 0.85;

    /** Control period; must be a multiple of the evaluation interval. */
    sim::SimTime period = sim::SimTime::minutes(1.0);

    /** Wake-latency bound: never pick an idle state whose exit latency
     *  exceeds this (the agility constraint). */
    sim::SimTime latencyBound = sim::SimTime::millis(1);

    /** Drive the DVFS knob (false = C-states-only ablation). */
    bool controlSpeed = true;

    /** Drive the idle-state knob (false = speed-only ablation). */
    bool controlIdle = true;

    /** EWMA smoothing of per-host utilization, in (0, 1]. */
    double idleEwmaAlpha = 0.3;

    /**
     * The speed choice covers the PEAK demand of the last this-many
     * control cycles, not just the current sample. 1 is purely reactive
     * (cheapest, but a demand step lands on a stale low frequency and is
     * served degraded for one period); larger windows trade a little
     * dynamic energy for surge robustness. Ignored when controlSpeed is
     * false.
     */
    int speedWindowCycles = 1;

    /**
     * Downshift insurance: the chosen level must also fit this multiple
     * of the window's peak inside FULL capacity, so a demand step up to
     * the guard factor lands without saturating even before the next
     * upshift. 1.0 disables the guard (the targetUtilization headroom is
     * then the only margin). Ignored when controlSpeed is false.
     */
    double speedSurgeGuard = 1.0;
};

/**
 * Per-host joint (frequency x idle-state) governor driven off the
 * evaluation cadence. Hosts without an attached IdleHierarchy get the
 * speed knob only.
 */
class JointPolicyController
{
  public:
    JointPolicyController(dc::Cluster &cluster, dc::DatacenterSim &dcsim,
                          const JointPolicyConfig &config = {});

    JointPolicyController(const JointPolicyController &) = delete;
    JointPolicyController &operator=(const JointPolicyController &) = delete;

    /** Hook onto the evaluation cadence. Call exactly once. */
    void start();

    /** Run one control step immediately (tests drive this directly). */
    void controlCycle();

    /** Frequency-change commands issued so far. */
    std::uint64_t speedTransitions() const { return speedTransitions_; }

    /** Idle-hierarchy group transitions caused by this policy. */
    std::uint64_t idleTransitions() const { return idleTransitions_; }

    /** Control cycles executed. */
    std::uint64_t cycles() const { return cycles_; }

    const JointPolicyConfig &config() const { return config_; }

    /** @name Replay / what-if branching
     *
     * Branch variants reuse one fully-built session (manager + joint
     * controller + hierarchies) and switch knobs at the fork point
     * instead of rebuilding, so the pre-fork history is shared by
     * construction. An inactive controller still counts cycles — the
     * evaluation cadence must stay identical across variants — but
     * touches neither knob.
     */
    ///@{
    /** Enable/disable the whole controller at a branch point. */
    void setActive(bool active) { active_ = active; }
    bool active() const { return active_; }

    /** Toggle just the DVFS knob (C-states-only variants). The caller
     *  owns resetting frequencies already lowered before the switch. */
    void setControlSpeed(bool on) { config_.controlSpeed = on; }

    /**
     * Append the controller's mutable state to @p out, byte-stable.
     * Captured by replay checkpoints for equality proofs; never loaded
     * back (restore re-executes the prefix).
     */
    void serializeState(std::vector<std::uint8_t> &out) const;
    ///@}

  private:
    dc::Cluster &cluster_;
    dc::DatacenterSim &dcsim_;
    JointPolicyConfig config_;
    bool started_ = false;
    bool active_ = true;
    std::uint64_t evaluationsSeen_ = 0;
    std::uint64_t evaluationsPerCycle_ = 1;
    std::uint64_t speedTransitions_ = 0;
    std::uint64_t idleTransitions_ = 0;
    std::uint64_t cycles_ = 0;

    /** Per-host EWMA of demand utilization (index = HostId); negative
     *  means "not yet seeded" (first sample seeds it directly). */
    std::vector<double> rhoEwma_;

    /** Per-host ring of recent demand samples (speedWindowCycles wide),
     *  backing the windowed-peak speed choice. */
    std::vector<std::vector<double>> demandWindow_;
};

} // namespace vpm::mgmt

#endif // VPM_CORE_JOINT_POLICY_HPP
