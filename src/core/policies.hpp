/**
 * @file
 * Named management policies — the four columns of the paper's comparison.
 *
 *  - NoPM:       static placement, no management at all.
 *  - DrmOnly:    distributed resource (load) management, no power actions —
 *                the widely-adopted baseline whose overhead the paper
 *                benchmarks against.
 *  - PmS5:       power management restricted to the traditional soft-off
 *                state (minutes-scale reboot) — the pre-paper status quo.
 *  - PmS3:       power management with the paper's low-latency
 *                suspend-to-RAM state.
 *  - PmAdaptive: power management with break-even-based state selection
 *                (the A3 ablation's third arm).
 */

#ifndef VPM_CORE_POLICIES_HPP
#define VPM_CORE_POLICIES_HPP

#include "core/manager.hpp"

namespace vpm::mgmt {

/** The policy space compared throughout the evaluation. */
enum class PolicyKind
{
    NoPM,
    DrmOnly,
    PmS5,
    PmS3,
    PmAdaptive,
};

/** Human-readable policy name for tables. */
const char *toString(PolicyKind kind);

/** All policies, in presentation order. */
inline constexpr PolicyKind allPolicies[] = {
    PolicyKind::NoPM, PolicyKind::DrmOnly, PolicyKind::PmS5,
    PolicyKind::PmS3, PolicyKind::PmAdaptive};

/**
 * Manager configuration for a named policy. For NoPM both management
 * functions are disabled; the manager still runs (so cycle counting stays
 * comparable) but issues no actions.
 */
VpmConfig makePolicy(PolicyKind kind);

} // namespace vpm::mgmt

#endif // VPM_CORE_POLICIES_HPP
