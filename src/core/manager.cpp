#include "core/manager.hpp"

#include <algorithm>
#include <vector>

#include "power/idle_hierarchy.hpp"
#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace vpm::mgmt {

VpmManager::VpmManager(sim::Simulator &simulator, dc::Cluster &cluster,
                       dc::MigrationEngine &migration,
                       dc::DatacenterSim &dcsim, const VpmConfig &config)
    : simulator_(simulator), cluster_(cluster), migration_(migration),
      dcsim_(dcsim), config_(config),
      forecastTracker_(toString(config.predictor)),
      expectedIdle_(config.expectedIdleSeed)
{
    if (config_.period <= sim::SimTime())
        sim::fatal("VpmManager: period must be positive");
    const std::int64_t period_us = config_.period.micros();
    const std::int64_t eval_us =
        dcsim_.config().evaluationInterval.micros();
    if (period_us % eval_us != 0)
        sim::fatal("VpmManager: period (%lld us) must be a multiple of the "
                   "evaluation interval (%lld us)",
                   static_cast<long long>(period_us),
                   static_cast<long long>(eval_us));
    if (config_.targetUtilization <= 0.0 || config_.targetUtilization > 1.0)
        sim::fatal("VpmManager: target utilization %g outside (0, 1]",
                   config_.targetUtilization);
    if (config_.capacityBuffer < 0.0)
        sim::fatal("VpmManager: negative capacity buffer %g",
                   config_.capacityBuffer);
    if (config_.hysteresisCycles < 1)
        sim::fatal("VpmManager: hysteresis must be >= 1 cycle");
    if (config_.maxMigrationsPerCycle < 1)
        sim::fatal("VpmManager: need at least one migration per cycle");
    if (config_.maxEvacuationsPerCycle < 0)
        sim::fatal("VpmManager: negative evacuation budget");
    if (config_.spareHostsFloor < 0)
        sim::fatal("VpmManager: negative spare-hosts floor");
    if (config_.hierarchical &&
        (config_.hostsPerRack == 0 || config_.racksPerPod == 0))
        sim::fatal("VpmManager: hierarchical mode needs positive rack and "
                   "pod widths");

    aggregatePredictor_ = makeConfiguredPredictor();
}

std::unique_ptr<DemandPredictor>
VpmManager::makeConfiguredPredictor() const
{
    if (config_.predictor == PredictorKind::PeriodicProfile) {
        const auto slots = static_cast<std::size_t>(
            sim::SimTime::hours(24.0).micros() / config_.period.micros());
        return std::make_unique<PeriodicProfilePredictor>(
            std::max<std::size_t>(slots, 2));
    }
    return makePredictor(config_.predictor);
}

void
VpmManager::start()
{
    if (started_)
        sim::panic("VpmManager::start called twice");
    started_ = true;

    evaluationsPerCycle_ = static_cast<std::uint64_t>(
        config_.period.micros() /
        dcsim_.config().evaluationInterval.micros());

    if (config_.hierarchical)
        tree_.configure(cluster_, config_.hostsPerRack,
                        config_.racksPerPod);

    dcsim_.addEvaluationHook([this] {
        ++evaluationsSeen_;
        if ((evaluationsSeen_ - 1) % evaluationsPerCycle_ == 0)
            managementCycle();
    });
}

void
VpmManager::attachProvisioning(dc::ProvisioningEngine &provisioning)
{
    provisioning_ = &provisioning;
}

void
VpmManager::attachTopology(const dc::Topology &topology)
{
    topology_ = &topology;
}

void
VpmManager::managementCycle()
{
    if (config_.hierarchical) {
        hierarchicalCycle();
        return;
    }
    PROF_ZONE("mgmt.cycle");
    ++stats_.cycles;
    observeDemand();
    if (config_.haRestart)
        restartStrandedVms();
    if (config_.powerManage) {
        ensureCapacity();
        ensurePlacementHeadroom();
    }
    rebalanceAndConsolidate();
    if (config_.powerManage)
        completeDrains();
}

void
VpmManager::hierarchicalCycle()
{
    PROF_ZONE("mgmt.hier_cycle");
    ++stats_.cycles;
    // Tests drive managementCycle() directly without start(); lazily
    // configure the tree so they get the same path.
    if (!tree_.configured())
        tree_.configure(cluster_, config_.hostsPerRack,
                        config_.racksPerPod);
    tree_.refresh();
    const dc::FleetAggregate &root = tree_.root();

    // Aggregate-only prediction: the root row replaces the per-VM scan
    // and the per-VM predictor slots entirely.
    aggregatePredictor_->observe(root.demandMhz);
    forecastTracker_.observe(simulator_.now().micros(), root.demandMhz,
                             aggregatePredictor_->predict());
    if (!config_.powerManage)
        return;

    double required =
        aggregatePredictor_->predict() * (1.0 + config_.capacityBuffer);
    if (provisioning_)
        required += provisioning_->pendingDemandMhz();
    required += spareFloorMhz();
    const double limit = config_.targetUtilization;

    // Committed = On capacity straight off the root row, plus arriving
    // hosts found by descending only into racks reporting transitioning
    // members.
    double committed = root.onEffectiveCapMhz;
    for (const dc::FleetAggregate &rack : tree_.racks()) {
        if (rack.hostsTransitioning == 0)
            continue;
        for (std::size_t i = rack.begin; i < rack.end; ++i) {
            const dc::Host &host =
                cluster_.host(static_cast<dc::HostId>(i));
            const auto &fsm = host.powerFsm();
            const power::PowerPhase phase = fsm.phase();
            if (phase == power::PowerPhase::Exiting ||
                (phase == power::PowerPhase::Entering &&
                 fsm.wakePending()))
                committed += host.cpuCapacityMhz();
        }
    }

    if (required > limit * committed) {
        ++stats_.shortfallCycles;
        surplusStreak_ = 0;
        wakeHierarchical(required, limit, committed);
        return;
    }

    // Sustained surplus: sleep naturally empty hosts. The same
    // hysteresis knob as flat mode gates the first sleep of a streak.
    ++surplusStreak_;
    if (surplusStreak_ >= config_.hysteresisCycles && config_.hostSleep)
        sleepHierarchical(required, limit, committed);
}

void
VpmManager::wakeHierarchical(double required, double limit,
                             double committed)
{
    // Racks with the most sleeping hosts first: reclaimed capacity
    // concentrates, so later cycles touch fewer racks. Ties resolve to
    // the lower rack index, keeping the order deterministic.
    std::vector<std::size_t> candidates;
    const std::vector<dc::FleetAggregate> &racks = tree_.racks();
    for (std::size_t r = 0; r < racks.size(); ++r)
        if (racks[r].hostsAsleep > 0)
            candidates.push_back(r);
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&racks](std::size_t a, std::size_t b) {
                         return racks[a].hostsAsleep > racks[b].hostsAsleep;
                     });

    for (const std::size_t r : candidates) {
        for (std::size_t i = racks[r].begin; i < racks[r].end; ++i) {
            if (required <= limit * committed)
                return;
            const auto host_id = static_cast<dc::HostId>(i);
            if (maintenance_.contains(host_id))
                continue;
            dc::Host &host = cluster_.host(host_id);
            const auto &fsm = host.powerFsm();
            if (fsm.wakeInhibited())
                continue;
            const power::PowerPhase phase = fsm.phase();
            const bool wakeable =
                phase == power::PowerPhase::Asleep ||
                (phase == power::PowerPhase::Entering &&
                 !fsm.wakePending());
            if (!wakeable)
                continue;
            if (config_.clusterPowerCapWatts > 0.0 &&
                projectedPeakWatts(&host) > config_.clusterPowerCapWatts) {
                ++stats_.wakesDeniedByCap;
                return; // the cap binds; more wakes only project higher
            }
            const std::uint64_t decision = telemetry::newDecisionId();
            telemetry::TraceScope scope(decision);
            if (!cluster_.requestHostWake(host_id))
                continue;
            ++stats_.wakesIssued;
            telemetry::global().journal().wakeDecision(
                simulator_.now().micros(), host_id, "capacity-shortfall");
            if (const auto it = sleepStartedAt_.find(host_id);
                it != sleepStartedAt_.end()) {
                const sim::SimTime observed = simulator_.now() - it->second;
                expectedIdle_ = expectedIdle_ * 0.7 + observed * 0.3;
                sleepStartedAt_.erase(it);
            }
            committed += host.cpuCapacityMhz();
        }
    }
}

void
VpmManager::sleepHierarchical(double required, double limit,
                              double committed)
{
    // Only racks advertising empty On hosts are walked; each sleep must
    // leave the committed margin intact, so the loop self-limits.
    const std::vector<dc::FleetAggregate> &racks = tree_.racks();
    for (const dc::FleetAggregate &rack : racks) {
        if (rack.emptyOn == 0)
            continue;
        for (std::size_t i = rack.begin; i < rack.end; ++i) {
            const auto host_id = static_cast<dc::HostId>(i);
            if (maintenance_.contains(host_id))
                continue;
            dc::Host &host = cluster_.host(host_id);
            if (!host.isOn() || !host.empty() ||
                host.activeMigrations() > 0)
                continue;
            if (required >
                limit * (committed - host.effectiveCpuCapacityMhz()))
                return; // sleeping this host would dip below the margin
            const power::SleepStateSpec *state = chooseSleepState(host);
            if (!state)
                continue;
            const std::uint64_t decision = telemetry::newDecisionId();
            telemetry::TraceScope scope(decision);
            if (power::IdleHierarchy *hier = host.idleHierarchy())
                hier->descendFully();
            if (!cluster_.requestHostSleep(host_id, state->name))
                continue;
            ++stats_.sleepsIssued;
            telemetry::global().journal().sleepDecision(
                simulator_.now().micros(), host_id, state->name,
                expectedIdle_.toSeconds(),
                host.powerFsm().spec().idlePowerWatts(),
                state->sleepPowerWatts);
            sleepStartedAt_[host_id] = simulator_.now();
            committed -= host.effectiveCpuCapacityMhz();
        }
    }
}

void
VpmManager::observeDemand()
{
    PROF_ZONE("mgmt.observe");
    double total = 0.0;
    if (vmPredictors_.size() < cluster_.vmCount())
        vmPredictors_.resize(cluster_.vmCount());
    for (const auto &vm_ptr : cluster_.vms()) {
        auto &slot = vmPredictors_[static_cast<std::size_t>(vm_ptr->id())];
        if (vm_ptr->retired()) {
            slot.reset();
            continue;
        }
        if (!vm_ptr->placed())
            continue; // pending arrivals count via the provisioning hook
        if (!slot)
            slot = makeConfiguredPredictor();
        slot->observe(vm_ptr->currentDemandMhz());
        total += vm_ptr->currentDemandMhz();
    }
    aggregatePredictor_->observe(total);
    // Score last cycle's aggregate forecast against what actually arrived
    // and stage the fresh forecast for next cycle's scoring.
    forecastTracker_.observe(simulator_.now().micros(), total,
                             aggregatePredictor_->predict());
}

double
VpmManager::predictedVmMhz(const dc::Vm &vm) const
{
    const auto id = static_cast<std::size_t>(vm.id());
    if (id >= vmPredictors_.size() || !vmPredictors_[id])
        return vm.currentDemandMhz();
    return std::clamp(vmPredictors_[id]->predict(), 0.0, vm.cpuMhz());
}

double
VpmManager::requiredCapacityMhz() const
{
    double required =
        aggregatePredictor_->predict() * (1.0 + config_.capacityBuffer);
    // Arrivals waiting for a host need full-size room right now.
    if (provisioning_)
        required += provisioning_->pendingDemandMhz();
    return required;
}

double
VpmManager::committedCapacityMhz() const
{
    double total = 0.0;
    for (const auto &host_ptr : cluster_.hosts()) {
        const power::PowerPhase phase = host_ptr->powerFsm().phase();
        const bool arriving =
            phase == power::PowerPhase::Exiting ||
            (phase == power::PowerPhase::Entering &&
             host_ptr->powerFsm().wakePending());
        const bool on_and_staying =
            phase == power::PowerPhase::On && hostUsable(*host_ptr);
        if (on_and_staying || arriving)
            total += host_ptr->cpuCapacityMhz();
    }
    return total;
}

void
VpmManager::restartStrandedVms()
{
    // VMs on a host that is Asleep or Entering are dead in the water
    // (crash, or a scripted fault); VMs on an Exiting host will be served
    // again within one boot, so leave them be.
    std::vector<dc::VmId> stranded;
    for (const auto &vm_ptr : cluster_.vms()) {
        if (!vm_ptr->placed() || vm_ptr->retired())
            continue;
        if (migration_.involved(vm_ptr->id()))
            continue; // the engine aborts and we catch it next cycle
        const power::PowerPhase phase =
            cluster_.host(vm_ptr->host()).powerFsm().phase();
        if (phase == power::PowerPhase::Asleep ||
            phase == power::PowerPhase::Entering) {
            stranded.push_back(vm_ptr->id());
        }
    }
    if (stranded.empty())
        return;

    PlacementModel &model = buildModel();
    for (const dc::VmId vm_id : stranded) {
        const PlannedVm &planned = model.vm(vm_id);
        dc::HostId dest = dc::invalidHostId;
        for (const auto &host_ptr : cluster_.hosts()) {
            if (!host_ptr->isOn() || !hostUsable(*host_ptr))
                continue;
            if (model.fits(planned, host_ptr->id(),
                           config_.targetUtilization)) {
                dest = host_ptr->id();
                break;
            }
        }
        if (dest == dc::invalidHostId) {
            // No live home yet; ensureCapacity below will wake hosts
            // (the floor erosion shows up as a shortfall) — retry next
            // cycle.
            surplusStreak_ = 0;
            wakeOneHost("ha-restart");
            continue;
        }
        model.apply({vm_id, planned.host, dest});
        model.pin(vm_id);
        cluster_.moveVm(vm_id, dest); // HA restart: instant re-place
        ++stats_.haRestarts;
        sim::inform("HA restarted VM '%s' onto '%s'",
                    cluster_.vm(vm_id).name().c_str(),
                    cluster_.host(dest).name().c_str());
    }
    dcsim_.reallocate();
}

double
VpmManager::spareFloorMhz() const
{
    if (config_.spareHostsFloor == 0 || cluster_.hostCount() == 0)
        return 0.0;
    // Homogeneous-size assumption, documented on the knob.
    return config_.spareHostsFloor * cluster_.host(0).cpuCapacityMhz() *
           config_.targetUtilization;
}

void
VpmManager::ensureCapacity()
{
    PROF_ZONE("mgmt.capacity");
    const double required = requiredCapacityMhz() + spareFloorMhz();
    const double limit = config_.targetUtilization;
    double committed = committedCapacityMhz();

    if (required <= limit * committed)
        return;

    ++stats_.shortfallCycles;
    surplusStreak_ = 0;

    // Cheapest capacity first: draining hosts are still on — keep them.
    const std::vector<dc::HostId> draining_now(draining_.begin(),
                                               draining_.end());
    for (dc::HostId host_id : draining_now) {
        if (required <= limit * committed)
            return;
        cancelDrain(host_id);
        committed += cluster_.host(host_id).cpuCapacityMhz();
    }

    // Then wake sleeping hosts, fastest exit first.
    while (required > limit * committed) {
        if (!wakeOneHost("capacity-shortfall"))
            break; // nothing left to wake; DRM absorbs the overload
        committed = committedCapacityMhz();
    }
}

void
VpmManager::ensurePlacementHeadroom()
{
    // CPU arithmetic alone can miss a memory-bound placement stall: an
    // arrival can find no host with memory headroom even though the
    // cluster has plenty of spare cycles. If any pending VM fits nowhere,
    // wake a host (which arrives with zero committed memory).
    if (!provisioning_ || provisioning_->pendingCount() == 0)
        return;

    for (dc::VmId vm_id : provisioning_->pendingVms()) {
        const dc::Vm &vm = cluster_.vm(vm_id);
        bool fits_somewhere = false;
        for (const auto &host_ptr : cluster_.hosts()) {
            if (!host_ptr->isOn() || !hostUsable(*host_ptr))
                continue;
            if (cluster_.memoryFits(vm, *host_ptr)) {
                fits_somewhere = true;
                break;
            }
        }
        if (!fits_somewhere) {
            surplusStreak_ = 0; // capacity is tight; hold consolidation
            wakeOneHost("placement-headroom");
            return; // one per cycle; re-check next cycle
        }
    }
}

dc::Host *
VpmManager::findWakeCandidate() const
{
    // Candidates: asleep, or still entering without a latched wake.
    // Maintenance hosts are never woken on the manager's initiative.
    dc::Host *best = nullptr;
    for (const auto &host_ptr : cluster_.hosts()) {
        if (maintenance_.contains(host_ptr->id()))
            continue;
        const auto &fsm = host_ptr->powerFsm();
        if (fsm.wakeInhibited())
            continue; // crashed hardware under repair
        const power::PowerPhase phase = fsm.phase();
        const bool wakeable =
            phase == power::PowerPhase::Asleep ||
            (phase == power::PowerPhase::Entering && !fsm.wakePending());
        if (!wakeable)
            continue;
        if (!best ||
            fsm.timeToAvailable() < best->powerFsm().timeToAvailable()) {
            best = host_ptr.get();
        }
    }
    return best;
}

double
VpmManager::projectedPeakWatts(const dc::Host *extra) const
{
    double total = 0.0;
    for (const auto &host_ptr : cluster_.hosts()) {
        const auto &fsm = host_ptr->powerFsm();
        const power::PowerPhase phase = fsm.phase();
        const bool committed =
            host_ptr.get() == extra || phase == power::PowerPhase::On ||
            phase == power::PowerPhase::Exiting ||
            (phase == power::PowerPhase::Entering && fsm.wakePending());
        if (committed) {
            total += fsm.spec().peakPowerWatts();
        } else if (fsm.sleepState()) {
            total += fsm.sleepState()->sleepPowerWatts;
        } else {
            total += fsm.spec().idlePowerWatts();
        }
    }
    return total;
}

bool
VpmManager::wakeOneHost(const char *reason)
{
    // Parked capacity is free and instant — always reclaim it before
    // paying for a power-state exit. (A parked host that crashed is no
    // longer On; drop it and let the repair path handle it.)
    while (!parked_.empty()) {
        const dc::HostId host_id = *parked_.begin();
        parked_.erase(parked_.begin());
        parkedAt_.erase(host_id);
        dc::Host &host = cluster_.host(host_id);
        if (!host.isOn())
            continue;
        const std::uint64_t decision = telemetry::newDecisionId();
        telemetry::TraceScope scope(decision);
        if (power::IdleHierarchy *hier = host.idleHierarchy())
            hier->wakeAll();
        ++stats_.hostsUnparked;
        sim::inform("host '%s' unparked (%s)", host.name().c_str(),
                    reason);
        return true;
    }

    dc::Host *best = findWakeCandidate();
    if (!best)
        return false;

    if (config_.clusterPowerCapWatts > 0.0 &&
        projectedPeakWatts(best) > config_.clusterPowerCapWatts) {
        ++stats_.wakesDeniedByCap;
        return false;
    }

    // Every FSM transition and event this wake triggers — including a
    // latched exit fired from the entry-completion event — is attributed
    // to this decision id.
    const std::uint64_t decision = telemetry::newDecisionId();
    telemetry::TraceScope scope(decision);

    if (!cluster_.requestHostWake(best->id())) {
        // The hardware died between selection and command (or a similar
        // race); skip this cycle rather than crash.
        sim::warn("VpmManager: wake of '%s' refused", best->name().c_str());
        return false;
    }
    ++stats_.wakesIssued;
    telemetry::global().journal().wakeDecision(simulator_.now().micros(),
                                               best->id(), reason);

    // Update the idle-interval estimate from the completed sleep episode.
    if (const auto it = sleepStartedAt_.find(best->id());
        it != sleepStartedAt_.end()) {
        const sim::SimTime observed = simulator_.now() - it->second;
        expectedIdle_ = expectedIdle_ * 0.7 + observed * 0.3;
        sleepStartedAt_.erase(it);
    }
    return true;
}

PlacementModel &
VpmManager::buildModel() const
{
    PROF_ZONE("mgmt.build_model");
    const std::uint64_t epoch = cluster_.placementEpoch();
    if (!modelValid_ || epoch != modelEpoch_) {
        // Membership changed (or first use): rebuild from scratch. The
        // child zone counts how often this actually happens.
        PROF_ZONE("mgmt.model_rebuild");
        std::vector<PlannedHost> hosts;
        hosts.reserve(cluster_.hostCount());
        for (const auto &host_ptr : cluster_.hosts()) {
            PlannedHost planned;
            planned.id = host_ptr->id();
            planned.cpuCapacityMhz = host_ptr->cpuCapacityMhz();
            planned.memoryCapacityMb = host_ptr->memoryCapacityMb();
            planned.usable = host_ptr->isOn() && hostUsable(*host_ptr);
            planned.rack = topology_ ? topology_->rackOf(planned.id) : 0;
            hosts.push_back(planned);
        }

        std::vector<PlannedVm> vms;
        vms.reserve(cluster_.vmCount());
        for (const auto &vm_ptr : cluster_.vms()) {
            if (!vm_ptr->placed())
                continue;
            PlannedVm planned;
            planned.id = vm_ptr->id();
            planned.cpuMhz = predictedVmMhz(*vm_ptr);
            planned.memoryMb = vm_ptr->memoryMb();
            // Plan a VM that is already heading somewhere at its
            // destination (pinned), so its CPU and memory are not
            // double-booked there.
            const dc::HostId inbound =
                migration_.destinationOf(vm_ptr->id());
            planned.movable = inbound == dc::invalidHostId;
            planned.host = planned.movable ? vm_ptr->host() : inbound;
            vms.push_back(planned);
        }
        model_ = PlacementModel(std::move(hosts), std::move(vms));
        if (!config_.antiAffinityGroups.empty())
            model_.setAntiAffinityGroups(config_.antiAffinityGroups);
        modelEpoch_ = epoch;
        modelValid_ = true;
        return model_;
    }

    // Same membership: refresh per-entity fields in place. Capacities and
    // racks are immutable per entity; usable, predictions, placement and
    // movability are live state. This also discards any pins or moves a
    // previous planning pass applied, exactly like a fresh build would.
    std::vector<PlannedHost> &hosts = model_.mutableHosts();
    std::size_t hi = 0;
    for (const auto &host_ptr : cluster_.hosts())
        hosts[hi++].usable = host_ptr->isOn() && hostUsable(*host_ptr);

    std::vector<PlannedVm> &vms = model_.mutableVms();
    std::size_t vi = 0;
    for (const auto &vm_ptr : cluster_.vms()) {
        if (!vm_ptr->placed())
            continue;
        PlannedVm &planned = vms[vi++];
        planned.cpuMhz = predictedVmMhz(*vm_ptr);
        const dc::HostId inbound = migration_.destinationOf(vm_ptr->id());
        planned.movable = inbound == dc::invalidHostId;
        planned.host = planned.movable ? vm_ptr->host() : inbound;
    }
    if (hi != hosts.size() || vi != vms.size())
        sim::panic("VpmManager::buildModel: refresh walked %zu/%zu hosts "
                   "and %zu/%zu VMs despite an unchanged epoch",
                   hi, hosts.size(), vi, vms.size());
    model_.rebuildUsage();
    if (!config_.antiAffinityGroups.empty())
        model_.setAntiAffinityGroups(config_.antiAffinityGroups);
    return model_;
}

void
VpmManager::rebalanceAndConsolidate()
{
    PROF_ZONE("mgmt.rebalance");
    PlacementModel &model = buildModel();
    int budget = config_.maxMigrationsPerCycle;

    // One decision id covers one planned batch (a rebalance pass or one
    // host's evacuation); every migration in the batch — started now or
    // queued — carries it, so an analyzer can group the resulting
    // migration spans back under the decision that planned them.
    const auto issue = [&](const std::vector<Move> &moves,
                           const char *reason, dc::HostId subject) {
        if (moves.empty())
            return 0;
        const std::uint64_t decision = telemetry::newDecisionId();
        telemetry::TraceScope scope(decision);
        const std::uint64_t seq =
            telemetry::global().journal().migrateDecision(
                simulator_.now().micros(), reason,
                static_cast<int>(moves.size()), subject);
        scope.setCauseSeq(seq);

        int issued = 0;
        for (const Move &move : moves) {
            if (budget <= 0)
                break;
            // Belt-and-braces: planners pin moved VMs, so a duplicate
            // here indicates a planning bug, not expected churn.
            if (migration_.involved(move.vm)) {
                sim::warn("VpmManager: duplicate move planned for VM %d",
                          move.vm);
                continue;
            }
            if (migration_.request(move.vm, move.to)) {
                ++stats_.migrationsRequested;
                --budget;
                ++issued;
            }
        }
        return issued;
    };

    if (config_.loadBalance) {
        const std::vector<Move> moves =
            planRebalance(model, config_.targetUtilization,
                          config_.imbalanceThreshold, budget,
                          config_.heuristic, config_.rackAffinity);
        stats_.balanceMoves += static_cast<std::uint64_t>(
            issue(moves, "balance", dc::invalidHostId));
    }

    if (!config_.powerManage)
        return;

    // Continue evacuating hosts already draining (a prior cycle may have
    // run out of budget, or a queued migration may have been dropped) and
    // hosts the operator wants empty for maintenance.
    std::vector<dc::HostId> evacuating(draining_.begin(), draining_.end());
    evacuating.insert(evacuating.end(), maintenance_.begin(),
                      maintenance_.end());
    for (dc::HostId host_id : evacuating) {
        const dc::Host &host = cluster_.host(host_id);
        if (host.empty() || !host.isOn())
            continue;
        const auto plan = planEvacuation(model, host_id,
                                         config_.targetUtilization,
                                         config_.heuristic,
                                         config_.rackAffinity);
        if (plan) {
            issue(*plan,
                  draining_.contains(host_id) ? "evacuate" : "maintenance",
                  host_id);
        } else if (host.activeMigrations() == 0 &&
                   draining_.contains(host_id)) {
            // Stuck with no migrations in flight: the cluster can no
            // longer absorb this host's VMs. Abandon the drain.
            // (Maintenance evacuations are operator orders: keep trying.)
            cancelDrain(host_id);
            ++stats_.evacuationsAbandoned;
        }
    }

    // Consider a new evacuation only after a sustained surplus.
    const double required = requiredCapacityMhz();
    double staying_capacity = 0.0;
    for (const auto &host_ptr : cluster_.hosts()) {
        if (host_ptr->isOn() && hostUsable(*host_ptr))
            staying_capacity += host_ptr->cpuCapacityMhz();
    }

    const dc::Host *candidate = chooseEvacuationCandidate(model);
    const bool surplus =
        candidate &&
        required + spareFloorMhz() <=
            config_.targetUtilization *
                (staying_capacity - candidate->cpuCapacityMhz());
    if (!surplus) {
        surplusStreak_ = 0;
        return;
    }
    ++surplusStreak_;
    if (surplusStreak_ < config_.hysteresisCycles)
        return;

    int evacuations = 0;
    while (evacuations < config_.maxEvacuationsPerCycle && candidate) {
        // Adaptive mode may conclude sleeping cannot pay off right now.
        if (!chooseSleepState(*candidate))
            break;

        const auto plan = planEvacuation(model, candidate->id(),
                                         config_.targetUtilization,
                                         config_.heuristic,
                                         config_.rackAffinity);
        if (!plan || static_cast<int>(plan->size()) > budget)
            break; // retry next cycle with a fresh budget

        issue(*plan, "evacuate", candidate->id());
        draining_.insert(candidate->id());
        ++stats_.evacuationsStarted;
        ++evacuations;

        // Find the next candidate, if the surplus is deep enough.
        staying_capacity -= candidate->cpuCapacityMhz();
        candidate = chooseEvacuationCandidate(model);
        if (candidate &&
            required + spareFloorMhz() >
                config_.targetUtilization *
                    (staying_capacity - candidate->cpuCapacityMhz())) {
            candidate = nullptr;
        }
    }
}

const dc::Host *
VpmManager::chooseEvacuationCandidate(const PlacementModel &model) const
{
    // Pass 1: the lightest on, usable host.
    const dc::Host *lightest = nullptr;
    double min_load = 0.0;
    for (const auto &host_ptr : cluster_.hosts()) {
        if (!host_ptr->isOn() || !hostUsable(*host_ptr))
            continue;
        const double load = model.cpuUsedMhz(host_ptr->id());
        if (!lightest || load < min_load) {
            lightest = host_ptr.get();
            min_load = load;
        }
    }
    if (!lightest || !config_.heterogeneityAware)
        return lightest;

    // Pass 2 (heterogeneity-aware): among hosts whose load is comparable
    // to the lightest (so evacuation stays cheap and feasible), prefer
    // the one with the most parkable watts. A power-hungry relic beats a
    // slightly emptier efficient host; a heavily loaded one never does.
    const auto savable_watts = [](const dc::Host &host) {
        const power::HostPowerSpec &spec = host.powerFsm().spec();
        double floor_w = spec.idlePowerWatts();
        for (const power::SleepStateSpec &state : spec.sleepStates())
            floor_w = std::min(floor_w, state.sleepPowerWatts);
        return spec.idlePowerWatts() - floor_w;
    };

    const dc::Host *best = lightest;
    double best_watts = savable_watts(*lightest);
    for (const auto &host_ptr : cluster_.hosts()) {
        if (!host_ptr->isOn() || !hostUsable(*host_ptr))
            continue;
        const double load = model.cpuUsedMhz(host_ptr->id());
        const double slack = 0.15 * host_ptr->cpuCapacityMhz();
        if (load > min_load + slack)
            continue;
        const double watts = savable_watts(*host_ptr);
        if (watts > best_watts + 1e-9) {
            best = host_ptr.get();
            best_watts = watts;
        }
    }
    return best;
}

const power::SleepStateSpec *
VpmManager::chooseSleepState(const dc::Host &host) const
{
    const power::HostPowerSpec &spec = host.powerFsm().spec();
    if (!config_.sleepState.empty()) {
        const power::SleepStateSpec *state =
            spec.findSleepState(config_.sleepState);
        if (!state)
            sim::warn("VpmManager: host '%s' lacks sleep state '%s'",
                      host.name().c_str(), config_.sleepState.c_str());
        return state;
    }
    // Adaptive: deepest state whose break-even beats the idle estimate.
    return power::bestStateForInterval(spec, expectedIdle_.toSeconds());
}

void
VpmManager::completeDrains()
{
    PROF_ZONE("mgmt.drains");
    const std::vector<dc::HostId> draining_now(draining_.begin(),
                                               draining_.end());
    for (dc::HostId host_id : draining_now) {
        dc::Host &host = cluster_.host(host_id);
        if (!host.empty() || host.activeMigrations() > 0 || !host.isOn())
            continue;

        if (!config_.hostSleep || config_.parkedReserve > 0) {
            // Park instead of (or before) sleeping: hold the host On at
            // the bottom of its idle hierarchy, out of placement's
            // reach. Reclaiming it later is instant, so no boot latency
            // is ever risked. With a parkedReserve, the overflow
            // escalates to a real sleep below.
            const std::uint64_t decision = telemetry::newDecisionId();
            telemetry::TraceScope scope(decision);
            if (power::IdleHierarchy *hier = host.idleHierarchy())
                hier->descendFully();
            parked_.insert(host_id);
            parkedAt_.emplace(host_id, simulator_.now());
            draining_.erase(host_id);
            ++stats_.hostsParked;
            sim::inform("host '%s' parked (On, deepest idle state)",
                        host.name().c_str());
            continue;
        }

        const power::SleepStateSpec *state = chooseSleepState(host);
        if (!state) {
            cancelDrain(host_id);
            continue;
        }
        // The entry transition (and its completion event) inherit this
        // decision id; the power rates in the record let an analyzer
        // compute the episode's energy saving without the host spec.
        const std::uint64_t decision = telemetry::newDecisionId();
        telemetry::TraceScope scope(decision);
        // The S-states sit above the idle hierarchy: descend it fully
        // first (the cluster refuses the sleep otherwise). The resulting
        // idle_transition records carry this decision id.
        if (power::IdleHierarchy *hier = host.idleHierarchy())
            hier->descendFully();
        if (cluster_.requestHostSleep(host_id, state->name)) {
            ++stats_.sleepsIssued;
            telemetry::global().journal().sleepDecision(
                simulator_.now().micros(), host_id, state->name,
                expectedIdle_.toSeconds(),
                host.powerFsm().spec().idlePowerWatts(),
                state->sleepPowerWatts);
            sleepStartedAt_[host_id] = simulator_.now();
            draining_.erase(host_id);
        }
    }

    // Reserve overflow: the oldest parked hosts graduate to a real
    // S-state — they have proven idle the longest, so they are the least
    // likely to be reclaimed before the sleep's break-even passes.
    while (config_.hostSleep &&
           static_cast<int>(parked_.size()) > config_.parkedReserve) {
        dc::HostId oldest = *parked_.begin();
        for (const dc::HostId host_id : parked_) {
            if (parkedAt_[host_id] < parkedAt_[oldest])
                oldest = host_id;
        }
        parked_.erase(oldest);
        parkedAt_.erase(oldest);

        dc::Host &host = cluster_.host(oldest);
        if (!host.isOn() || !host.empty())
            continue; // crashed or repurposed under us; nothing to sleep
        const power::SleepStateSpec *state = chooseSleepState(host);
        if (!state)
            continue; // stays ordinary capacity
        const std::uint64_t decision = telemetry::newDecisionId();
        telemetry::TraceScope scope(decision);
        // The joint policy may have lifted the parked host to a shallower
        // state since it parked; re-descend so the sleep gate passes.
        if (power::IdleHierarchy *hier = host.idleHierarchy())
            hier->descendFully();
        if (cluster_.requestHostSleep(oldest, state->name)) {
            ++stats_.sleepsIssued;
            telemetry::global().journal().sleepDecision(
                simulator_.now().micros(), oldest, state->name,
                expectedIdle_.toSeconds(),
                host.powerFsm().spec().idlePowerWatts(),
                state->sleepPowerWatts);
            sleepStartedAt_[oldest] = simulator_.now();
        }
    }
}

bool
VpmManager::hostUsable(const dc::Host &host) const
{
    return !draining_.contains(host.id()) &&
           !maintenance_.contains(host.id()) &&
           !parked_.contains(host.id());
}

bool
VpmManager::requestMaintenance(dc::HostId host)
{
    if (!maintenance_.insert(host).second)
        return false;
    // Maintenance supersedes any in-progress consolidation drain or park.
    draining_.erase(host);
    parked_.erase(host);
    parkedAt_.erase(host);
    sim::inform("host '%s' entering maintenance",
                cluster_.host(host).name().c_str());
    return true;
}

bool
VpmManager::endMaintenance(dc::HostId host)
{
    if (maintenance_.erase(host) == 0)
        return false;
    sim::inform("host '%s' left maintenance",
                cluster_.host(host).name().c_str());
    return true;
}

bool
VpmManager::maintenanceReady(dc::HostId host) const
{
    if (!maintenance_.contains(host))
        return false;
    const dc::Host &host_ref = cluster_.host(host);
    return host_ref.isOn() && host_ref.empty() &&
           host_ref.activeMigrations() == 0;
}

void
VpmManager::cancelDrain(dc::HostId host)
{
    if (draining_.erase(host) > 0)
        ++stats_.drainsCancelled;
}

namespace {

// Raw little-endian-free appends for the checkpoint capture: same
// machine writes and compares, so native byte order is fine (the
// vpm-ckpt-1 file as a whole is documented as host-endian).
void
appendRaw(std::vector<std::uint8_t> &out, const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), bytes, bytes + n);
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    appendRaw(out, &v, sizeof(v));
}

void
appendI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    appendRaw(out, &v, sizeof(v));
}

void
appendDoubles(std::vector<std::uint8_t> &out,
              const std::vector<double> &values)
{
    appendU64(out, values.size());
    appendRaw(out, values.data(), values.size() * sizeof(double));
}

void
appendHostSet(std::vector<std::uint8_t> &out,
              const std::set<dc::HostId> &hosts)
{
    appendU64(out, hosts.size());
    for (const dc::HostId h : hosts)
        appendI64(out, h);
}

void
appendHostTimeMap(std::vector<std::uint8_t> &out,
                  const std::map<dc::HostId, sim::SimTime> &entries)
{
    appendU64(out, entries.size());
    for (const auto &[host, when] : entries) {
        appendI64(out, host);
        appendI64(out, when.micros());
    }
}

} // namespace

void
VpmManager::serializeState(std::vector<std::uint8_t> &out) const
{
    std::vector<double> scratch;
    appendU64(out, vmPredictors_.size());
    for (const auto &predictor : vmPredictors_) {
        appendU64(out, predictor ? 1 : 0);
        if (predictor) {
            scratch.clear();
            predictor->appendState(scratch);
            appendDoubles(out, scratch);
        }
    }
    appendU64(out, aggregatePredictor_ ? 1 : 0);
    if (aggregatePredictor_) {
        scratch.clear();
        aggregatePredictor_->appendState(scratch);
        appendDoubles(out, scratch);
    }

    appendHostSet(out, draining_);
    appendHostSet(out, maintenance_);
    appendHostSet(out, parked_);
    appendHostTimeMap(out, parkedAt_);
    appendHostTimeMap(out, sleepStartedAt_);

    appendI64(out, expectedIdle_.micros());
    appendI64(out, surplusStreak_);
    appendU64(out, evaluationsSeen_);
    appendU64(out, evaluationsPerCycle_);

    appendU64(out, stats_.cycles);
    appendU64(out, stats_.migrationsRequested);
    appendU64(out, stats_.balanceMoves);
    appendU64(out, stats_.evacuationsStarted);
    appendU64(out, stats_.evacuationsAbandoned);
    appendU64(out, stats_.drainsCancelled);
    appendU64(out, stats_.sleepsIssued);
    appendU64(out, stats_.wakesIssued);
    appendU64(out, stats_.hostsParked);
    appendU64(out, stats_.hostsUnparked);
    appendU64(out, stats_.wakesDeniedByCap);
    appendU64(out, stats_.shortfallCycles);
    appendU64(out, stats_.haRestarts);
}

void
VpmManager::applyPolicyDelta(const VpmConfig &next)
{
    config_.loadBalance = next.loadBalance;
    config_.powerManage = next.powerManage;
    config_.targetUtilization = next.targetUtilization;
    config_.imbalanceThreshold = next.imbalanceThreshold;
    config_.maxMigrationsPerCycle = next.maxMigrationsPerCycle;
    config_.capacityBuffer = next.capacityBuffer;
    config_.hysteresisCycles = next.hysteresisCycles;
    config_.maxEvacuationsPerCycle = next.maxEvacuationsPerCycle;
    config_.sleepState = next.sleepState;
    config_.heterogeneityAware = next.heterogeneityAware;
    config_.rackAffinity = next.rackAffinity;
    config_.clusterPowerCapWatts = next.clusterPowerCapWatts;
    config_.hostSleep = next.hostSleep;
    config_.parkedReserve = next.parkedReserve;
    config_.haRestart = next.haRestart;
    config_.spareHostsFloor = next.spareHostsFloor;
}

} // namespace vpm::mgmt
