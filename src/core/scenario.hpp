/**
 * @file
 * Scenario harness: one-call construction and execution of a complete
 * experiment (cluster + fleet + policy), shared by the benches, examples
 * and integration tests.
 *
 * A scenario builds a homogeneous cluster, draws a VM fleet from the
 * enterprise mix, places it statically (first-fit decreasing by VM size),
 * runs the chosen management policy for the configured duration, and
 * returns the run metrics plus manager counters and the ideal
 * energy-proportional reference energy.
 */

#ifndef VPM_CORE_SCENARIO_HPP
#define VPM_CORE_SCENARIO_HPP

#include <cstdint>
#include <functional>
#include <optional>

#include "core/dvfs.hpp"
#include "core/joint_policy.hpp"
#include "core/manager.hpp"
#include "core/policies.hpp"
#include "datacenter/datacenter_sim.hpp"
#include "datacenter/failure.hpp"
#include "datacenter/provisioning.hpp"
#include "power/server_models.hpp"
#include "workload/mix.hpp"

namespace vpm::mgmt {

/** Everything needed to run one experiment. */
struct ScenarioConfig
{
    int hostCount = 8;
    int vmCount = 40;

    dc::HostConfig hostConfig{};
    power::HostPowerSpec powerSpec = power::enterpriseBlade2013();

    /**
     * When non-empty, host i uses heterogeneousSpecs[i % size()] instead
     * of powerSpec (capacities stay uniform). The ideal-proportional
     * reference then uses the specs' mean peak power.
     */
    std::vector<power::HostPowerSpec> heterogeneousSpecs;

    workload::MixConfig mix{};
    dc::MigrationConfig migration{};
    dc::DatacenterConfig datacenter{};
    VpmConfig manager{};

    sim::SimTime duration = sim::SimTime::hours(24.0);
    std::uint64_t seed = 42;

    /** When set, VM lifecycle churn runs on top of the static fleet and
     *  the manager counts pending arrivals as required capacity. */
    std::optional<dc::ProvisioningConfig> provisioning;

    /** When set, a DVFS governor scales host frequencies to demand. */
    std::optional<DvfsConfig> dvfs;

    /** When set, every host gets this idle-state hierarchy attached under
     *  its power FSM (core C-states + package states). */
    std::optional<power::IdleHierarchySpec> idleHierarchy;

    /** When set, a joint speed/sleep governor runs each control period
     *  (requires idleHierarchy for the sleep half to do anything).
     *  Mutually exclusive with dvfs — the joint policy owns the speed
     *  knob via controlSpeed. */
    std::optional<JointPolicyConfig> jointPolicy;

    /** When set, hosts crash and get repaired per the failure process;
     *  the manager's HA restart and spare floor handle the fallout. */
    std::optional<dc::FailureConfig> failures;

    /** When set, the network has racks: migrations pay locality-dependent
     *  bandwidth and share per-rack uplink slots; the manager's
     *  rackAffinity knob becomes meaningful. */
    std::optional<dc::TopologyConfig> topology;

    /**
     * Optional fleet post-processing hook, applied after the mix is drawn
     * and before VMs are created — e.g. to overlay a load spike (F6).
     */
    std::function<void(std::vector<workload::VmWorkloadSpec> &)>
        transformFleet;

    /**
     * Optional probe fired after every demand evaluation with the cluster
     * state and the current simulated time — lets benches record time
     * series (power timelines, recovery times) without owning the rig.
     */
    std::function<void(const dc::Cluster &, sim::SimTime)> evaluationProbe;
};

/** Results of one scenario run. */
struct ScenarioResult
{
    dc::RunMetrics metrics;
    ManagerStats manager;

    /** Time-weighted mean of total demand / total capacity. */
    double offeredLoadFraction = 0.0;

    /** Energy of an ideal energy-proportional cluster serving the same
     *  demand, in kWh — the reference line of the proportionality figure.*/
    double idealProportionalKwh = 0.0;

    /** Mean live-migration duration, in seconds (0 if none completed). */
    double meanMigrationSeconds = 0.0;

    /** @name Churn outcomes (zero unless provisioning was enabled) */
    ///@{
    std::uint64_t vmArrivals = 0;
    std::uint64_t vmDepartures = 0;

    /** Mean wait between a VM's arrival and its placement, in seconds. */
    double meanPlacementDelaySeconds = 0.0;

    /** Worst single placement wait, in seconds. */
    double maxPlacementDelaySeconds = 0.0;
    ///@}

    /** Frequency-change commands (zero unless DVFS was enabled). */
    std::uint64_t dvfsTransitions = 0;

    /** @name Joint-policy outcomes (zero unless jointPolicy was set) */
    ///@{
    std::uint64_t jointSpeedTransitions = 0;
    std::uint64_t jointIdleTransitions = 0;
    ///@}

    /** Idle-hierarchy group transitions fleet-wide (policy + manager
     *  descents; zero unless idleHierarchy was set). */
    std::uint64_t idleTransitions = 0;

    /** Fleet-wide C-state transition energy, joules (part of totalKwh). */
    double idleTransitionJoules = 0.0;

    /** Completed migrations that crossed racks (zero on flat networks). */
    std::uint64_t crossRackMigrations = 0;

    /** @name Failure outcomes (zero unless failures were enabled) */
    ///@{
    std::uint64_t hostCrashes = 0;
    std::uint64_t hostRepairs = 0;
    ///@}

    /** @name Wake agility (fleet-wide, from the power FSM wake samples) */
    ///@{
    std::uint64_t wakes = 0;         ///< completed host wakes
    double meanWakeSeconds = 0.0;    ///< mean end-to-end wake latency
    double wakeP99Seconds = 0.0;     ///< 99th pct end-to-end wake latency
    ///@}

    /** Simulator events dispatched by this run (per-instance counter, so
     *  concurrent sweep cells attribute throughput correctly). */
    std::uint64_t eventsProcessed = 0;
};

/**
 * Place every VM with first-fit decreasing by full VM size (CPU limit 1.0,
 * memory limit enforced, anti-affinity groups respected). Fatal if the
 * fleet does not fit — that is a scenario configuration error.
 */
void staticInitialPlacement(
    dc::Cluster &cluster,
    const std::vector<std::vector<dc::VmId>> &anti_affinity_groups = {});

/** Build, run and tear down one scenario. Deterministic given the seed. */
ScenarioResult runScenario(const ScenarioConfig &config);

} // namespace vpm::mgmt

#endif // VPM_CORE_SCENARIO_HPP
