#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::mgmt {

std::unique_ptr<DemandPredictor>
LastValuePredictor::clone() const
{
    return std::make_unique<LastValuePredictor>();
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        sim::fatal("EwmaPredictor: alpha %g outside (0, 1]", alpha);
}

void
EwmaPredictor::observe(double value)
{
    if (!seeded_) {
        value_ = value;
        seeded_ = true;
    } else {
        value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
}

std::unique_ptr<DemandPredictor>
EwmaPredictor::clone() const
{
    return std::make_unique<EwmaPredictor>(alpha_);
}

WindowMaxPredictor::WindowMaxPredictor(std::size_t window) : window_(window)
{
    if (window == 0)
        sim::fatal("WindowMaxPredictor: window must be >= 1");
}

void
WindowMaxPredictor::observe(double value)
{
    values_.push_back(value);
    if (values_.size() > window_)
        values_.pop_front();
}

double
WindowMaxPredictor::predict() const
{
    if (values_.empty())
        return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

std::unique_ptr<DemandPredictor>
WindowMaxPredictor::clone() const
{
    return std::make_unique<WindowMaxPredictor>(window_);
}

LinearTrendPredictor::LinearTrendPredictor(std::size_t window)
    : window_(window)
{
    if (window < 2)
        sim::fatal("LinearTrendPredictor: window must be >= 2");
}

void
LinearTrendPredictor::observe(double value)
{
    values_.push_back(value);
    if (values_.size() > window_)
        values_.pop_front();
}

double
LinearTrendPredictor::predict() const
{
    const std::size_t n = values_.size();
    if (n == 0)
        return 0.0;
    if (n == 1)
        return values_.front();

    // Least squares of value against index; forecast one step past the end.
    const double nn = static_cast<double>(n);
    double sum_x = 0.0, sum_y = 0.0, sum_xy = 0.0, sum_xx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i);
        const double y = values_[i];
        sum_x += x;
        sum_y += y;
        sum_xy += x * y;
        sum_xx += x * x;
    }
    const double denom = nn * sum_xx - sum_x * sum_x;
    if (denom == 0.0)
        return values_.back();
    const double slope = (nn * sum_xy - sum_x * sum_y) / denom;
    const double intercept = (sum_y - slope * sum_x) / nn;
    return std::max(0.0, intercept + slope * nn);
}

std::unique_ptr<DemandPredictor>
LinearTrendPredictor::clone() const
{
    return std::make_unique<LinearTrendPredictor>(window_);
}

PeriodicProfilePredictor::PeriodicProfilePredictor(
    std::size_t slots_per_period, double alpha,
    std::size_t lookahead_slots)
    : alpha_(alpha), lookahead_(lookahead_slots),
      profile_(slots_per_period, 0.0)
{
    if (slots_per_period < 2)
        sim::fatal("PeriodicProfilePredictor: need >= 2 slots, got %zu",
                   slots_per_period);
    if (alpha <= 0.0 || alpha > 1.0)
        sim::fatal("PeriodicProfilePredictor: alpha %g outside (0, 1]",
                   alpha);
    if (lookahead_slots < 1)
        sim::fatal("PeriodicProfilePredictor: look-ahead must be >= 1");
}

void
PeriodicProfilePredictor::observe(double value)
{
    const std::size_t slot = count_ % profile_.size();
    if (count_ < profile_.size()) {
        profile_[slot] = value; // first revolution seeds the profile
    } else {
        profile_[slot] = alpha_ * value + (1.0 - alpha_) * profile_[slot];
    }
    last_ = value;
    ++count_;
}

double
PeriodicProfilePredictor::predict() const
{
    if (!profileComplete())
        return last_;

    // Max of the learned profile over the upcoming slots, floored by the
    // freshest observation so a today-only anomaly is never forecast away.
    double forecast = last_;
    for (std::size_t ahead = 0; ahead < lookahead_; ++ahead) {
        const std::size_t slot = (count_ + ahead) % profile_.size();
        forecast = std::max(forecast, profile_[slot]);
    }
    return forecast;
}

std::unique_ptr<DemandPredictor>
PeriodicProfilePredictor::clone() const
{
    return std::make_unique<PeriodicProfilePredictor>(profile_.size(),
                                                      alpha_, lookahead_);
}

// Checkpoint-capture appends: every mutable member, fixed order, flags
// as 0/1 doubles. Comparisons are byte-wise, so ordering is part of the
// vpm-ckpt-1 contract (DESIGN.md).

void
LastValuePredictor::appendState(std::vector<double> &out) const
{
    out.push_back(last_);
}

void
EwmaPredictor::appendState(std::vector<double> &out) const
{
    out.push_back(value_);
    out.push_back(seeded_ ? 1.0 : 0.0);
}

void
WindowMaxPredictor::appendState(std::vector<double> &out) const
{
    out.push_back(static_cast<double>(values_.size()));
    out.insert(out.end(), values_.begin(), values_.end());
}

void
LinearTrendPredictor::appendState(std::vector<double> &out) const
{
    out.push_back(static_cast<double>(values_.size()));
    out.insert(out.end(), values_.begin(), values_.end());
}

void
PeriodicProfilePredictor::appendState(std::vector<double> &out) const
{
    out.push_back(static_cast<double>(count_));
    out.push_back(last_);
    out.insert(out.end(), profile_.begin(), profile_.end());
}

const char *
toString(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::LastValue:
        return "last-value";
      case PredictorKind::Ewma:
        return "ewma";
      case PredictorKind::WindowMax:
        return "window-max";
      case PredictorKind::LinearTrend:
        return "linear-trend";
      case PredictorKind::PeriodicProfile:
        return "periodic-profile";
    }
    sim::panic("toString: invalid PredictorKind %d", static_cast<int>(kind));
}

std::unique_ptr<DemandPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::LastValue:
        return std::make_unique<LastValuePredictor>();
      case PredictorKind::Ewma:
        return std::make_unique<EwmaPredictor>();
      case PredictorKind::WindowMax:
        return std::make_unique<WindowMaxPredictor>();
      case PredictorKind::LinearTrend:
        return std::make_unique<LinearTrendPredictor>();
      case PredictorKind::PeriodicProfile:
        // Default geometry: a 24 h day of 5-minute management cycles.
        return std::make_unique<PeriodicProfilePredictor>(288);
    }
    sim::panic("makePredictor: invalid PredictorKind %d",
               static_cast<int>(kind));
}

ForecastTracker::ForecastTracker(std::string predictor_name)
    : name_(std::move(predictor_name))
{
}

void
ForecastTracker::observe(std::int64_t t_us, double actual,
                         double next_forecast)
{
    PROF_ZONE("predictor.track");
    if (hasPending_) {
        ++samples_;
        absErrorSum_ += std::abs(pendingForecast_ - actual);
        errorSum_ += pendingForecast_ - actual;
        telemetry::Telemetry &tel = telemetry::global();
        tel.journal().forecast(t_us, name_, pendingForecast_, actual);
        tel.metrics().gauge("predictor.mae").set(meanAbsoluteError());
        // Per-cycle |error| history: one shared series across trackers, so
        // the watchdog can alarm on forecast quality regardless of which
        // predictor the policy runs.
        telemetry::TimeSeriesStore &store = tel.timeseries();
        if (store.enabled())
            store.record(store.seriesId("forecast.abs_error"), t_us,
                         std::abs(pendingForecast_ - actual));
    }
    pendingForecast_ = next_forecast;
    hasPending_ = true;
}

double
ForecastTracker::meanAbsoluteError() const
{
    return samples_ > 0 ? absErrorSum_ / double(samples_) : 0.0;
}

double
ForecastTracker::meanError() const
{
    return samples_ > 0 ? errorSum_ / double(samples_) : 0.0;
}

} // namespace vpm::mgmt
