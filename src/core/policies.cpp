#include "core/policies.hpp"

#include "simcore/logging.hpp"

namespace vpm::mgmt {

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::NoPM:
        return "NoPM";
      case PolicyKind::DrmOnly:
        return "DRM";
      case PolicyKind::PmS5:
        return "PM+S5";
      case PolicyKind::PmS3:
        return "PM+S3";
      case PolicyKind::PmAdaptive:
        return "PM+adaptive";
    }
    sim::panic("toString: invalid PolicyKind %d", static_cast<int>(kind));
}

VpmConfig
makePolicy(PolicyKind kind)
{
    VpmConfig config;
    switch (kind) {
      case PolicyKind::NoPM:
        config.loadBalance = false;
        config.powerManage = false;
        break;
      case PolicyKind::DrmOnly:
        config.loadBalance = true;
        config.powerManage = false;
        break;
      case PolicyKind::PmS5:
        config.loadBalance = true;
        config.powerManage = true;
        config.sleepState = "S5";
        // A minutes-scale exit latency forces conservatism: more spare
        // capacity and a longer hold before committing to a shutdown.
        config.capacityBuffer = 0.30;
        config.hysteresisCycles = 6;
        break;
      case PolicyKind::PmS3:
        config.loadBalance = true;
        config.powerManage = true;
        config.sleepState = "S3";
        break;
      case PolicyKind::PmAdaptive:
        config.loadBalance = true;
        config.powerManage = true;
        config.sleepState = ""; // break-even-based selection
        break;
    }
    return config;
}

} // namespace vpm::mgmt
