#include "core/dvfs.hpp"

#include <algorithm>

#include "simcore/logging.hpp"

namespace vpm::mgmt {

DvfsController::DvfsController(dc::Cluster &cluster,
                               dc::DatacenterSim &dcsim,
                               const DvfsConfig &config)
    : cluster_(cluster), dcsim_(dcsim), config_(config)
{
    if (config_.levels.empty())
        sim::fatal("DvfsController: no frequency levels");
    for (std::size_t i = 0; i < config_.levels.size(); ++i) {
        const double f = config_.levels[i];
        if (f <= 0.0 || f > 1.0)
            sim::fatal("DvfsController: level %g outside (0, 1]", f);
        if (i > 0 && f <= config_.levels[i - 1])
            sim::fatal("DvfsController: levels must be ascending");
    }
    if (config_.levels.back() != 1.0)
        sim::fatal("DvfsController: highest level must be 1.0 (nominal)");
    if (config_.targetUtilization <= 0.0 ||
        config_.targetUtilization > 1.0) {
        sim::fatal("DvfsController: target utilization %g outside (0, 1]",
                   config_.targetUtilization);
    }
    if (config_.period <= sim::SimTime())
        sim::fatal("DvfsController: period must be positive");
    if (config_.period.micros() %
            dcsim_.config().evaluationInterval.micros() != 0) {
        sim::fatal("DvfsController: period must be a multiple of the "
                   "evaluation interval");
    }
}

void
DvfsController::start()
{
    if (started_)
        sim::panic("DvfsController::start called twice");
    started_ = true;
    evaluationsPerCycle_ = static_cast<std::uint64_t>(
        config_.period.micros() /
        dcsim_.config().evaluationInterval.micros());

    dcsim_.addEvaluationHook([this] {
        ++evaluationsSeen_;
        if ((evaluationsSeen_ - 1) % evaluationsPerCycle_ == 0)
            controlCycle();
    });
}

void
DvfsController::controlCycle()
{
    for (const auto &host_ptr : cluster_.hosts()) {
        if (!host_ptr->isOn())
            continue;

        // Lowest level whose scaled capacity covers demand with headroom.
        const double demand =
            host_ptr->vmDemandMhz() + host_ptr->migrationOverheadMhz();
        double chosen = config_.levels.back();
        for (const double f : config_.levels) {
            if (demand <= config_.targetUtilization *
                              host_ptr->cpuCapacityMhz() * f) {
                chosen = f;
                break;
            }
        }

        if (host_ptr->frequencyFraction() != chosen) {
            host_ptr->setFrequencyFraction(chosen);
            ++transitions_;
        }
    }

    // Frequencies moved: grants and power draws must follow.
    dcsim_.reallocate();
}

} // namespace vpm::mgmt
