/**
 * @file
 * Placement planning: the bin-packing and load-balancing algorithms of the
 * management layer.
 *
 * Planning runs on a PlacementModel — a snapshot of hosts and VMs sized by
 * *predicted* demand — so the algorithms are pure, deterministic and unit
 * testable, decoupled from the live Cluster. The caller turns the returned
 * moves into live-migration requests.
 */

#ifndef VPM_CORE_PLACEMENT_HPP
#define VPM_CORE_PLACEMENT_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "datacenter/vm.hpp"

namespace vpm::mgmt {

using dc::HostId;
using dc::VmId;

/** A host as the planner sees it. */
struct PlannedHost
{
    HostId id = dc::invalidHostId;
    double cpuCapacityMhz = 0.0;
    double memoryCapacityMb = 0.0;

    /** false for hosts that are off, transitioning, or draining — they can
     *  neither receive VMs nor count as capacity. */
    bool usable = true;

    /** Rack assignment; planners with rack affinity prefer same-rack
     *  destinations. 0 everywhere models a flat network. */
    int rack = 0;
};

/** A VM as the planner sees it; cpuMhz is its *predicted* demand. */
struct PlannedVm
{
    VmId id = -1;
    HostId host = dc::invalidHostId;
    double cpuMhz = 0.0;
    double memoryMb = 0.0;

    /** false pins the VM (e.g. it is already migrating): its load counts
     *  but planners will not select it as a move candidate. */
    bool movable = true;
};

/** One planned relocation. */
struct Move
{
    VmId vm = -1;
    HostId from = dc::invalidHostId;
    HostId to = dc::invalidHostId;

    bool operator==(const Move &) const = default;
};

/** Bin-packing heuristics for choosing a destination host (A2 ablation). */
enum class PackingHeuristic
{
    FirstFitDecreasing, ///< first host with room, largest VMs first
    BestFitDecreasing,  ///< tightest-fitting host, largest VMs first
    WorstFit,           ///< roomiest host (spreads load)
};

/** Human-readable heuristic name for tables. */
const char *toString(PackingHeuristic heuristic);

/**
 * Mutable planning snapshot with incremental usage bookkeeping.
 *
 * Host and VM ids may be sparse; lookups go through dense slot tables
 * sized by the largest id (cluster ids are sequential, so the tables are
 * compact in practice).
 */
class PlacementModel
{
  public:
    /** Empty model; assign or rebuild before use. */
    PlacementModel() = default;

    PlacementModel(std::vector<PlannedHost> hosts,
                   std::vector<PlannedVm> vms);

    /** @name Queries */
    ///@{
    const std::vector<PlannedHost> &hosts() const { return hosts_; }
    const std::vector<PlannedVm> &vms() const { return vms_; }

    double cpuUsedMhz(HostId host) const;
    double memoryUsedMb(HostId host) const;

    /** Predicted CPU utilization of a host, in [0, inf). */
    double cpuUtilization(HostId host) const;

    /** VMs currently assigned to @p host, in insertion order. */
    std::vector<VmId> vmsOn(HostId host) const;

    /**
     * true if adding @p vm to @p host keeps predicted CPU below
     * @p cpu_limit_fraction of capacity and memory below capacity.
     * The host must be usable.
     */
    bool fits(const PlannedVm &vm, HostId host,
              double cpu_limit_fraction) const;

    const PlannedVm &vm(VmId id) const;
    const PlannedHost &host(HostId id) const;
    ///@}

    /** Apply a move (bookkeeping only). The move must be consistent. */
    void apply(const Move &move);

    /**
     * Mark a VM unmovable for the rest of this model's lifetime. Planners
     * pin each VM they move so later planning passes in the same
     * management cycle cannot plan a second (un-executable) move for it.
     */
    void pin(VmId id);

    /**
     * Declare anti-affinity groups: VMs sharing a group must land on
     * pairwise distinct hosts (HA replicas, quorum members). fits() then
     * refuses a host already holding a group sibling. A VM may belong to
     * at most one group; unknown ids are ignored (churned-away VMs).
     * Pre-existing violations are tolerated (the planner will not move a
     * VM onto a conflict, but it does not repair history).
     */
    void
    setAntiAffinityGroups(const std::vector<std::vector<VmId>> &groups);

    /** Anti-affinity group of a VM, or -1. */
    int groupOf(VmId id) const;

    /** @name In-place refresh (same membership, new field values) */
    ///@{
    /**
     * Direct access to the planned entities for a holder refreshing the
     * model between management cycles. The id fields and the entry order
     * must not change — only per-entity values (usable, cpuMhz, host,
     * movable, ...). Call rebuildUsage() after editing VM assignments.
     */
    std::vector<PlannedHost> &mutableHosts() { return hosts_; }
    std::vector<PlannedVm> &mutableVms() { return vms_; }

    /**
     * Recompute the per-host usage accumulators from vms_, in the same
     * order as construction (so a refreshed model is bit-identical to a
     * freshly built one).
     */
    void rebuildUsage();
    ///@}

  private:
    std::size_t hostIndex(HostId id) const;
    std::size_t vmIndex(VmId id) const;

    std::vector<PlannedHost> hosts_;
    std::vector<PlannedVm> vms_;
    /** id -> index into hosts_/vms_; -1 = unknown id. */
    std::vector<std::int32_t> hostSlot_;
    std::vector<std::int32_t> vmSlot_;
    std::vector<double> cpuUsed_;
    std::vector<double> memUsed_;

    /** VM id -> anti-affinity group (absent = unconstrained). */
    std::unordered_map<VmId, int> vmGroup_;
    /** Per host index: group -> number of resident members. */
    std::vector<std::unordered_map<int, int>> hostGroupCount_;
};

/**
 * Plan the evacuation of @p victim: pack all of its VMs onto other usable
 * hosts, keeping every destination under @p target_utilization predicted
 * CPU and within memory.
 *
 * On success the model is updated and the move list returned; on failure
 * the model is left untouched and nullopt returned.
 */
std::optional<std::vector<Move>>
planEvacuation(PlacementModel &model, HostId victim,
               double target_utilization, PackingHeuristic heuristic,
               bool rack_affinity = false);

/**
 * Plan load-balancing moves (DRS-style):
 *  1. relieve hosts whose predicted utilization exceeds
 *     @p target_utilization, largest-offender first;
 *  2. then, if max-min utilization spread still exceeds
 *     @p imbalance_threshold, shift one VM at a time from the most to the
 *     least loaded host.
 *
 * The model is updated in place. At most @p max_moves moves are returned.
 */
std::vector<Move>
planRebalance(PlacementModel &model, double target_utilization,
              double imbalance_threshold, int max_moves,
              PackingHeuristic heuristic, bool rack_affinity = false);

} // namespace vpm::mgmt

#endif // VPM_CORE_PLACEMENT_HPP
