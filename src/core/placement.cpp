#include "core/placement.hpp"

#include <algorithm>
#include <limits>

#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"

namespace vpm::mgmt {

const char *
toString(PackingHeuristic heuristic)
{
    switch (heuristic) {
      case PackingHeuristic::FirstFitDecreasing:
        return "first-fit-decreasing";
      case PackingHeuristic::BestFitDecreasing:
        return "best-fit-decreasing";
      case PackingHeuristic::WorstFit:
        return "worst-fit";
    }
    sim::panic("toString: invalid PackingHeuristic %d",
               static_cast<int>(heuristic));
}

namespace {

/**
 * Register @p id -> @p index in a dense slot table, growing it on demand.
 * @return false if the id was already present.
 */
bool
assignSlot(std::vector<std::int32_t> &slots, int id, std::size_t index)
{
    if (id < 0)
        return true; // negative ids panic on lookup, as before
    if (static_cast<std::size_t>(id) >= slots.size())
        slots.resize(static_cast<std::size_t>(id) + 1, -1);
    if (slots[static_cast<std::size_t>(id)] >= 0)
        return false;
    slots[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(index);
    return true;
}

} // namespace

PlacementModel::PlacementModel(std::vector<PlannedHost> hosts,
                               std::vector<PlannedVm> vms)
    : hosts_(std::move(hosts)), vms_(std::move(vms))
{
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
        if (!assignSlot(hostSlot_, hosts_[i].id, i))
            sim::panic("PlacementModel: duplicate host id %d", hosts_[i].id);
        if (hosts_[i].cpuCapacityMhz <= 0.0 ||
            hosts_[i].memoryCapacityMb <= 0.0) {
            sim::panic("PlacementModel: host %d has non-positive capacity",
                       hosts_[i].id);
        }
    }
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        if (!assignSlot(vmSlot_, vms_[i].id, i))
            sim::panic("PlacementModel: duplicate VM id %d", vms_[i].id);
    }
    rebuildUsage();
}

void
PlacementModel::rebuildUsage()
{
    cpuUsed_.assign(hosts_.size(), 0.0);
    memUsed_.assign(hosts_.size(), 0.0);
    for (const PlannedVm &vm_ref : vms_) {
        const std::size_t h = hostIndex(vm_ref.host);
        cpuUsed_[h] += vm_ref.cpuMhz;
        memUsed_[h] += vm_ref.memoryMb;
    }
}

std::size_t
PlacementModel::hostIndex(HostId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= hostSlot_.size() ||
        hostSlot_[static_cast<std::size_t>(id)] < 0)
        sim::panic("PlacementModel: unknown host id %d", id);
    return static_cast<std::size_t>(hostSlot_[static_cast<std::size_t>(id)]);
}

std::size_t
PlacementModel::vmIndex(VmId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= vmSlot_.size() ||
        vmSlot_[static_cast<std::size_t>(id)] < 0)
        sim::panic("PlacementModel: unknown VM id %d", id);
    return static_cast<std::size_t>(vmSlot_[static_cast<std::size_t>(id)]);
}

double
PlacementModel::cpuUsedMhz(HostId host) const
{
    return cpuUsed_[hostIndex(host)];
}

double
PlacementModel::memoryUsedMb(HostId host) const
{
    return memUsed_[hostIndex(host)];
}

double
PlacementModel::cpuUtilization(HostId host) const
{
    const std::size_t h = hostIndex(host);
    return cpuUsed_[h] / hosts_[h].cpuCapacityMhz;
}

std::vector<VmId>
PlacementModel::vmsOn(HostId host) const
{
    std::vector<VmId> result;
    for (const PlannedVm &vm_ref : vms_) {
        if (vm_ref.host == host)
            result.push_back(vm_ref.id);
    }
    return result;
}

bool
PlacementModel::fits(const PlannedVm &vm_ref, HostId host,
                     double cpu_limit_fraction) const
{
    const std::size_t h = hostIndex(host);
    const PlannedHost &host_ref = hosts_[h];
    if (!host_ref.usable)
        return false;

    // Anti-affinity: refuse a host already holding a group sibling.
    if (const int group = groupOf(vm_ref.id); group >= 0) {
        if (!hostGroupCount_.empty()) {
            const auto &counts = hostGroupCount_[h];
            if (const auto it = counts.find(group);
                it != counts.end() && it->second > 0) {
                return false;
            }
        }
    }

    return cpuUsed_[h] + vm_ref.cpuMhz <=
               cpu_limit_fraction * host_ref.cpuCapacityMhz + 1e-9 &&
           memUsed_[h] + vm_ref.memoryMb <=
               host_ref.memoryCapacityMb + 1e-9;
}

void
PlacementModel::setAntiAffinityGroups(
    const std::vector<std::vector<VmId>> &groups)
{
    vmGroup_.clear();
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (const VmId id : groups[g]) {
            if (id < 0 || static_cast<std::size_t>(id) >= vmSlot_.size() ||
                vmSlot_[static_cast<std::size_t>(id)] < 0)
                continue; // VM churned away; constraint is moot
            if (!vmGroup_.emplace(id, static_cast<int>(g)).second)
                sim::panic("PlacementModel: VM %d in two anti-affinity "
                           "groups", id);
        }
    }

    hostGroupCount_.assign(hosts_.size(), {});
    for (const PlannedVm &vm_ref : vms_) {
        const int group = groupOf(vm_ref.id);
        if (group >= 0)
            ++hostGroupCount_[hostIndex(vm_ref.host)][group];
    }
}

int
PlacementModel::groupOf(VmId id) const
{
    if (vmGroup_.empty())
        return -1; // common case: no anti-affinity configured
    const auto it = vmGroup_.find(id);
    return it != vmGroup_.end() ? it->second : -1;
}

const PlannedVm &
PlacementModel::vm(VmId id) const
{
    return vms_[vmIndex(id)];
}

const PlannedHost &
PlacementModel::host(HostId id) const
{
    return hosts_[hostIndex(id)];
}

void
PlacementModel::apply(const Move &move)
{
    PlannedVm &vm_ref = vms_[vmIndex(move.vm)];
    if (vm_ref.host != move.from)
        sim::panic("PlacementModel::apply: VM %d is on host %d, not %d",
                   move.vm, vm_ref.host, move.from);

    const std::size_t from = hostIndex(move.from);
    const std::size_t to = hostIndex(move.to);
    cpuUsed_[from] -= vm_ref.cpuMhz;
    memUsed_[from] -= vm_ref.memoryMb;
    cpuUsed_[to] += vm_ref.cpuMhz;
    memUsed_[to] += vm_ref.memoryMb;
    vm_ref.host = move.to;

    if (const int group = groupOf(move.vm);
        group >= 0 && !hostGroupCount_.empty()) {
        --hostGroupCount_[from][group];
        ++hostGroupCount_[to][group];
    }
}

void
PlacementModel::pin(VmId id)
{
    vms_[vmIndex(id)].movable = false;
}

namespace {

/**
 * Choose a destination for @p vm among usable hosts, excluding
 * @p exclude_a/@p exclude_b, under the CPU limit.
 * @return The chosen host id, or invalidHostId if nothing fits.
 */
HostId
chooseDestinationPass(const PlacementModel &model, const PlannedVm &vm,
                      double cpu_limit, PackingHeuristic heuristic,
                      HostId exclude_a, HostId exclude_b, int only_rack)
{
    HostId best = dc::invalidHostId;
    double best_key = 0.0;

    for (const PlannedHost &host : model.hosts()) {
        if (host.id == exclude_a || host.id == exclude_b || !host.usable)
            continue;
        if (only_rack >= 0 && host.rack != only_rack)
            continue;
        if (!model.fits(vm, host.id, cpu_limit))
            continue;

        const double headroom = cpu_limit * host.cpuCapacityMhz -
                                model.cpuUsedMhz(host.id) - vm.cpuMhz;
        switch (heuristic) {
          case PackingHeuristic::FirstFitDecreasing:
            return host.id; // hosts are scanned in id order
          case PackingHeuristic::BestFitDecreasing:
            if (best == dc::invalidHostId || headroom < best_key) {
                best = host.id;
                best_key = headroom;
            }
            break;
          case PackingHeuristic::WorstFit:
            if (best == dc::invalidHostId || headroom > best_key) {
                best = host.id;
                best_key = headroom;
            }
            break;
        }
    }
    return best;
}

/**
 * Choose a destination; with rack affinity, a same-rack home (relative to
 * the VM's current host) is preferred and other racks are the fallback.
 */
HostId
chooseDestination(const PlacementModel &model, const PlannedVm &vm,
                  double cpu_limit, PackingHeuristic heuristic,
                  HostId exclude_a, HostId exclude_b = dc::invalidHostId,
                  bool rack_affinity = false)
{
    if (rack_affinity && vm.host != dc::invalidHostId) {
        const int home_rack = model.host(vm.host).rack;
        const HostId local = chooseDestinationPass(
            model, vm, cpu_limit, heuristic, exclude_a, exclude_b,
            home_rack);
        if (local != dc::invalidHostId)
            return local;
    }
    return chooseDestinationPass(model, vm, cpu_limit, heuristic,
                                 exclude_a, exclude_b, -1);
}

/** Movable VM ids on @p host sorted by descending predicted CPU. */
std::vector<VmId>
vmsByDescendingCpu(const PlacementModel &model, HostId host)
{
    std::vector<VmId> ids = model.vmsOn(host);
    std::erase_if(ids, [&](VmId id) { return !model.vm(id).movable; });
    std::sort(ids.begin(), ids.end(), [&](VmId a, VmId b) {
        const double ca = model.vm(a).cpuMhz;
        const double cb = model.vm(b).cpuMhz;
        if (ca != cb)
            return ca > cb;
        return a < b; // deterministic tie-break
    });
    return ids;
}

} // namespace

std::optional<std::vector<Move>>
planEvacuation(PlacementModel &model, HostId victim,
               double target_utilization, PackingHeuristic heuristic,
               bool rack_affinity)
{
    PROF_ZONE("placement.evacuate");
    // A pinned VM on the victim makes full evacuation impossible.
    for (VmId vm_id : model.vmsOn(victim)) {
        if (!model.vm(vm_id).movable)
            return std::nullopt;
    }

    // Work on a copy so failure leaves the caller's model untouched. The
    // scratch model is reused across calls so its vectors keep their
    // capacity instead of reallocating every evacuation attempt.
    static thread_local PlacementModel trial;
    trial = model;
    std::vector<Move> moves;

    for (VmId vm_id : vmsByDescendingCpu(trial, victim)) {
        const PlannedVm &vm_ref = trial.vm(vm_id);
        const HostId dest = chooseDestination(
            trial, vm_ref, target_utilization, heuristic, victim,
            dc::invalidHostId, rack_affinity);
        if (dest == dc::invalidHostId)
            return std::nullopt;
        const Move move{vm_id, victim, dest};
        trial.apply(move);
        moves.push_back(move);
    }

    for (const Move &move : moves) {
        model.apply(move);
        model.pin(move.vm); // one planned move per VM per cycle
    }
    return moves;
}

std::vector<Move>
planRebalance(PlacementModel &model, double target_utilization,
              double imbalance_threshold, int max_moves,
              PackingHeuristic heuristic, bool rack_affinity)
{
    PROF_ZONE("placement.plan");
    std::vector<Move> moves;

    // Phase 1: relieve hosts over the target, worst offender first.
    while (static_cast<int>(moves.size()) < max_moves) {
        HostId worst = dc::invalidHostId;
        double worst_util = target_utilization;
        for (const PlannedHost &host : model.hosts()) {
            if (!host.usable)
                continue;
            const double util = model.cpuUtilization(host.id);
            if (util > worst_util + 1e-9) {
                worst = host.id;
                worst_util = util;
            }
        }
        if (worst == dc::invalidHostId)
            break;

        // Move the largest VM that has a home elsewhere.
        bool moved = false;
        for (VmId vm_id : vmsByDescendingCpu(model, worst)) {
            const HostId dest = chooseDestination(
                model, model.vm(vm_id), target_utilization, heuristic,
                worst, dc::invalidHostId, rack_affinity);
            if (dest == dc::invalidHostId)
                continue;
            const Move move{vm_id, worst, dest};
            model.apply(move);
            model.pin(move.vm);
            moves.push_back(move);
            moved = true;
            break;
        }
        if (!moved)
            break; // overload exists but nothing can move
    }

    // Phase 2: narrow the spread between the most and least loaded hosts.
    while (static_cast<int>(moves.size()) < max_moves) {
        HostId hi = dc::invalidHostId, lo = dc::invalidHostId;
        double hi_util = -1.0;
        double lo_util = std::numeric_limits<double>::infinity();
        for (const PlannedHost &host : model.hosts()) {
            if (!host.usable)
                continue;
            const double util = model.cpuUtilization(host.id);
            if (util > hi_util) {
                hi = host.id;
                hi_util = util;
            }
            if (util < lo_util) {
                lo = host.id;
                lo_util = util;
            }
        }
        if (hi == dc::invalidHostId || lo == dc::invalidHostId || hi == lo)
            break;
        if (hi_util - lo_util <= imbalance_threshold)
            break;

        // Move a VM small enough not to invert the imbalance.
        bool moved = false;
        const double gap_mhz = (hi_util - lo_util) *
                               model.host(lo).cpuCapacityMhz;
        for (VmId vm_id : vmsByDescendingCpu(model, hi)) {
            const PlannedVm &vm_ref = model.vm(vm_id);
            if (vm_ref.cpuMhz > gap_mhz * 0.75)
                continue; // too big: would just swap the imbalance
            if (!model.fits(vm_ref, lo, target_utilization))
                continue;
            const Move move{vm_id, hi, lo};
            model.apply(move);
            model.pin(move.vm);
            moves.push_back(move);
            moved = true;
            break;
        }
        if (!moved)
            break;
    }

    return moves;
}

} // namespace vpm::mgmt
