/**
 * @file
 * Demand predictors for the management layer.
 *
 * Every management decision — evacuate a host, wake one — is taken against
 * a forecast of near-future demand, because acting on stale demand with
 * slow power states is precisely the failure mode the paper attacks. Four
 * predictors are provided; the A1 ablation compares them. Aggressive
 * predictors (last-value) maximize savings but get caught by bursts;
 * conservative ones (window-max) protect SLA at some energy cost.
 */

#ifndef VPM_CORE_PREDICTOR_HPP
#define VPM_CORE_PREDICTOR_HPP

#include <cstdint>
#include <deque>
#include <vector>
#include <memory>
#include <string>

namespace vpm::mgmt {

/** Online scalar forecaster: feed one observation per management cycle. */
class DemandPredictor
{
  public:
    virtual ~DemandPredictor() = default;

    /** Record the value observed this cycle. */
    virtual void observe(double value) = 0;

    /** Forecast for the next cycle. Defined after >= 1 observation. */
    virtual double predict() const = 0;

    /** Fresh instance of the same kind and configuration. */
    virtual std::unique_ptr<DemandPredictor> clone() const = 0;

    /**
     * Append the predictor's full mutable state to @p out as raw doubles
     * (scalars, then window/profile contents in order, flags as 0/1).
     * Byte-stable: identical observation histories yield identical
     * appends. Replay checkpoints compare these across a deterministically
     * re-executed run; nothing ever loads them back, so the default (no
     * state) is safe for stateless test doubles.
     */
    virtual void appendState(std::vector<double> &out) const
    {
        (void)out;
    }
};

/** Naive persistence: tomorrow looks exactly like right now. */
class LastValuePredictor final : public DemandPredictor
{
  public:
    void observe(double value) override { last_ = value; }
    double predict() const override { return last_; }
    std::unique_ptr<DemandPredictor> clone() const override;
    void appendState(std::vector<double> &out) const override;

  private:
    double last_ = 0.0;
};

/** Exponentially weighted moving average. */
class EwmaPredictor final : public DemandPredictor
{
  public:
    /** @param alpha Weight of the newest sample, in (0, 1]. */
    explicit EwmaPredictor(double alpha = 0.3);

    void observe(double value) override;
    double predict() const override { return value_; }
    std::unique_ptr<DemandPredictor> clone() const override;
    void appendState(std::vector<double> &out) const override;

  private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

/**
 * Maximum over a sliding window — the conservative choice: capacity is
 * provisioned for the worst recently seen, so bursts within the window
 * never cause a shortfall.
 */
class WindowMaxPredictor final : public DemandPredictor
{
  public:
    /** @param window Number of recent observations retained (>= 1). */
    explicit WindowMaxPredictor(std::size_t window = 6);

    void observe(double value) override;
    double predict() const override;
    std::unique_ptr<DemandPredictor> clone() const override;
    void appendState(std::vector<double> &out) const override;

  private:
    std::size_t window_;
    std::deque<double> values_;
};

/**
 * Least-squares linear extrapolation over a sliding window, clamped to be
 * non-negative. Tracks ramps (diurnal morning rise) better than
 * persistence.
 */
class LinearTrendPredictor final : public DemandPredictor
{
  public:
    /** @param window Number of recent observations fitted (>= 2). */
    explicit LinearTrendPredictor(std::size_t window = 6);

    void observe(double value) override;
    double predict() const override;
    std::unique_ptr<DemandPredictor> clone() const override;
    void appendState(std::vector<double> &out) const override;

  private:
    std::size_t window_;
    std::deque<double> values_;
};

/**
 * Time-of-day profile learner with look-ahead.
 *
 * Enterprise demand repeats daily. This predictor folds observations into
 * a circular per-slot EWMA profile (one slot per management cycle, one
 * revolution per period) and forecasts the *maximum* of the learned
 * profile over the next few slots. Once it has seen a full day it
 * anticipates the morning logon ramp — the proactive-wake behaviour the
 * paper sketches as the natural next step beyond reactive management.
 * Until one full revolution has been observed it behaves like
 * last-value.
 */
class PeriodicProfilePredictor final : public DemandPredictor
{
  public:
    /**
     * @param slots_per_period Cycles per repetition period (e.g. 288 for
     *        a 24 h day at 5 min cycles). Must be >= 2.
     * @param alpha Per-slot EWMA weight in (0, 1].
     * @param lookahead_slots How far ahead the forecast peeks (>= 1).
     */
    explicit PeriodicProfilePredictor(std::size_t slots_per_period,
                                      double alpha = 0.3,
                                      std::size_t lookahead_slots = 3);

    void observe(double value) override;
    double predict() const override;
    std::unique_ptr<DemandPredictor> clone() const override;
    void appendState(std::vector<double> &out) const override;

    /** true once a full period has been observed (profile is trusted). */
    bool profileComplete() const { return count_ >= profile_.size(); }

  private:
    double alpha_;
    std::size_t lookahead_;
    std::vector<double> profile_;
    std::size_t count_ = 0;
    double last_ = 0.0;
};

/** Predictor families selectable by policy configuration. */
enum class PredictorKind
{
    LastValue,
    Ewma,
    WindowMax,
    LinearTrend,
    PeriodicProfile,
};

/** Human-readable name for tables. */
const char *toString(PredictorKind kind);

/** Factory with each family's default parameters. */
std::unique_ptr<DemandPredictor> makePredictor(PredictorKind kind);

/**
 * Forecast-quality bookkeeping around a DemandPredictor.
 *
 * Each cycle the owner reports the demand actually observed together with
 * the forecast just produced for the NEXT cycle; the tracker compares the
 * previous cycle's forecast against the new actual, journals the pair as a
 * telemetry Forecast event, and keeps running error statistics. This is
 * how "the predictor said X, reality said Y" becomes visible in traces
 * without every predictor knowing about telemetry.
 */
class ForecastTracker
{
  public:
    /** @param predictor_name Label journaled with every pair. */
    explicit ForecastTracker(std::string predictor_name);

    /**
     * Report this cycle's observed demand and the forecast for the next
     * cycle. The first call only seeds (there is no prior forecast yet).
     */
    void observe(std::int64_t t_us, double actual, double next_forecast);

    /** Forecast/actual pairs scored so far. */
    std::uint64_t samples() const { return samples_; }

    /** Mean |forecast - actual|; 0 before any pair completes. */
    double meanAbsoluteError() const;

    /** Mean (forecast - actual); positive = over-provisioning bias. */
    double meanError() const;

  private:
    std::string name_;
    double pendingForecast_ = 0.0;
    bool hasPending_ = false;
    std::uint64_t samples_ = 0;
    double absErrorSum_ = 0.0;
    double errorSum_ = 0.0;
};

} // namespace vpm::mgmt

#endif // VPM_CORE_PREDICTOR_HPP
