/**
 * @file
 * Descriptors for server power states and whole-host power specifications.
 *
 * This is the substitution for the paper's real hardware: every decision the
 * management layer makes depends only on (power draw per state, transition
 * latency, transition energy), and those are exactly the quantities captured
 * here. Default parameter sets calibrated to the magnitudes the paper
 * reports for 2013-era enterprise blades live in server_models.hpp.
 */

#ifndef VPM_POWER_POWER_STATE_HPP
#define VPM_POWER_POWER_STATE_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "power/power_curve.hpp"
#include "simcore/sim_time.hpp"

namespace vpm::power {

/**
 * A sleep (low-power) state a host can be put into, ACPI-style.
 *
 * Entry and exit are modelled as fixed-latency phases during which the host
 * is unavailable and draws a fixed average power. This matches how the paper
 * characterizes its prototype: a suspend ramp, a flat sleeping floor, and a
 * resume ramp.
 */
struct SleepStateSpec
{
    /** Short name, e.g. "S3" or "S5". Unique within a HostPowerSpec. */
    std::string name;

    /** Power draw while asleep, in watts (e.g. ~12 W for suspend-to-RAM). */
    double sleepPowerWatts = 0.0;

    /** Time to enter the state; the host is unavailable throughout. */
    sim::SimTime entryLatency;

    /** Time to exit the state (resume/boot); unavailable throughout. */
    sim::SimTime exitLatency;

    /** Average power draw during entry, in watts. */
    double entryPowerWatts = 0.0;

    /** Average power draw during exit, in watts. */
    double exitPowerWatts = 0.0;

    /** Total energy consumed by one entry transition, in joules. */
    double
    entryEnergyJoules() const
    {
        return entryPowerWatts * entryLatency.toSeconds();
    }

    /** Total energy consumed by one exit transition, in joules. */
    double
    exitEnergyJoules() const
    {
        return exitPowerWatts * exitLatency.toSeconds();
    }

    /** Round-trip (enter + exit) transition time. */
    sim::SimTime
    roundTripLatency() const
    {
        return entryLatency + exitLatency;
    }

    /** Round-trip transition energy, in joules. */
    double
    roundTripEnergyJoules() const
    {
        return entryEnergyJoules() + exitEnergyJoules();
    }
};

/**
 * Full power specification of a host model: the active-power curve plus the
 * catalog of sleep states the platform supports.
 */
class HostPowerSpec
{
  public:
    /**
     * @param model Human-readable model name (shows up in reports).
     * @param curve Active (S0) utilization-to-power curve; must be non-null.
     * @param sleep_states Supported sleep states; names must be unique.
     */
    HostPowerSpec(std::string model, std::shared_ptr<const PowerCurve> curve,
                  std::vector<SleepStateSpec> sleep_states);

    const std::string &model() const { return model_; }

    /** Active power at the given utilization in [0, 1], in watts. */
    double
    activePowerWatts(double utilization) const
    {
        return curve_->powerAt(utilization);
    }

    /** Active power at zero utilization (S0 idle floor), in watts. */
    double idlePowerWatts() const { return curve_->powerAt(0.0); }

    /** Active power at full utilization, in watts. */
    double peakPowerWatts() const { return curve_->powerAt(1.0); }

    /** The underlying curve (for plotting / characterization benches). */
    const PowerCurve &curve() const { return *curve_; }

    /** All supported sleep states, in the order given at construction. */
    const std::vector<SleepStateSpec> &sleepStates() const { return states_; }

    /**
     * Look up a sleep state by name.
     * @return nullptr if the platform does not support the state.
     */
    const SleepStateSpec *findSleepState(const std::string &name) const;

    /**
     * The deepest state (lowest sleep power) whose exit latency does not
     * exceed the given bound.
     * @return nullptr if no state qualifies.
     */
    const SleepStateSpec *
    deepestStateWithin(sim::SimTime max_exit_latency) const;

  private:
    std::string model_;
    std::shared_ptr<const PowerCurve> curve_;
    std::vector<SleepStateSpec> states_;
};

} // namespace vpm::power

#endif // VPM_POWER_POWER_STATE_HPP
