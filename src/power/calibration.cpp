#include "power/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hpp"

namespace vpm::power {

namespace {

double
clamp01(double u)
{
    return std::clamp(u, 0.0, 1.0);
}

} // namespace

LinearFit
fitLinearPowerCurve(const std::vector<PowerSamplePoint> &samples)
{
    if (samples.size() < 2)
        sim::fatal("fitLinearPowerCurve: need >= 2 samples, got %zu",
                   samples.size());

    const double n = static_cast<double>(samples.size());
    double sum_x = 0.0, sum_y = 0.0, sum_xy = 0.0, sum_xx = 0.0;
    for (const auto &[util, watts] : samples) {
        const double x = clamp01(util);
        sum_x += x;
        sum_y += watts;
        sum_xy += x * watts;
        sum_xx += x * x;
    }
    const double denom = n * sum_xx - sum_x * sum_x;
    if (std::abs(denom) < 1e-12)
        sim::fatal("fitLinearPowerCurve: samples span a single "
                   "utilization; cannot identify a slope");

    const double slope = (n * sum_xy - sum_x * sum_y) / denom;
    const double intercept = (sum_y - slope * sum_x) / n;

    LinearFit fit;
    fit.idleWatts = std::max(intercept, 0.0);
    fit.peakWatts = std::max(intercept + slope, fit.idleWatts);

    double sq_err = 0.0;
    for (const auto &[util, watts] : samples) {
        const double predicted = intercept + slope * clamp01(util);
        sq_err += (watts - predicted) * (watts - predicted);
    }
    fit.rmseWatts = std::sqrt(sq_err / n);
    return fit;
}

std::shared_ptr<const PowerCurve>
makeFittedLinearCurve(const std::vector<PowerSamplePoint> &samples)
{
    const LinearFit fit = fitLinearPowerCurve(samples);
    return std::make_shared<LinearPowerCurve>(fit.idleWatts, fit.peakWatts);
}

std::vector<double>
isotonicRegression(std::vector<double> values)
{
    // Pool adjacent violators with weights. Each block holds the mean of
    // a maximal run of pooled points.
    struct Block
    {
        double mean;
        double weight;
    };
    std::vector<Block> blocks;
    blocks.reserve(values.size());

    for (const double value : values) {
        blocks.push_back({value, 1.0});
        while (blocks.size() >= 2 &&
               blocks[blocks.size() - 2].mean >
                   blocks[blocks.size() - 1].mean) {
            const Block back = blocks.back();
            blocks.pop_back();
            Block &prev = blocks.back();
            const double w = prev.weight + back.weight;
            prev.mean =
                (prev.mean * prev.weight + back.mean * back.weight) / w;
            prev.weight = w;
        }
    }

    std::vector<double> result;
    result.reserve(values.size());
    for (const Block &block : blocks) {
        for (int i = 0; i < static_cast<int>(block.weight + 0.5); ++i)
            result.push_back(block.mean);
    }
    return result;
}

std::shared_ptr<const PowerCurve>
makeFittedPiecewiseCurve(const std::vector<PowerSamplePoint> &samples,
                         std::size_t breakpoints)
{
    if (samples.empty())
        sim::fatal("makeFittedPiecewiseCurve: no samples");
    if (breakpoints < 2)
        sim::fatal("makeFittedPiecewiseCurve: need >= 2 breakpoints");

    // Bucket averaging: breakpoint i covers utilization near i/(n-1).
    std::vector<double> sums(breakpoints, 0.0);
    std::vector<double> counts(breakpoints, 0.0);
    for (const auto &[util, watts] : samples) {
        const double pos =
            clamp01(util) * static_cast<double>(breakpoints - 1);
        const auto bucket = static_cast<std::size_t>(
            std::min(std::floor(pos + 0.5),
                     static_cast<double>(breakpoints - 1)));
        sums[bucket] += watts;
        counts[bucket] += 1.0;
    }

    std::vector<double> watts(breakpoints, 0.0);
    for (std::size_t i = 0; i < breakpoints; ++i) {
        if (counts[i] > 0.0)
            watts[i] = sums[i] / counts[i];
    }

    // Fill empty buckets by linear interpolation between the nearest
    // populated neighbours (extrapolating flat at the edges).
    std::ptrdiff_t prev = -1;
    for (std::size_t i = 0; i < breakpoints; ++i) {
        if (counts[i] > 0.0) {
            if (prev < 0) {
                for (std::size_t j = 0; j < i; ++j)
                    watts[j] = watts[i];
            } else if (static_cast<std::size_t>(prev) + 1 < i) {
                const auto gap =
                    static_cast<double>(i - static_cast<std::size_t>(prev));
                for (std::size_t j = static_cast<std::size_t>(prev) + 1;
                     j < i; ++j) {
                    const double frac =
                        static_cast<double>(j -
                                            static_cast<std::size_t>(prev)) /
                        gap;
                    watts[j] =
                        watts[static_cast<std::size_t>(prev)] +
                        frac * (watts[i] -
                                watts[static_cast<std::size_t>(prev)]);
                }
            }
            prev = static_cast<std::ptrdiff_t>(i);
        }
    }
    if (prev < 0) {
        sim::panic("makeFittedPiecewiseCurve: no populated bucket");
    } else {
        for (std::size_t j = static_cast<std::size_t>(prev) + 1;
             j < breakpoints; ++j) {
            watts[j] = watts[static_cast<std::size_t>(prev)];
        }
    }

    // A noisy meter can produce locally decreasing averages; project onto
    // the monotone cone so the curve constructor accepts the result.
    watts = isotonicRegression(std::move(watts));
    for (double &w : watts)
        w = std::max(w, 0.0);
    return std::make_shared<PiecewisePowerCurve>(std::move(watts));
}

} // namespace vpm::power
