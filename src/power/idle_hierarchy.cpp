#include "power/idle_hierarchy.hpp"

#include <algorithm>
#include <utility>

#include "simcore/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::power {

const std::string IdleHierarchy::kC0 = "C0";

const char *
toString(IdleLevel level)
{
    switch (level) {
      case IdleLevel::Core:
        return "core";
      case IdleLevel::Package:
        return "pkg";
    }
    return "unknown";
}

void
IdleHierarchySpec::validate() const
{
    if (coreCount <= 0)
        sim::fatal("IdleHierarchySpec: core count must be positive");
    if (corePowerC0Watts < 0.0 || uncorePowerC0Watts < 0.0)
        sim::fatal("IdleHierarchySpec: C0 powers must be non-negative");
    if (coreStates.empty() && packageStates.empty())
        sim::fatal("IdleHierarchySpec: no idle states at any level");

    double prev = corePowerC0Watts;
    for (const IdleStateSpec &state : coreStates) {
        if (state.name.empty())
            sim::fatal("IdleHierarchySpec: unnamed core state");
        if (state.powerWatts >= prev)
            sim::fatal("IdleHierarchySpec: core state '%s' (%g W) does not "
                       "descend below its parent (%g W)",
                       state.name.c_str(), state.powerWatts, prev);
        if (state.entryEnergyJoules < 0.0 || state.exitEnergyJoules < 0.0)
            sim::fatal("IdleHierarchySpec: core state '%s' has negative "
                       "transition energy", state.name.c_str());
        prev = state.powerWatts;
    }

    prev = uncorePowerC0Watts;
    int prev_gate = 0;
    for (const IdleStateSpec &state : packageStates) {
        if (state.name.empty())
            sim::fatal("IdleHierarchySpec: unnamed package state");
        if (state.powerWatts >= prev)
            sim::fatal("IdleHierarchySpec: package state '%s' (%g W) does "
                       "not descend below its parent (%g W)",
                       state.name.c_str(), state.powerWatts, prev);
        if (state.requiredChildDepth < 0 ||
            state.requiredChildDepth >
                static_cast<int>(coreStates.size())) {
            sim::fatal("IdleHierarchySpec: package state '%s' requires "
                       "child depth %d but only %zu core states exist",
                       state.name.c_str(), state.requiredChildDepth,
                       coreStates.size());
        }
        if (state.requiredChildDepth < prev_gate)
            sim::fatal("IdleHierarchySpec: package state '%s' relaxes the "
                       "child-depth gate (%d < %d) — deeper states must "
                       "require at least as deep children",
                       state.name.c_str(), state.requiredChildDepth,
                       prev_gate);
        prev = state.powerWatts;
        prev_gate = state.requiredChildDepth;
    }
}

double
IdleHierarchySpec::maxSavingsWatts() const
{
    double savings = 0.0;
    if (!coreStates.empty()) {
        savings += static_cast<double>(coreCount) *
                   (corePowerC0Watts - coreStates.back().powerWatts);
    }
    if (!packageStates.empty())
        savings += uncorePowerC0Watts - packageStates.back().powerWatts;
    return savings;
}

IdleHierarchy::IdleHierarchy(sim::Simulator &simulator,
                             IdleHierarchySpec spec)
    : simulator_(simulator), spec_(std::move(spec))
{
    spec_.validate();
    coreResidencyS_.assign(spec_.coreStates.size() + 1, 0.0);
    packageResidencyS_.assign(spec_.packageStates.size() + 1, 0.0);
    lastAccrual_ = simulator_.now();
    coreSpanStart_ = lastAccrual_;
    packageSpanStart_ = lastAccrual_;
}

const std::string &
IdleHierarchy::coreStateName(int depth) const
{
    return depth > 0 ? spec_.coreStates[static_cast<std::size_t>(depth - 1)]
                           .name
                     : kC0;
}

const std::string &
IdleHierarchy::packageStateName(int depth) const
{
    return depth > 0
               ? spec_.packageStates[static_cast<std::size_t>(depth - 1)]
                     .name
               : kC0;
}

void
IdleHierarchy::accrueResidency(sim::SimTime now)
{
    const double dt = (now - lastAccrual_).toSeconds();
    lastAccrual_ = now;
    if (!active_ || dt <= 0.0)
        return;
    const int idle = spec_.coreCount - busyCores_;
    coreResidencyS_[0] += static_cast<double>(busyCores_) * dt;
    coreResidencyS_[static_cast<std::size_t>(coreDepth_)] +=
        static_cast<double>(idle) * dt;
    packageResidencyS_[static_cast<std::size_t>(packageDepth_)] += dt;
}

int
IdleHierarchy::gatedPackageDepth(int wanted, int busy, int core_depth) const
{
    // A package state may hold only while EVERY core is idle and resident
    // at least as deep as the state's gate — the hierarchy's descent rule.
    if (busy > 0)
        return 0;
    int allowed = 0;
    const int limit = std::min(
        wanted, static_cast<int>(spec_.packageStates.size()));
    for (int d = 1; d <= limit; ++d) {
        if (core_depth <
            spec_.packageStates[static_cast<std::size_t>(d - 1)]
                .requiredChildDepth)
            break;
        allowed = d;
    }
    return allowed;
}

void
IdleHierarchy::refreshDerived()
{
    if (!active_) {
        savingsWatts_ = 0.0;
        wakeLatency_ = sim::SimTime();
        return;
    }
    const int idle = spec_.coreCount - busyCores_;
    double savings = 0.0;
    sim::SimTime wake;
    if (coreDepth_ > 0 && idle > 0) {
        const IdleStateSpec &state =
            spec_.coreStates[static_cast<std::size_t>(coreDepth_ - 1)];
        savings += static_cast<double>(idle) *
                   (spec_.corePowerC0Watts - state.powerWatts);
        wake = std::max(wake, state.exitLatency);
    }
    if (packageDepth_ > 0) {
        const IdleStateSpec &state =
            spec_.packageStates[static_cast<std::size_t>(packageDepth_ - 1)];
        savings += spec_.uncorePowerC0Watts - state.powerWatts;
        // Levels repower in parallel: resume costs the MAX exit latency
        // along the path, not the sum.
        wake = std::max(wake, state.exitLatency);
    }
    savingsWatts_ = savings;
    wakeLatency_ = wake;
}

void
IdleHierarchy::applyTarget(int busy, int core_depth, int pkg_depth,
                           bool charge_energy)
{
    busy = std::clamp(busy, 0, spec_.coreCount);
    core_depth = std::clamp(core_depth, 0,
                            static_cast<int>(spec_.coreStates.size()));
    pkg_depth = gatedPackageDepth(pkg_depth, busy, core_depth);

    const sim::SimTime now = simulator_.now();
    accrueResidency(now);

    telemetry::EventJournal &journal = telemetry::global().journal();
    const bool journal_on = journal.enabled() && track_ >= 0;

    const int idle_before = spec_.coreCount - busyCores_;
    const int idle_after = spec_.coreCount - busy;
    const int d0 = coreDepth_;
    const int d1 = core_depth;

    // Group moves at the core level: the idle block re-targets, cores
    // crossing the busy/idle boundary enter or leave it. At most two
    // distinct (from, to) groups change per command.
    struct Move
    {
        int from, to, count;
    };
    Move moves[2];
    int move_count = 0;
    if (d0 == d1) {
        if (d0 > 0 && idle_after != idle_before) {
            if (idle_after > idle_before)
                moves[move_count++] = {0, d0, idle_after - idle_before};
            else
                moves[move_count++] = {d0, 0, idle_before - idle_after};
        }
    } else {
        const int stay = std::min(idle_before, idle_after);
        if (stay > 0)
            moves[move_count++] = {d0, d1, stay};
        if (idle_after > idle_before)
            moves[move_count++] = {0, d1, idle_after - idle_before};
        else if (idle_before > idle_after)
            moves[move_count++] = {d0, 0, idle_before - idle_after};
    }

    double joules = 0.0;
    bool core_changed = false;
    const double core_span = (now - coreSpanStart_).toSeconds();
    for (int m = 0; m < move_count; ++m) {
        const Move &move = moves[m];
        if (move.from == move.to || move.count <= 0)
            continue;
        core_changed = true;
        double move_joules = 0.0;
        if (charge_energy) {
            if (move.from > 0)
                move_joules += spec_.coreStates[static_cast<std::size_t>(
                                                    move.from - 1)]
                                   .exitEnergyJoules;
            if (move.to > 0)
                move_joules += spec_.coreStates[static_cast<std::size_t>(
                                                    move.to - 1)]
                                   .entryEnergyJoules;
            move_joules *= static_cast<double>(move.count);
            joules += move_joules;
        }
        ++transitions_;
        if (journal_on) {
            journal.idleTransition(now.micros(), track_,
                                   toString(IdleLevel::Core),
                                   coreStateName(move.from),
                                   coreStateName(move.to), move.count,
                                   core_span, move_joules);
        }
    }
    if (core_changed)
        coreSpanStart_ = now;

    bool pkg_changed = false;
    if (pkg_depth != packageDepth_) {
        pkg_changed = true;
        double pkg_joules = 0.0;
        if (charge_energy) {
            if (packageDepth_ > 0)
                pkg_joules +=
                    spec_.packageStates[static_cast<std::size_t>(
                                            packageDepth_ - 1)]
                        .exitEnergyJoules;
            if (pkg_depth > 0)
                pkg_joules +=
                    spec_.packageStates[static_cast<std::size_t>(
                                            pkg_depth - 1)]
                        .entryEnergyJoules;
            joules += pkg_joules;
        }
        ++transitions_;
        if (journal_on) {
            journal.idleTransition(now.micros(), track_,
                                   toString(IdleLevel::Package),
                                   packageStateName(packageDepth_),
                                   packageStateName(pkg_depth), 1,
                                   (now - packageSpanStart_).toSeconds(),
                                   pkg_joules);
        }
        packageSpanStart_ = now;
    }

    busyCores_ = busy;
    coreDepth_ = d1;
    packageDepth_ = pkg_depth;
    refreshDerived();

    if ((core_changed || pkg_changed)) {
        transitionJoules_ += joules;
        if (onTransition_)
            onTransition_(joules);
    }
}

void
IdleHierarchy::setBusyCores(int busy)
{
    if (!active_)
        return;
    applyTarget(busy, coreDepth_, packageDepth_, true);
}

void
IdleHierarchy::requestDepth(int core_depth, int pkg_depth)
{
    if (!active_)
        return;
    applyTarget(busyCores_, core_depth, pkg_depth, true);
}

void
IdleHierarchy::descendFully()
{
    if (!active_)
        return;
    // Caller asserts the host is drained: the policy's busy count is a
    // stale demand estimate at this point, so override it — every core is
    // genuinely idle and the whole tree may bottom out.
    applyTarget(0, static_cast<int>(spec_.coreStates.size()),
                static_cast<int>(spec_.packageStates.size()), true);
}

void
IdleHierarchy::wakeAll()
{
    if (!active_)
        return;
    applyTarget(busyCores_, 0, 0, true);
}

void
IdleHierarchy::pause()
{
    if (!active_)
        return;
    // Forced exits ride the system transition the power FSM charges, so
    // no transition energy is billed here — only the residency closes.
    applyTarget(0, 0, 0, false);
    active_ = false;
    refreshDerived();
}

void
IdleHierarchy::resume()
{
    if (active_)
        return;
    const sim::SimTime now = simulator_.now();
    active_ = true;
    lastAccrual_ = now;
    coreSpanStart_ = now;
    packageSpanStart_ = now;
    refreshDerived();
}

bool
IdleHierarchy::wouldChange(int busy, int core_depth, int pkg_depth) const
{
    if (!active_)
        return false;
    busy = std::clamp(busy, 0, spec_.coreCount);
    core_depth = std::clamp(core_depth, 0,
                            static_cast<int>(spec_.coreStates.size()));
    const int pkg = gatedPackageDepth(pkg_depth, busy, core_depth);
    return busy != busyCores_ || core_depth != coreDepth_ ||
           pkg != packageDepth_;
}

bool
IdleHierarchy::fullyDescended() const
{
    if (!active_ || busyCores_ > 0)
        return false;
    if (coreDepth_ != static_cast<int>(spec_.coreStates.size()))
        return false;
    return packageDepth_ == static_cast<int>(spec_.packageStates.size());
}

double
IdleHierarchy::coreResidencySeconds(int depth) const
{
    if (depth < 0 || depth >= static_cast<int>(coreResidencyS_.size()))
        return 0.0;
    return coreResidencyS_[static_cast<std::size_t>(depth)];
}

double
IdleHierarchy::packageResidencySeconds(int depth) const
{
    if (depth < 0 || depth >= static_cast<int>(packageResidencyS_.size()))
        return 0.0;
    return packageResidencyS_[static_cast<std::size_t>(depth)];
}

void
IdleHierarchy::finish(sim::SimTime t)
{
    accrueResidency(t);
}

void
IdleHierarchy::setTransitionCallback(std::function<void(double)> cb)
{
    onTransition_ = std::move(cb);
}

} // namespace vpm::power
