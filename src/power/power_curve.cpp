#include "power/power_curve.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "simcore/logging.hpp"

namespace vpm::power {

namespace {

double
clamp01(double u)
{
    return std::clamp(u, 0.0, 1.0);
}

} // namespace

LinearPowerCurve::LinearPowerCurve(double idle_watts, double peak_watts)
    : idleWatts_(idle_watts), peakWatts_(peak_watts)
{
    if (idle_watts < 0.0)
        sim::fatal("LinearPowerCurve: idle power %g W is negative",
                   idle_watts);
    if (peak_watts < idle_watts)
        sim::fatal("LinearPowerCurve: peak power %g W below idle power %g W",
                   peak_watts, idle_watts);
}

double
LinearPowerCurve::powerAt(double utilization) const
{
    const double u = clamp01(utilization);
    return idleWatts_ + (peakWatts_ - idleWatts_) * u;
}

PiecewisePowerCurve::PiecewisePowerCurve(
    std::vector<double> watts_at_breakpoints)
    : watts_(std::move(watts_at_breakpoints))
{
    if (watts_.size() < 2)
        sim::fatal("PiecewisePowerCurve: need at least 2 breakpoints, got %zu",
                   watts_.size());
    for (std::size_t i = 0; i < watts_.size(); ++i) {
        if (watts_[i] < 0.0)
            sim::fatal("PiecewisePowerCurve: breakpoint %zu is negative (%g)",
                       i, watts_[i]);
        if (i > 0 && watts_[i] < watts_[i - 1])
            sim::fatal("PiecewisePowerCurve: breakpoints must be "
                       "non-decreasing; %g W at %zu < %g W at %zu",
                       watts_[i], i, watts_[i - 1], i - 1);
    }
}

double
PiecewisePowerCurve::powerAt(double utilization) const
{
    const double u = clamp01(utilization);
    const double pos = u * static_cast<double>(watts_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    if (lo >= watts_.size() - 1)
        return watts_.back();
    const double frac = pos - static_cast<double>(lo);
    return watts_[lo] + (watts_[lo + 1] - watts_[lo]) * frac;
}

} // namespace vpm::power
