#include "power/server_models.hpp"

#include <memory>
#include <vector>

namespace vpm::power {

namespace {

using sim::SimTime;

/** SPECpower-style 11-point curve: 155 W idle rising to 255 W peak. */
std::shared_ptr<const PowerCurve>
bladeCurve()
{
    return std::make_shared<PiecewisePowerCurve>(std::vector<double>{
        155.0, 170.0, 182.0, 192.0, 201.0, 210.0,
        219.0, 228.0, 237.0, 246.0, 255.0});
}

SleepStateSpec
s3State()
{
    SleepStateSpec s3;
    s3.name = "S3";
    s3.sleepPowerWatts = 12.0;
    s3.entryLatency = SimTime::seconds(7.0);
    s3.exitLatency = SimTime::seconds(15.0);
    s3.entryPowerWatts = 170.0; // flushing and quiescing near idle draw
    s3.exitPowerWatts = 200.0;  // devices repowering
    return s3;
}

SleepStateSpec
s5State()
{
    SleepStateSpec s5;
    s5.name = "S5";
    s5.sleepPowerWatts = 6.0; // service processor only
    s5.entryLatency = SimTime::seconds(45.0);
    s5.exitLatency = SimTime::seconds(180.0); // POST + OS boot + rejoin
    s5.entryPowerWatts = 150.0;
    s5.exitPowerWatts = 210.0;
    return s5;
}

} // namespace

HostPowerSpec
enterpriseBlade2013()
{
    return HostPowerSpec("enterprise-blade-2013", bladeCurve(),
                         {s3State(), s5State()});
}

HostPowerSpec
enterpriseBlade2013S5Only()
{
    return HostPowerSpec("enterprise-blade-2013-s5only", bladeCurve(),
                         {s5State()});
}

HostPowerSpec
legacyServer2009()
{
    const auto curve = std::make_shared<PiecewisePowerCurve>(
        std::vector<double>{230.0, 246.0, 258.0, 268.0, 277.0, 286.0,
                            294.0, 301.0, 308.0, 314.0, 320.0});

    SleepStateSpec s3;
    s3.name = "S3";
    s3.sleepPowerWatts = 18.0;
    s3.entryLatency = SimTime::seconds(12.0);
    s3.exitLatency = SimTime::seconds(25.0);
    s3.entryPowerWatts = 245.0;
    s3.exitPowerWatts = 280.0;

    SleepStateSpec s5;
    s5.name = "S5";
    s5.sleepPowerWatts = 9.0;
    s5.entryLatency = SimTime::seconds(60.0);
    s5.exitLatency = SimTime::seconds(240.0);
    s5.entryPowerWatts = 225.0;
    s5.exitPowerWatts = 290.0;

    return HostPowerSpec("legacy-server-2009", curve, {s3, s5});
}

HostPowerSpec
energyProportionalIdeal()
{
    return HostPowerSpec("energy-proportional-ideal",
                         std::make_shared<LinearPowerCurve>(0.0, 255.0), {});
}

IdleHierarchySpec
modernIdleHierarchy()
{
    IdleHierarchySpec spec;
    spec.coreCount = 16;
    spec.corePowerC0Watts = 5.0;   // active-idle per core
    spec.uncorePowerC0Watts = 75.0; // caches, fabric, memory PHY, NIC
    // 16 * 5 + 75 = 155 W: exactly the blade curve's idle point, so an
    // all-awake hierarchy saves nothing.

    IdleStateSpec c1;
    c1.name = "C1";
    c1.powerWatts = 2.5; // clock-gated halt
    c1.entryLatency = SimTime::micros(1);
    c1.exitLatency = SimTime::micros(2);
    c1.entryEnergyJoules = 5e-6;
    c1.exitEnergyJoules = 1e-5;

    IdleStateSpec c6;
    c6.name = "C6";
    c6.powerWatts = 0.5; // power-gated, state saved to SRAM
    c6.entryLatency = SimTime::micros(50);
    c6.exitLatency = SimTime::micros(133);
    c6.entryEnergyJoules = 2e-4;
    c6.exitEnergyJoules = 5e-4;

    IdleStateSpec pc6;
    pc6.name = "PC6";
    pc6.powerWatts = 25.0; // uncore retention; memory in self-refresh
    pc6.entryLatency = SimTime::micros(150);
    pc6.exitLatency = SimTime::micros(400);
    pc6.entryEnergyJoules = 0.02;
    pc6.exitEnergyJoules = 0.05;
    pc6.requiredChildDepth = 2; // every core must reach C6 first

    spec.coreStates = {c1, c6};
    spec.packageStates = {pc6};
    return spec;
}

HostPowerSpec
bladeWithSyntheticState(sim::SimTime exit_latency, double sleep_watts)
{
    SleepStateSpec synth;
    synth.name = "SYNTH";
    synth.sleepPowerWatts = sleep_watts;
    // Entry cost scales with exit cost but saturates: even slow states
    // usually enter faster than they exit (suspend < resume, shutdown < boot).
    synth.entryLatency = exit_latency * 0.35;
    synth.exitLatency = exit_latency;
    synth.entryPowerWatts = 165.0;
    synth.exitPowerWatts = 205.0;
    return HostPowerSpec("blade-synthetic-state", bladeCurve(), {synth});
}

} // namespace vpm::power
