/**
 * @file
 * Break-even analysis for sleep-state selection.
 *
 * This is the quantitative heart of the paper's feasibility argument: a
 * sleep state only saves energy if the idle interval is long enough to
 * amortize its transition energy, and it only preserves agility if its exit
 * latency is short relative to how fast demand can return. The functions
 * here answer "for an idle interval of length T, which state wins, and by
 * how much?" — both for the characterization benches (F2/F3) and for the
 * online policy inside the power manager (A3 ablation).
 */

#ifndef VPM_POWER_BREAKEVEN_HPP
#define VPM_POWER_BREAKEVEN_HPP

#include <optional>

#include "power/power_state.hpp"

namespace vpm::power {

/**
 * Energy consumed by a host that stays in S0-idle for @p idle_seconds.
 * @return Energy in joules.
 */
double idleEnergyJoules(const HostPowerSpec &spec, double idle_seconds);

/**
 * Energy consumed by a host that spends an idle interval of
 * @p idle_seconds in the given sleep state, paying the entry transition at
 * the start and the exit transition at the end (both inside the interval).
 *
 * @return Energy in joules, or nullopt if the interval is shorter than the
 *         round-trip transition time (the state cannot even be cycled).
 */
std::optional<double> sleepEnergyJoules(const SleepStateSpec &state,
                                        double idle_seconds);

/**
 * The shortest idle interval for which sleeping in @p state consumes no
 * more energy than idling, accounting for transition energy and the
 * round-trip feasibility floor.
 *
 * @return Break-even interval in seconds, or nullopt if the state can never
 *         win (its sleep power is not below the idle power).
 */
std::optional<double> breakEvenSeconds(const HostPowerSpec &spec,
                                       const SleepStateSpec &state);

/**
 * Which action minimizes energy over an idle interval of @p idle_seconds?
 *
 * @return The winning sleep state, or nullptr if staying in S0-idle is the
 *         cheapest (interval too short for every state).
 */
const SleepStateSpec *bestStateForInterval(const HostPowerSpec &spec,
                                           double idle_seconds);

/** Outcome of cheapestSleepChoice: the winner and its interval energy. */
struct SleepChoice
{
    /** Winning state, or nullptr when S0-idle is cheapest. */
    const SleepStateSpec *state = nullptr;

    /** Energy of the chosen action over the whole interval, joules
     *  (the idle energy when state is nullptr). */
    double energyJoules = 0.0;
};

/**
 * The cheapest way to spend an idle interval of @p idle_seconds, with its
 * energy. Tie-breaking is defined: when two choices cost equal energy, the
 * SHALLOWEST wins — S0-idle beats any state that merely matches it, and
 * among states the earlier-listed one (spec order is shallowest-first)
 * keeps the win. Rationale: at equal energy the shallower state has the
 * smaller exit latency, so agility is the free tie-break dividend.
 */
SleepChoice cheapestSleepChoice(const HostPowerSpec &spec,
                                double idle_seconds);

/**
 * Break-even interval for a generic pair of draws — the hierarchy levels'
 * version of breakEvenSeconds, free of SleepStateSpec: the shortest
 * interval for which dropping from @p baseline_watts to @p state_watts
 * repays @p round_trip_energy_j, floored at @p round_trip_latency_s.
 *
 * @return Break-even seconds, or nullopt if @p state_watts does not
 *         undercut @p baseline_watts.
 */
std::optional<double> breakEvenSecondsFor(double baseline_watts,
                                          double state_watts,
                                          double round_trip_energy_j,
                                          double round_trip_latency_s);

/**
 * Net energy saved (joules, may be negative) by sleeping in @p state for an
 * idle interval of @p idle_seconds versus staying idle. Returns the most
 * negative representable penalty (the full round-trip energy minus idle
 * energy) when the interval is infeasibly short — in that case the host
 * spends the whole interval transitioning.
 */
double sleepSavingsJoules(const HostPowerSpec &spec,
                          const SleepStateSpec &state, double idle_seconds);

} // namespace vpm::power

#endif // VPM_POWER_BREAKEVEN_HPP
