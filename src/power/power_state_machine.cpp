#include "power/power_state_machine.hpp"

#include <utility>

#include "simcore/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::power {

const char *
toString(PowerPhase phase)
{
    switch (phase) {
      case PowerPhase::On:
        return "On";
      case PowerPhase::Entering:
        return "Entering";
      case PowerPhase::Asleep:
        return "Asleep";
      case PowerPhase::Exiting:
        return "Exiting";
    }
    sim::panic("toString: invalid PowerPhase %d", static_cast<int>(phase));
}

PowerStateMachine::PowerStateMachine(sim::Simulator &simulator,
                                     const HostPowerSpec &spec)
    : simulator_(simulator), spec_(spec),
      phaseEnteredAt_(simulator.now())
{
}

sim::SimTime
PowerStateMachine::timeToAvailable() const
{
    switch (phase_) {
      case PowerPhase::On:
        return sim::SimTime();
      case PowerPhase::Exiting:
        return transitionEnd_ - simulator_.now();
      case PowerPhase::Asleep:
        return state_->exitLatency;
      case PowerPhase::Entering:
        return (transitionEnd_ - simulator_.now()) + state_->exitLatency;
    }
    sim::panic("timeToAvailable: invalid phase");
}

double
PowerStateMachine::powerWatts(double utilization) const
{
    switch (phase_) {
      case PowerPhase::On:
        return spec_.activePowerWatts(utilization);
      case PowerPhase::Entering:
        return state_->entryPowerWatts;
      case PowerPhase::Asleep:
        return state_->sleepPowerWatts;
      case PowerPhase::Exiting:
        return state_->exitPowerWatts;
    }
    sim::panic("powerWatts: invalid phase");
}

bool
PowerStateMachine::requestSleep(const std::string &state_name)
{
    if (phase_ != PowerPhase::On) {
        sim::warn("requestSleep('%s') ignored: host is %s",
                  state_name.c_str(), toString(phase_));
        return false;
    }
    const SleepStateSpec *state = spec_.findSleepState(state_name);
    if (!state) {
        sim::warn("requestSleep: host model '%s' has no state '%s'",
                  spec_.model().c_str(), state_name.c_str());
        return false;
    }

    state_ = state;
    wakePending_ = false;
    ++sleepCount_;
    setPhase(PowerPhase::Entering);
    transitionEnd_ = simulator_.now() + state->entryLatency;
    transitionEvent_ = simulator_.scheduleAt(
        transitionEnd_, [this] { onEntryComplete(); }, "psm.entry");
    return true;
}

bool
PowerStateMachine::requestWake()
{
    if (wakeInhibited_) {
        sim::debug("requestWake refused: wakes inhibited (host down)");
        return false;
    }
    switch (phase_) {
      case PowerPhase::On:
      case PowerPhase::Exiting:
        return false;
      case PowerPhase::Entering:
        // Cannot abort a firmware transition; latch the wake instead.
        wakePending_ = true;
        wakeContext_ = telemetry::currentContext();
        wakeRequestedAt_ = simulator_.now();
        return true;
      case PowerPhase::Asleep:
        wakeRequestedAt_ = simulator_.now();
        beginExit();
        return true;
    }
    sim::panic("requestWake: invalid phase");
}

void
PowerStateMachine::forceOff(const std::string &state_name)
{
    const SleepStateSpec *state = spec_.findSleepState(state_name);
    if (!state)
        sim::fatal("forceOff: host model '%s' has no state '%s'",
                   spec_.model().c_str(), state_name.c_str());

    // Abandon any in-flight transition: power is simply gone.
    if (transitionEvent_ != sim::invalidEventId) {
        simulator_.cancel(transitionEvent_);
        transitionEvent_ = sim::invalidEventId;
    }
    state_ = state;
    wakePending_ = false;
    // Always notify (even Asleep -> Asleep): the sleep power may have
    // changed and observers keep energy meters exact.
    setPhase(PowerPhase::Asleep);
}

void
PowerStateMachine::setWakeFailure(double probability, sim::Rng *rng)
{
    if (probability < 0.0 || probability > 1.0)
        sim::fatal("setWakeFailure: probability %g outside [0, 1]",
                   probability);
    if (probability > 0.0 && !rng)
        sim::fatal("setWakeFailure: non-zero probability requires an RNG");
    wakeFailureProb_ = probability;
    failureRng_ = rng;
}

void
PowerStateMachine::setPhase(PowerPhase next)
{
    const PowerPhase from = phase_;
    const sim::SimTime now = simulator_.now();
    const sim::SimTime spent = now - phaseEnteredAt_;
    timeInPhase_[from] += spent;
    phaseEnteredAt_ = now;
    phase_ = next;

    telemetry::Telemetry &tel = telemetry::global();
    if (tel.enabled()) {
        // The journal entry closes the phase just left: its duration and an
        // energy estimate at that phase's draw. For the On phase the exact
        // utilization history is unknown here, so charge idle active power —
        // a host the manager sleeps has been evacuated anyway.
        const double dur_s = static_cast<double>(spent.micros()) * 1e-6;
        double watts = 0.0;
        switch (from) {
          case PowerPhase::On:
            watts = spec_.activePowerWatts(0.0);
            break;
          case PowerPhase::Entering:
            watts = state_ ? state_->entryPowerWatts : 0.0;
            break;
          case PowerPhase::Asleep:
            watts = state_ ? state_->sleepPowerWatts : 0.0;
            break;
          case PowerPhase::Exiting:
            watts = state_ ? state_->exitPowerWatts : 0.0;
            break;
        }
        tel.journal().powerTransition(
            now.micros(), telemetryTrack_, toString(from), toString(next),
            state_ ? std::string_view(state_->name) : std::string_view(),
            dur_s, watts * dur_s);
    }

    sim::debug("host power phase %s -> %s at %s", toString(from),
               toString(next), now.toString().c_str());
    for (const PhaseObserver &observer : observers_)
        observer(from, next);
}

void
PowerStateMachine::onEntryComplete()
{
    transitionEvent_ = sim::invalidEventId;
    setPhase(PowerPhase::Asleep);
    if (wakePending_) {
        wakePending_ = false;
        // This event runs under the sleep decision's context; the exit
        // belongs to the wake decision latched earlier.
        telemetry::TraceScope scope(wakeContext_);
        beginExit();
    }
}

void
PowerStateMachine::beginExit()
{
    if (phase_ != PowerPhase::Asleep)
        sim::panic("beginExit: host is %s, not Asleep", toString(phase_));
    ++wakeCount_;
    setPhase(PowerPhase::Exiting);
    transitionEnd_ = simulator_.now() + state_->exitLatency;
    transitionEvent_ = simulator_.scheduleAt(
        transitionEnd_, [this] { onExitComplete(); }, "psm.exit");
}

void
PowerStateMachine::onExitComplete()
{
    transitionEvent_ = sim::invalidEventId;

    if (wakeFailureProb_ > 0.0 && failureRng_ &&
        failureRng_->bernoulli(wakeFailureProb_)) {
        // The resume attempt failed; pay another exit latency and retry.
        ++wakeRetryCount_;
        sim::warn("host wake attempt failed at %s; retrying",
                  simulator_.now().toString().c_str());
        transitionEnd_ = simulator_.now() + state_->exitLatency;
        transitionEvent_ = simulator_.scheduleAt(
            transitionEnd_, [this] { onExitComplete(); }, "psm.exit.retry");
        return;
    }

    // The wake completed; charge its end-to-end latency (latch wait +
    // remaining entry + exits, retries included) to the wake that asked.
    wakeLatenciesSeconds_.push_back(
        (simulator_.now() - wakeRequestedAt_).toSeconds());

    // Notify before clearing state_ so the journal can still name the sleep
    // state the host is waking out of. Observers see phase() == On, which
    // never consults state_.
    setPhase(PowerPhase::On);
    state_ = nullptr;
}

sim::SimTime
PowerStateMachine::timeInPhase(PowerPhase phase) const
{
    sim::SimTime total;
    if (auto it = timeInPhase_.find(phase); it != timeInPhase_.end())
        total = it->second;
    if (phase == phase_)
        total += simulator_.now() - phaseEnteredAt_;
    return total;
}

void
PowerStateMachine::setTelemetryTrack(std::int32_t track,
                                     std::string_view name)
{
    telemetryTrack_ = track;
    telemetry::global().journal().registerTrack(telemetry::TrackDomain::Host,
                                                track, name);
}

void
PowerStateMachine::addObserver(PhaseObserver observer)
{
    if (!observer)
        sim::panic("PowerStateMachine::addObserver: null observer");
    observers_.push_back(std::move(observer));
}

} // namespace vpm::power
