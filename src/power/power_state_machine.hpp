/**
 * @file
 * Per-host power-state machine.
 *
 * Models the firmware behaviour the paper's prototype exposes to the
 * management plane: a host is either On (serving VMs), in a sleep state, or
 * mid-transition. Transitions take real time and cannot be aborted — a wake
 * request that arrives while the host is still suspending is latched and
 * honoured the moment entry completes (this is exactly the race the paper's
 * low-latency states make cheap and traditional states make painful).
 */

#ifndef VPM_POWER_POWER_STATE_MACHINE_HPP
#define VPM_POWER_POWER_STATE_MACHINE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "power/power_state.hpp"
#include "simcore/random.hpp"
#include "simcore/sim_time.hpp"
#include "simcore/simulator.hpp"
#include "telemetry/trace_context.hpp"

namespace vpm::power {

/** Coarse phase of the host power FSM. */
enum class PowerPhase
{
    On,       ///< active (S0); the only phase in which VMs can run
    Entering, ///< transitioning into a sleep state; unavailable
    Asleep,   ///< parked in a sleep state; unavailable
    Exiting,  ///< resuming/booting; unavailable
};

/** Human-readable phase name, for logs and tables. */
const char *toString(PowerPhase phase);

/**
 * The power FSM of a single host.
 *
 * Drives itself with events on the owning Simulator. Observers (the Host
 * model, stats collectors) subscribe to phase changes; the machine exposes
 * the instantaneous power draw so an EnergyMeter fed from the observer
 * integrates exactly.
 */
class PowerStateMachine
{
  public:
    /**
     * Notification of a phase change, fired at the simulated time of the
     * change after the machine's state has been updated.
     */
    using PhaseObserver = std::function<void(PowerPhase from, PowerPhase to)>;

    /**
     * @param simulator Owning event loop; must outlive the machine.
     * @param spec Power specification; must outlive the machine.
     */
    PowerStateMachine(sim::Simulator &simulator, const HostPowerSpec &spec);

    PowerStateMachine(const PowerStateMachine &) = delete;
    PowerStateMachine &operator=(const PowerStateMachine &) = delete;

    /** @name Inspection */
    ///@{
    PowerPhase phase() const { return phase_; }

    /** true iff the host is On (can run VMs right now). */
    bool isOn() const { return phase_ == PowerPhase::On; }

    /**
     * The sleep state the host is in / entering / exiting; nullptr when On.
     */
    const SleepStateSpec *sleepState() const { return state_; }

    /** true if a wake was requested while the machine was still entering. */
    bool wakePending() const { return wakePending_; }

    /**
     * Time until the host becomes On again, assuming a wake request now.
     * Zero when On. When Entering, includes the remaining entry time.
     */
    sim::SimTime timeToAvailable() const;

    /**
     * Instantaneous power draw, in watts.
     * @param utilization CPU utilization in [0, 1]; only used when On.
     */
    double powerWatts(double utilization) const;

    const HostPowerSpec &spec() const { return spec_; }
    ///@}

    /** @name Commands */
    ///@{
    /**
     * Begin entering the named sleep state.
     *
     * Only legal when On (the manager must have evacuated the host first).
     * @return false if the host is not On or the state is unknown; the
     *         request is then ignored.
     */
    bool requestSleep(const std::string &state_name);

    /**
     * Request that the host come back On.
     *
     * Legal when Asleep (starts the exit transition) or Entering (latches a
     * pending wake that fires when entry completes).
     * @return false if the host is already On or Exiting, or while wakes
     *         are inhibited (hardware down for repair).
     */
    bool requestWake();

    /**
     * Hard power loss (crash, PSU failure, pulled cord): the machine drops
     * immediately into the named sleep state from ANY phase — no entry
     * transition, no entry energy. Any in-flight transition is abandoned.
     * Exiting later still pays the state's full exit latency (reboot).
     */
    void forceOff(const std::string &state_name);

    /**
     * Inhibit or re-allow wakes. While inhibited, requestWake() is refused
     * — models hardware that is physically down for repair so management
     * retries cannot revive it early.
     */
    void setWakeInhibited(bool inhibited) { wakeInhibited_ = inhibited; }

    bool wakeInhibited() const { return wakeInhibited_; }
    ///@}

    /** @name Failure injection */
    ///@{
    /**
     * Make each wake attempt fail with the given probability; a failed
     * attempt costs a full exit latency, after which the machine retries
     * automatically. Used by resilience tests and the failure-injection
     * benches. Pass probability 0 to disable.
     */
    void setWakeFailure(double probability, sim::Rng *rng);
    ///@}

    /** @name Lifetime statistics */
    ///@{
    std::uint64_t sleepCount() const { return sleepCount_; }
    std::uint64_t wakeCount() const { return wakeCount_; }
    std::uint64_t wakeRetryCount() const { return wakeRetryCount_; }

    /** Cumulative time spent in the given phase so far. */
    sim::SimTime timeInPhase(PowerPhase phase) const;

    /**
     * End-to-end latency of every completed wake, in seconds, in
     * completion order: requestWake() (including wakes latched while the
     * machine was still Entering, which pay the remaining entry time) to
     * the return to On, retries included. The sweep orchestrator's wake
     * p99 aggregates these across the fleet; one double per wake, and
     * wakes are management-rate events, so the memory cost is trivial.
     */
    const std::vector<double> &wakeLatenciesSeconds() const
    {
        return wakeLatenciesSeconds_;
    }
    ///@}

    /** Subscribe to phase changes. Observers are invoked in order added. */
    void addObserver(PhaseObserver observer);

    /** @name Telemetry */
    ///@{
    /**
     * Identify this machine's timeline in the global telemetry journal
     * (normally the owning host's id and name; the testbed allocates
     * synthetic tracks). Also registers the track's display name. Without
     * a track set, transitions are journaled under track -1.
     */
    void setTelemetryTrack(std::int32_t track, std::string_view name);

    std::int32_t telemetryTrack() const { return telemetryTrack_; }
    ///@}

  private:
    void setPhase(PowerPhase next);
    void onEntryComplete();
    void onExitComplete();
    void beginExit();

    sim::Simulator &simulator_;
    const HostPowerSpec &spec_;

    PowerPhase phase_ = PowerPhase::On;
    const SleepStateSpec *state_ = nullptr;
    bool wakePending_ = false;
    /** Cause of a latched wake, captured at requestWake() and reinstalled
     *  when entry completes — the exit must be attributed to the wake
     *  decision, not to the sleep decision whose entry event runs it. */
    telemetry::TraceContext wakeContext_;
    bool wakeInhibited_ = false;
    sim::EventId transitionEvent_ = sim::invalidEventId;
    sim::SimTime transitionEnd_;

    double wakeFailureProb_ = 0.0;
    sim::Rng *failureRng_ = nullptr;

    std::uint64_t sleepCount_ = 0;
    std::uint64_t wakeCount_ = 0;
    std::uint64_t wakeRetryCount_ = 0;

    /** When the in-flight wake was requested (latch time for wakes that
     *  arrive mid-entry); meaningful while a wake is pending/exiting. */
    sim::SimTime wakeRequestedAt_;
    std::vector<double> wakeLatenciesSeconds_;

    sim::SimTime phaseEnteredAt_;
    std::map<PowerPhase, sim::SimTime> timeInPhase_;
    std::int32_t telemetryTrack_ = -1;

    std::vector<PhaseObserver> observers_;
};

} // namespace vpm::power

#endif // VPM_POWER_POWER_STATE_MACHINE_HPP
