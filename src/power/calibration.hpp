/**
 * @file
 * Curve calibration from wattmeter measurements.
 *
 * The paper builds its models from measured servers; downstream users
 * must do the same. These helpers turn raw (utilization, watts) samples —
 * noisy, unordered, unevenly spaced — into the curve objects the
 * simulator consumes: a least-squares linear fit, or a piecewise curve
 * via bucket averaging followed by isotonic regression (pool adjacent
 * violators), which guarantees the monotonicity PiecewisePowerCurve
 * requires no matter how noisy the meter was.
 */

#ifndef VPM_POWER_CALIBRATION_HPP
#define VPM_POWER_CALIBRATION_HPP

#include <memory>
#include <utility>
#include <vector>

#include "power/power_curve.hpp"

namespace vpm::power {

/** One wattmeter reading: (utilization in [0,1], watts). */
using PowerSamplePoint = std::pair<double, double>;

/** Result of a linear fit. */
struct LinearFit
{
    double idleWatts = 0.0;
    double peakWatts = 0.0;

    /** Root-mean-square residual of the fit, in watts. */
    double rmseWatts = 0.0;
};

/**
 * Least-squares linear fit of power against utilization.
 *
 * Utilizations are clamped to [0, 1]; needs >= 2 samples spanning more
 * than a single utilization value (fatal otherwise). The fitted idle
 * value is clamped at 0 and the peak at the idle value, so the result
 * always constructs a valid LinearPowerCurve.
 */
LinearFit fitLinearPowerCurve(const std::vector<PowerSamplePoint> &samples);

/** Convenience: fit and build the curve object. */
std::shared_ptr<const PowerCurve>
makeFittedLinearCurve(const std::vector<PowerSamplePoint> &samples);

/**
 * Isotonic regression (pool adjacent violators): the best
 * monotone-non-decreasing fit to @p values in the least-squares sense.
 * Exposed because it is independently useful and independently testable.
 */
std::vector<double> isotonicRegression(std::vector<double> values);

/**
 * Piecewise calibration: average samples into @p breakpoints equal-width
 * utilization buckets, fill empty buckets by interpolation from their
 * neighbours, then enforce monotonicity with isotonic regression.
 *
 * @param samples Wattmeter readings; needs >= 1.
 * @param breakpoints Number of curve breakpoints (>= 2); 11 gives the
 *        conventional SPECpower shape.
 */
std::shared_ptr<const PowerCurve>
makeFittedPiecewiseCurve(const std::vector<PowerSamplePoint> &samples,
                         std::size_t breakpoints = 11);

} // namespace vpm::power

#endif // VPM_POWER_CALIBRATION_HPP
