#include "power/energy_meter.hpp"

#include "simcore/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::power {

EnergyMeter::EnergyMeter(sim::SimTime start, double initial_watts)
    : startTime_(start), lastTime_(start), heldWatts_(initial_watts)
{
    if (initial_watts < 0.0)
        sim::panic("EnergyMeter: negative initial power %g W", initial_watts);
}

void
EnergyMeter::update(sim::SimTime t, double watts)
{
    if (watts < 0.0)
        sim::panic("EnergyMeter::update: negative power %g W", watts);

    if (t < lastTime_) {
        // Clamp the delta at zero rather than integrating a negative
        // interval (which would silently subtract joules). Warn once per
        // meter: a backwards update is a caller bug worth flagging, but
        // not worth aborting a long run over.
        if (!warnedBackwards_) {
            warnedBackwards_ = true;
            sim::warn("EnergyMeter::update: time moved backwards "
                      "(%lld us < %lld us); clamping interval to zero",
                      static_cast<long long>(t.micros()),
                      static_cast<long long>(lastTime_.micros()));
        }
        // Count every clamp (the warning fires once): the periodic
        // telemetry sample turns this into a series a watchdog absence/
        // rate rule can trip on.
        telemetry::global()
            .metrics()
            .counter("power.meter.backwards_clamps")
            .increment();
        heldWatts_ = watts;
        if (wattsGauge_)
            wattsGauge_->set(watts);
        return;
    }

    joules_ += heldWatts_ * (t - lastTime_).toSeconds();
    lastTime_ = t;
    heldWatts_ = watts;
    if (wattsGauge_)
        wattsGauge_->set(watts);
}

void
EnergyMeter::addEnergyJoules(double joules)
{
    if (joules < 0.0) {
        if (!warnedNegativeImpulse_) {
            warnedNegativeImpulse_ = true;
            sim::warn("EnergyMeter::addEnergyJoules: negative impulse "
                      "%g J ignored", joules);
        }
        return;
    }
    joules_ += joules;
}

void
EnergyMeter::attachTelemetry(telemetry::Gauge *gauge)
{
    wattsGauge_ = gauge;
    if (wattsGauge_)
        wattsGauge_->set(heldWatts_);
}

void
EnergyMeter::finish(sim::SimTime t)
{
    update(t, heldWatts_);
}

double
EnergyMeter::averageWatts() const
{
    const double secs = elapsed().toSeconds();
    if (secs <= 0.0)
        return 0.0;
    return joules_ / secs;
}

} // namespace vpm::power
