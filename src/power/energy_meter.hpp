/**
 * @file
 * Step-hold energy integrator.
 *
 * Simulated power draw is piecewise constant: it only changes when demand is
 * re-evaluated or a power-state transition begins/ends. The meter therefore
 * integrates exactly (no sampling error): it holds the last reported power
 * and accumulates held_watts * dt on every update.
 */

#ifndef VPM_POWER_ENERGY_METER_HPP
#define VPM_POWER_ENERGY_METER_HPP

#include "simcore/sim_time.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vpm::power {

/**
 * Accumulates energy from a piecewise-constant power signal.
 *
 * Usage: construct at the signal's start time with its initial value, call
 * update() at every change point (and finish()/update() once at the end of
 * the measurement window), then read joules()/averageWatts().
 */
class EnergyMeter
{
  public:
    /**
     * @param start Time at which measurement begins.
     * @param initial_watts Power draw holding from the start time.
     */
    explicit EnergyMeter(sim::SimTime start = {}, double initial_watts = 0.0);

    /**
     * Report that the power changed to @p watts at time @p t.
     * Integrates the previously held power over [last update, t].
     * A @p t that precedes the previous update is a caller bug: the
     * interval is clamped to zero (no joules are added or subtracted,
     * and the meter's clock does not move backwards), the new power
     * still takes effect, and a warning is logged once per meter.
     */
    void update(sim::SimTime t, double watts);

    /** Integrate the held power up to @p t without changing it. */
    void finish(sim::SimTime t);

    /**
     * Charge an energy impulse directly, in joules. Used for transition
     * energies whose duration is far below the step-hold resolution (µs
     * C-state entries/exits): the impulse adds to the accumulator without
     * touching the held power or the meter's clock, so it is
     * order-independent with respect to update()/finish(). Negative
     * impulses are a caller bug and are ignored with a one-shot warning.
     */
    void addEnergyJoules(double joules);

    /** Total accumulated energy, in joules. */
    double joules() const { return joules_; }

    /** Total accumulated energy, in watt-hours. */
    double wattHours() const { return joules_ / 3600.0; }

    /** Total accumulated energy, in kilowatt-hours. */
    double kiloWattHours() const { return wattHours() / 1000.0; }

    /** Time covered so far (from start to the last update). */
    sim::SimTime elapsed() const { return lastTime_ - startTime_; }

    /** Mean power over the covered window; 0 if the window is empty. */
    double averageWatts() const;

    /** Power currently being held (the last reported value). */
    double heldWatts() const { return heldWatts_; }

    /**
     * Mirror the held power into a telemetry gauge on every update (e.g.
     * "host.host03.watts"), so sampled metric series carry per-meter power.
     * Pass nullptr to detach. The gauge must outlive the meter.
     */
    void attachTelemetry(telemetry::Gauge *gauge);

  private:
    sim::SimTime startTime_;
    sim::SimTime lastTime_;
    double heldWatts_;
    double joules_ = 0.0;
    bool warnedBackwards_ = false;
    bool warnedNegativeImpulse_ = false;
    telemetry::Gauge *wattsGauge_ = nullptr;
};

} // namespace vpm::power

#endif // VPM_POWER_ENERGY_METER_HPP
