#include "power/spec_file.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "simcore/logging.hpp"

namespace vpm::power {

namespace {

std::string
trim(const std::string &raw)
{
    const auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = raw.find_last_not_of(" \t\r");
    return raw.substr(first, last - first + 1);
}

double
parseNumber(const std::string &value, int lineno)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || trim(end) != "")
        sim::fatal("spec line %d: bad number '%s'", lineno, value.c_str());
    return parsed;
}

/** One parsed `[state NAME]` section. */
struct StateSection
{
    std::string name;
    std::map<std::string, double> values;
    int lineno = 0;
};

double
requireKey(const StateSection &section, const std::string &key)
{
    const auto it = section.values.find(key);
    if (it == section.values.end())
        sim::fatal("spec: state '%s' (line %d) is missing '%s'",
                   section.name.c_str(), section.lineno, key.c_str());
    return it->second;
}

} // namespace

HostPowerSpec
parseHostSpec(const std::string &text)
{
    std::string model;
    std::vector<double> curve;
    std::vector<StateSection> states;
    StateSection *current = nullptr;

    std::istringstream stream(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(stream, raw)) {
        ++lineno;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                sim::fatal("spec line %d: unterminated section header",
                           lineno);
            const std::string header = trim(line.substr(1, line.size() - 2));
            if (header.rfind("state ", 0) != 0)
                sim::fatal("spec line %d: unknown section '[%s]'", lineno,
                           header.c_str());
            StateSection section;
            section.name = trim(header.substr(6));
            section.lineno = lineno;
            if (section.name.empty())
                sim::fatal("spec line %d: state needs a name", lineno);
            states.push_back(section);
            current = &states.back();
            continue;
        }

        const auto equals = line.find('=');
        if (equals == std::string::npos)
            sim::fatal("spec line %d: expected 'key = value', got '%s'",
                       lineno, line.c_str());
        const std::string key = trim(line.substr(0, equals));
        const std::string value = trim(line.substr(equals + 1));

        if (!current) {
            if (key == "model") {
                model = value;
            } else if (key == "curve") {
                std::istringstream points(value);
                std::string token;
                while (points >> token)
                    curve.push_back(parseNumber(token, lineno));
            } else {
                sim::fatal("spec line %d: unknown global key '%s'", lineno,
                           key.c_str());
            }
        } else {
            if (key != "sleep_watts" && key != "entry_seconds" &&
                key != "exit_seconds" && key != "entry_watts" &&
                key != "exit_watts") {
                sim::fatal("spec line %d: unknown state key '%s'", lineno,
                           key.c_str());
            }
            current->values[key] = parseNumber(value, lineno);
        }
    }

    if (model.empty())
        sim::fatal("spec: missing 'model ='");
    if (curve.size() < 2)
        sim::fatal("spec: 'curve =' needs at least 2 values, got %zu",
                   curve.size());

    std::vector<SleepStateSpec> sleep_states;
    for (const StateSection &section : states) {
        SleepStateSpec state;
        state.name = section.name;
        state.sleepPowerWatts = requireKey(section, "sleep_watts");
        state.entryLatency =
            sim::SimTime::seconds(requireKey(section, "entry_seconds"));
        state.exitLatency =
            sim::SimTime::seconds(requireKey(section, "exit_seconds"));
        state.entryPowerWatts = requireKey(section, "entry_watts");
        state.exitPowerWatts = requireKey(section, "exit_watts");
        sleep_states.push_back(state);
    }

    return HostPowerSpec(model,
                         std::make_shared<PiecewisePowerCurve>(curve),
                         std::move(sleep_states));
}

HostPowerSpec
loadHostSpec(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        sim::fatal("cannot open spec file '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parseHostSpec(buffer.str());
}

std::string
formatHostSpec(const HostPowerSpec &spec, std::size_t curve_points)
{
    if (curve_points < 2)
        sim::fatal("formatHostSpec: need at least 2 curve points");

    std::ostringstream out;
    out << "model = " << spec.model() << "\ncurve =";
    for (std::size_t i = 0; i < curve_points; ++i) {
        const double u = static_cast<double>(i) /
                         static_cast<double>(curve_points - 1);
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %g", spec.activePowerWatts(u));
        out << buf;
    }
    out << '\n';

    for (const SleepStateSpec &state : spec.sleepStates()) {
        out << "\n[state " << state.name << "]\n";
        out << "sleep_watts = " << state.sleepPowerWatts << '\n';
        out << "entry_seconds = " << state.entryLatency.toSeconds() << '\n';
        out << "exit_seconds = " << state.exitLatency.toSeconds() << '\n';
        out << "entry_watts = " << state.entryPowerWatts << '\n';
        out << "exit_watts = " << state.exitPowerWatts << '\n';
    }
    return out.str();
}

} // namespace vpm::power
