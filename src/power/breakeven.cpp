#include "power/breakeven.hpp"

#include <algorithm>

#include "simcore/logging.hpp"

namespace vpm::power {

double
idleEnergyJoules(const HostPowerSpec &spec, double idle_seconds)
{
    if (idle_seconds < 0.0)
        sim::panic("idleEnergyJoules: negative interval %g s", idle_seconds);
    return spec.idlePowerWatts() * idle_seconds;
}

std::optional<double>
sleepEnergyJoules(const SleepStateSpec &state, double idle_seconds)
{
    if (idle_seconds < 0.0)
        sim::panic("sleepEnergyJoules: negative interval %g s", idle_seconds);

    const double round_trip = state.roundTripLatency().toSeconds();
    if (idle_seconds < round_trip)
        return std::nullopt;

    const double asleep = idle_seconds - round_trip;
    return state.roundTripEnergyJoules() + state.sleepPowerWatts * asleep;
}

std::optional<double>
breakEvenSeconds(const HostPowerSpec &spec, const SleepStateSpec &state)
{
    const double p_idle = spec.idlePowerWatts();
    const double p_sleep = state.sleepPowerWatts;
    if (p_sleep >= p_idle)
        return std::nullopt;

    // Solve  E_transition + P_sleep * (T - t_rt) = P_idle * T  for T.
    const double t_rt = state.roundTripLatency().toSeconds();
    const double numerator = state.roundTripEnergyJoules() - p_sleep * t_rt;
    const double t_star = numerator / (p_idle - p_sleep);

    // Even if the energy math says "sooner", the state cannot be cycled in
    // less than its round-trip transition time.
    return std::max(t_star, t_rt);
}

const SleepStateSpec *
bestStateForInterval(const HostPowerSpec &spec, double idle_seconds)
{
    return cheapestSleepChoice(spec, idle_seconds).state;
}

SleepChoice
cheapestSleepChoice(const HostPowerSpec &spec, double idle_seconds)
{
    SleepChoice choice;
    choice.energyJoules = idleEnergyJoules(spec, idle_seconds);

    // Strict '<' is the documented tie-break: at equal energy the
    // incumbent (S0-idle, then the earlier-listed = shallower state)
    // keeps the win, because the shallower choice exits faster for free.
    for (const SleepStateSpec &state : spec.sleepStates()) {
        const std::optional<double> energy =
            sleepEnergyJoules(state, idle_seconds);
        if (energy && *energy < choice.energyJoules) {
            choice.energyJoules = *energy;
            choice.state = &state;
        }
    }
    return choice;
}

std::optional<double>
breakEvenSecondsFor(double baseline_watts, double state_watts,
                    double round_trip_energy_j, double round_trip_latency_s)
{
    if (state_watts >= baseline_watts)
        return std::nullopt;

    // Solve  E_rt + P_state * (T - t_rt) = P_baseline * T  for T.
    const double numerator =
        round_trip_energy_j - state_watts * round_trip_latency_s;
    const double t_star = numerator / (baseline_watts - state_watts);
    return std::max(t_star, round_trip_latency_s);
}

double
sleepSavingsJoules(const HostPowerSpec &spec, const SleepStateSpec &state,
                   double idle_seconds)
{
    const double idle_energy = idleEnergyJoules(spec, idle_seconds);
    const std::optional<double> sleep_energy =
        sleepEnergyJoules(state, idle_seconds);
    if (sleep_energy)
        return idle_energy - *sleep_energy;

    // Infeasibly short interval: the host spends all of it transitioning.
    // Charge the prorated transition power over the interval.
    const double round_trip = state.roundTripLatency().toSeconds();
    if (round_trip <= 0.0)
        return 0.0;
    const double transition_power =
        state.roundTripEnergyJoules() / round_trip;
    return idle_energy - transition_power * idle_seconds;
}

} // namespace vpm::power
