/**
 * @file
 * Multi-level idle-state hierarchy: per-core C-states nested under package
 * states, layered beneath the whole-server power FSM.
 *
 * The source paper's FSM models only whole-server states (S0/S3/S5). A
 * decade of follow-on work (AgilePkgC, AgileWatts — see PAPERS.md) shows
 * the interesting policy space lives between those states: cores drop into
 * µs-exit C-states the moment they idle, the uncore follows into a package
 * state once every core is deep enough, and the server state machine stays
 * the outermost level. This module models that tree with the two rules the
 * hierarchy papers establish:
 *
 *  - *descent gating*: a level may only descend once ALL of its children
 *    are resident in a deep-enough state (package PC6 requires every core
 *    in C6; the server S3/S5 request is refused by the cluster unless the
 *    hierarchy is fully descended);
 *
 *  - *wake latency = max along the resume path*: levels power up in
 *    parallel, so resuming from (PC6 + C6) costs max(exit PC6, exit C6),
 *    not the sum.
 *
 * Threading contract (PR 5 determinism): all mutating calls happen on the
 * main thread (policy control cycles, FSM observers). The sharded
 * evaluation passes only read powerSavingsWatts()/wakeLatency(), which are
 * plain field reads — no label interning, no journaling from shard bodies.
 */

#ifndef VPM_POWER_IDLE_HIERARCHY_HPP
#define VPM_POWER_IDLE_HIERARCHY_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simcore/sim_time.hpp"
#include "simcore/simulator.hpp"

namespace vpm::power {

/** Levels of the idle tree (the server S-states stay in the power FSM). */
enum class IdleLevel : std::uint8_t
{
    Core,    ///< per-core C-states (C1, C6, ...)
    Package, ///< uncore/package states (PC6, ...)
};

const char *toString(IdleLevel level);

/**
 * One idle state at one level of the tree. Depth is positional: states are
 * listed shallowest-first, and depth d refers to the d-th listed state
 * (depth 0 is the implicit active state, "C0").
 *
 * Transition energies are given directly in joules rather than as a power
 * draw over the latency: at µs scale the interesting quantity is the
 * energy impulse itself (it is charged to the host meter as an impulse,
 * not integrated).
 */
struct IdleStateSpec
{
    /** Short name, e.g. "C1", "C6", "PC6". Unique within its level. */
    std::string name;

    /** Draw while resident: per-core watts at Core level, uncore watts at
     *  Package level. Must be below the level's active (C0) draw. */
    double powerWatts = 0.0;

    sim::SimTime entryLatency;
    sim::SimTime exitLatency;

    /** Energy of one entry transition (one core / one package), joules. */
    double entryEnergyJoules = 0.0;

    /** Energy of one exit transition, joules. */
    double exitEnergyJoules = 0.0;

    /**
     * Package states only: the minimum core depth every core must be
     * resident at before this state may be entered (1-based index into
     * coreStates; 0 means "no requirement"). This is the descent gate.
     */
    int requiredChildDepth = 0;

    double
    roundTripEnergyJoules() const
    {
        return entryEnergyJoules + exitEnergyJoules;
    }

    sim::SimTime
    roundTripLatency() const
    {
        return entryLatency + exitLatency;
    }
};

/**
 * Static description of a host's idle tree: how the S0-idle power
 * decomposes into cores + uncore, and which states each level offers.
 * The decomposition ties the hierarchy to the host's power curve:
 * coreCount * corePowerC0Watts + uncorePowerC0Watts should equal the
 * spec's idle watts (the curve at zero utilization), so a fully-awake
 * hierarchy saves exactly nothing.
 */
struct IdleHierarchySpec
{
    int coreCount = 0;

    /** Per-core draw when active-idle (C0, nothing scheduled), watts. */
    double corePowerC0Watts = 0.0;

    /** Uncore (caches, fabric, memory PHY, ...) draw when awake, watts. */
    double uncorePowerC0Watts = 0.0;

    /** Core states, shallowest first (ascending depth). */
    std::vector<IdleStateSpec> coreStates;

    /** Package states, shallowest first (ascending depth). */
    std::vector<IdleStateSpec> packageStates;

    /** Fatal on structural nonsense (empty tree, non-descending powers,
     *  out-of-range requiredChildDepth, non-positive core count). */
    void validate() const;

    /** Savings at full descent (every core and the package at their
     *  deepest states) versus the all-C0 idle draw, watts. */
    double maxSavingsWatts() const;
};

/**
 * Runtime state of one host's idle tree.
 *
 * The hierarchy is active while the host is On; the power FSM's Entering/
 * Asleep/Exiting phases pause it (pause() closes the residency spans and
 * returns every level to depth 0 — the forced exits ride the system
 * transition, whose energy the FSM already charges). Policy commands
 * (setBusyCores / requestDepth / descendFully) are clamped to the legal
 * region: busy cores pin at depth 0, and the package can never be deeper
 * than its requiredChildDepth gate allows.
 *
 * Every state change journals one `idle_transition` record per (level,
 * from, to) group with the count of cores affected, the seconds the group
 * spent in the from-state, and the transition energy charged — stamped
 * with the ambient decision id, so trace analysis can attribute C-state
 * churn to the decision that caused it.
 */
class IdleHierarchy
{
  public:
    IdleHierarchy(sim::Simulator &simulator, IdleHierarchySpec spec);

    IdleHierarchy(const IdleHierarchy &) = delete;
    IdleHierarchy &operator=(const IdleHierarchy &) = delete;

    const IdleHierarchySpec &spec() const { return spec_; }

    /** @name Policy commands (main thread only) */
    ///@{
    /**
     * Report how many cores have work scheduled. Busy cores are forced to
     * depth 0; idle cores keep the commanded depth. Clamped to
     * [0, coreCount].
     */
    void setBusyCores(int busy);

    /**
     * Command the idle cores to @p core_depth and the package to
     * @p pkg_depth (0 = awake, d = d-th listed state). The package depth
     * is clamped down to the deepest state whose requiredChildDepth gate
     * the commanded core residency satisfies (all cores idle AND at least
     * that deep); it never errors, because the legal region moves with
     * the load.
     */
    void requestDepth(int core_depth, int pkg_depth);

    /** Descend every level as deep as the gates allow (pre-S3/S5 step).
     *  With busy cores this cannot reach full descent. */
    void descendFully();

    /** Return every level to depth 0 (demand arrived / host resumed). */
    void wakeAll();

    /**
     * The power FSM left On: close residency spans and return to depth 0
     * without charging exit energy (the forced exits ride the system
     * transition the FSM charges). Commands are ignored until resume().
     */
    void pause();

    /** The power FSM reached On again: resume residency accounting at
     *  depth 0 (reboot/resume wakes every core). */
    void resume();
    ///@}

    /** @name Read-only queries (safe from sharded evaluation code) */
    ///@{
    bool active() const { return active_; }
    int busyCores() const { return busyCores_; }
    int coreDepth() const { return coreDepth_; }
    int packageDepth() const { return packageDepth_; }

    /** Every core idle and at max depth, package at its max gated depth. */
    bool fullyDescended() const;

    /** Would applying (busy, core_depth, pkg_depth) — after clamping and
     *  gating — move any level? Lets policies mint a decision id only for
     *  cycles that actually transition. False while paused. */
    bool wouldChange(int busy, int core_depth, int pkg_depth) const;

    /** Draw saved versus the all-C0 idle decomposition, watts. Zero when
     *  paused (the FSM's phase power governs then). */
    double powerSavingsWatts() const { return savingsWatts_; }

    /**
     * Resume-to-C0 latency from the current residency: the MAX of the
     * resident states' exit latencies along the wake path (levels power
     * up in parallel), not the sum. Zero when awake or paused.
     */
    sim::SimTime wakeLatency() const { return wakeLatency_; }
    ///@}

    /** @name Accounting */
    ///@{
    /** Total transition energy charged so far, joules. */
    double transitionEnergyJoules() const { return transitionJoules_; }

    /** State-change commands that moved at least one level. */
    std::uint64_t transitions() const { return transitions_; }

    /** Core-seconds of residency at @p depth (0 = C0/busy), closed as of
     *  the last state change; call finish() to close at a given time. */
    double coreResidencySeconds(int depth) const;

    /** Package-seconds of residency at @p depth. */
    double packageResidencySeconds(int depth) const;

    /** Close the residency accounting at @p t (end of run). */
    void finish(sim::SimTime t);
    ///@}

    /** Charge sink for transition energy impulses (the owning host wires
     *  this to its meter + power re-hold). Called after every change. */
    void setTransitionCallback(std::function<void(double joules)> cb);

    /** Journal this hierarchy's idle_transition records under the given
     *  host track id (same id space as the power FSM's track). */
    void setTelemetryTrack(std::int32_t track) { track_ = track; }

  private:
    /** Apply a (busy, coreDepth, pkgDepth) target: journal the per-level
     *  group transitions, charge energy, refresh cached savings/latency. */
    void applyTarget(int busy, int core_depth, int pkg_depth,
                     bool charge_energy);

    /** Deepest package depth allowed by the gates for the given core
     *  residency. */
    int gatedPackageDepth(int wanted, int busy, int core_depth) const;

    void refreshDerived();
    void accrueResidency(sim::SimTime now);
    const std::string &coreStateName(int depth) const;
    const std::string &packageStateName(int depth) const;

    sim::Simulator &simulator_;
    IdleHierarchySpec spec_;

    bool active_ = true;
    int busyCores_ = 0;
    int coreDepth_ = 0;    ///< depth of the idle cores
    int packageDepth_ = 0;

    double savingsWatts_ = 0.0;
    sim::SimTime wakeLatency_;

    double transitionJoules_ = 0.0;
    std::uint64_t transitions_ = 0;

    sim::SimTime lastAccrual_;
    std::vector<double> coreResidencyS_;    ///< per depth, core-seconds
    std::vector<double> packageResidencyS_; ///< per depth, pkg-seconds

    /** Seconds the current (core-idle, package) residency has held, fed
     *  into the journal records' dur_s on the next change. */
    sim::SimTime coreSpanStart_;
    sim::SimTime packageSpanStart_;

    std::function<void(double)> onTransition_;
    std::int32_t track_ = -1;

    static const std::string kC0;
};

} // namespace vpm::power

#endif // VPM_POWER_IDLE_HIERARCHY_HPP
