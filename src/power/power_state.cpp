#include "power/power_state.hpp"

#include <unordered_set>
#include <utility>

#include "simcore/logging.hpp"

namespace vpm::power {

HostPowerSpec::HostPowerSpec(std::string model,
                             std::shared_ptr<const PowerCurve> curve,
                             std::vector<SleepStateSpec> sleep_states)
    : model_(std::move(model)), curve_(std::move(curve)),
      states_(std::move(sleep_states))
{
    if (!curve_)
        sim::fatal("HostPowerSpec '%s': power curve must be non-null",
                   model_.c_str());

    std::unordered_set<std::string> names;
    for (const SleepStateSpec &state : states_) {
        if (state.name.empty())
            sim::fatal("HostPowerSpec '%s': sleep state with empty name",
                       model_.c_str());
        if (!names.insert(state.name).second)
            sim::fatal("HostPowerSpec '%s': duplicate sleep state '%s'",
                       model_.c_str(), state.name.c_str());
        if (state.sleepPowerWatts < 0.0 || state.entryPowerWatts < 0.0 ||
            state.exitPowerWatts < 0.0) {
            sim::fatal("HostPowerSpec '%s': sleep state '%s' has negative "
                       "power", model_.c_str(), state.name.c_str());
        }
        if (state.entryLatency < sim::SimTime() ||
            state.exitLatency < sim::SimTime()) {
            sim::fatal("HostPowerSpec '%s': sleep state '%s' has negative "
                       "latency", model_.c_str(), state.name.c_str());
        }
    }
}

const SleepStateSpec *
HostPowerSpec::findSleepState(const std::string &name) const
{
    for (const SleepStateSpec &state : states_) {
        if (state.name == name)
            return &state;
    }
    return nullptr;
}

const SleepStateSpec *
HostPowerSpec::deepestStateWithin(sim::SimTime max_exit_latency) const
{
    const SleepStateSpec *best = nullptr;
    for (const SleepStateSpec &state : states_) {
        if (state.exitLatency > max_exit_latency)
            continue;
        if (!best || state.sleepPowerWatts < best->sleepPowerWatts)
            best = &state;
    }
    return best;
}

} // namespace vpm::power
