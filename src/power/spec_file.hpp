/**
 * @file
 * Host power-spec files: declare server models without recompiling.
 *
 * Downstream users describe their measured hardware in a small key-value
 * file and load it at runtime (the vpm_sim CLI's --spec flag). Format:
 *
 *     # comment
 *     model = my-server
 *     curve = 155 170 182 192 201 210 219 228 237 246 255
 *
 *     [state S3]
 *     sleep_watts   = 12
 *     entry_seconds = 7
 *     exit_seconds  = 15
 *     entry_watts   = 170
 *     exit_watts    = 200
 *
 * `curve` lists watts at equally spaced utilizations 0..100% (>= 2
 * values; two values make a linear curve). Any number of `[state NAME]`
 * sections may follow, each requiring all five keys. Errors are fatal
 * (this is user configuration).
 */

#ifndef VPM_POWER_SPEC_FILE_HPP
#define VPM_POWER_SPEC_FILE_HPP

#include <string>

#include "power/power_state.hpp"

namespace vpm::power {

/** Parse a host power spec from file text. Fatal on malformed input. */
HostPowerSpec parseHostSpec(const std::string &text);

/** Load and parse a spec file; fatal if unreadable. */
HostPowerSpec loadHostSpec(const std::string &path);

/** Serialize a spec back into the file format (round-trip tested). */
std::string formatHostSpec(const HostPowerSpec &spec,
                           std::size_t curve_points = 11);

} // namespace vpm::power

#endif // VPM_POWER_SPEC_FILE_HPP
