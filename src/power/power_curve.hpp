/**
 * @file
 * Utilization-to-power curves for active (S0) servers.
 *
 * Two families are provided: a simple linear model (idle + slope * util),
 * which is what most consolidation literature assumes, and a piecewise-linear
 * model over fixed utilization breakpoints, which can represent the measured
 * SPECpower-style curves of real servers (sublinear near idle, steeper near
 * peak).
 */

#ifndef VPM_POWER_POWER_CURVE_HPP
#define VPM_POWER_POWER_CURVE_HPP

#include <vector>

namespace vpm::power {

/**
 * Abstract utilization-to-power mapping for an active server.
 *
 * Implementations must be monotonically non-decreasing in utilization;
 * callers clamp utilization to [0, 1] before querying.
 */
class PowerCurve
{
  public:
    virtual ~PowerCurve() = default;

    /**
     * Power draw at the given utilization.
     * @param utilization CPU utilization in [0, 1]; values outside the range
     *        are clamped.
     * @return Power in watts.
     */
    virtual double powerAt(double utilization) const = 0;
};

/** Classic linear model: P(u) = idle + (peak - idle) * u. */
class LinearPowerCurve : public PowerCurve
{
  public:
    /**
     * @param idle_watts Power at zero utilization; must be >= 0.
     * @param peak_watts Power at full utilization; must be >= idle_watts.
     */
    LinearPowerCurve(double idle_watts, double peak_watts);

    double powerAt(double utilization) const override;

  private:
    double idleWatts_;
    double peakWatts_;
};

/**
 * Piecewise-linear model over equally spaced utilization breakpoints
 * (0%, 10%, ..., 100% for the conventional 11-point SPECpower form).
 */
class PiecewisePowerCurve : public PowerCurve
{
  public:
    /**
     * @param watts_at_breakpoints Power at utilization i/(n-1) for the i-th
     *        entry; needs >= 2 entries and must be non-decreasing.
     */
    explicit PiecewisePowerCurve(std::vector<double> watts_at_breakpoints);

    double powerAt(double utilization) const override;

  private:
    std::vector<double> watts_;
};

} // namespace vpm::power

#endif // VPM_POWER_POWER_CURVE_HPP
