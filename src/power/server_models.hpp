/**
 * @file
 * Calibrated host power models.
 *
 * These factory functions package the parameter sets the benches and
 * examples use. enterpriseBlade2013() is the substitution for the paper's
 * measured IBM prototype: the power magnitudes and transition latencies are
 * set to the values the paper's characterization reports for 2013-era
 * enterprise blades — idle around 155 W, peak around 255 W, a low-latency
 * S3 (suspend-to-RAM) state in the ~10 W range with seconds-scale
 * transitions, and a traditional S5 (soft-off) state with a minutes-scale
 * reboot. See DESIGN.md, "Hardware substitution".
 */

#ifndef VPM_POWER_SERVER_MODELS_HPP
#define VPM_POWER_SERVER_MODELS_HPP

#include "power/idle_hierarchy.hpp"
#include "power/power_state.hpp"

namespace vpm::power {

/**
 * The reproduction's stand-in for the paper's prototype blade.
 *
 * States: "S3" (low-latency suspend-to-RAM; the paper's contribution) and
 * "S5" (traditional soft-off with full reboot; the baseline power action).
 * The active curve is piecewise (SPECpower-like): sublinear at low
 * utilization, steeper near peak.
 */
HostPowerSpec enterpriseBlade2013();

/**
 * The same blade restricted to the traditional S5 state only — what a
 * pre-paper power manager has to work with.
 */
HostPowerSpec enterpriseBlade2013S5Only();

/**
 * An older-generation server: same capacity class but a far worse power
 * envelope (idle ~230 W, peak ~320 W) and a slower prototype S3. Mixed
 * with enterpriseBlade2013() it forms the heterogeneous cluster of the
 * E3 extension experiment: the consolidator should prefer parking these.
 */
HostPowerSpec legacyServer2009();

/**
 * An idealized perfectly energy-proportional server (zero idle power,
 * linear to the blade's peak, no sleep states). Used to draw the "ideal"
 * line in the energy-proportionality figure (F5).
 */
HostPowerSpec energyProportionalIdeal();

/**
 * The blade with a single synthetic sleep state whose exit latency is a
 * parameter — used by the latency-sensitivity sweep (F9) to interpolate
 * between S3-like and S5-like behaviour.
 *
 * @param exit_latency Resume latency of the synthetic state.
 * @param sleep_watts Sleep-state power draw.
 */
HostPowerSpec bladeWithSyntheticState(sim::SimTime exit_latency,
                                      double sleep_watts = 10.0);

/**
 * Idle-state tree for a modern descendant of the blade, with AgilePkgC-
 * magnitude C-states (PAPERS.md): per-core C1 (µs-scale halt) and C6
 * (power-gated core), plus package PC6 gated on every core reaching C6.
 *
 * The decomposition ties to the blade curve's 155 W idle: 16 cores x 5 W
 * active-idle + 75 W uncore. Full descent (16x C6 at 0.5 W + PC6 uncore
 * at 25 W) leaves a 33 W S0-floor — between S0-idle and S3, reachable in
 * microseconds instead of seconds, which is exactly the gap this PR's
 * policy space explores.
 */
IdleHierarchySpec modernIdleHierarchy();

} // namespace vpm::power

#endif // VPM_POWER_SERVER_MODELS_HPP
