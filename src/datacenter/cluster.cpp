#include "datacenter/cluster.hpp"

#include <cstdio>
#include <utility>

#include "power/idle_hierarchy.hpp"
#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"

namespace vpm::dc {

Cluster::Cluster(sim::Simulator &simulator) : simulator_(simulator) {}

Host &
Cluster::addHost(const HostConfig &config,
                 const power::HostPowerSpec &power_spec)
{
    const HostId id = static_cast<HostId>(hosts_.size());
    char name[32];
    std::snprintf(name, sizeof(name), "host%03d", id);
    powerSpecs_.push_back(power_spec);
    fleet_.registerHost(id, config.cpuCapacityMhz);
    hosts_.push_back(std::make_unique<Host>(simulator_, id, name, config,
                                            powerSpecs_.back(), fleet_));
    ++placementEpoch_;
    return *hosts_.back();
}

Vm &
Cluster::addVm(workload::VmWorkloadSpec spec)
{
    const VmId id = static_cast<VmId>(vms_.size());
    fleet_.registerVm(id, spec.cpuMhz, spec.memoryMb, spec.trace.get());
    vms_.push_back(std::make_unique<Vm>(id, std::move(spec), fleet_));
    ++placementEpoch_;
    return *vms_.back();
}

Host &
Cluster::host(HostId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= hosts_.size())
        sim::panic("Cluster::host: invalid host id %d", id);
    return *hosts_[static_cast<std::size_t>(id)];
}

const Host &
Cluster::host(HostId id) const
{
    return const_cast<Cluster *>(this)->host(id);
}

Vm &
Cluster::vm(VmId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= vms_.size())
        sim::panic("Cluster::vm: invalid VM id %d", id);
    return *vms_[static_cast<std::size_t>(id)];
}

const Vm &
Cluster::vm(VmId id) const
{
    return const_cast<Cluster *>(this)->vm(id);
}

bool
Cluster::memoryFits(const Vm &vm_ref, const Host &host_ref) const
{
    return host_ref.committedMemoryMb() +
               host_ref.inboundReservedMemoryMb() + vm_ref.memoryMb() <=
           host_ref.memoryCapacityMb() + 1e-6;
}

void
Cluster::placeVm(VmId vm_id, HostId host_id)
{
    Vm &vm_ref = vm(vm_id);
    Host &host_ref = host(host_id);

    if (vm_ref.placed())
        sim::fatal("placeVm: VM '%s' is already placed",
                   vm_ref.name().c_str());
    if (!host_ref.isOn())
        sim::fatal("placeVm: host '%s' is not on", host_ref.name().c_str());
    if (!memoryFits(vm_ref, host_ref))
        sim::fatal("placeVm: VM '%s' (%g MB) does not fit on host '%s'",
                   vm_ref.name().c_str(), vm_ref.memoryMb(),
                   host_ref.name().c_str());

    host_ref.addVm(vm_ref);
    vm_ref.setHost(host_id);
    ++placementEpoch_;
}

void
Cluster::moveVm(VmId vm_id, HostId dest_id)
{
    PROF_ZONE("cluster.move_vm");
    Vm &vm_ref = vm(vm_id);
    Host &dest = host(dest_id);

    if (!vm_ref.placed())
        sim::panic("moveVm: VM '%s' is not placed", vm_ref.name().c_str());
    if (!dest.isOn())
        sim::panic("moveVm: destination '%s' is not on", dest.name().c_str());
    if (!memoryFits(vm_ref, dest))
        sim::panic("moveVm: VM '%s' does not fit on host '%s'",
                   vm_ref.name().c_str(), dest.name().c_str());

    Host &source = host(vm_ref.host());
    source.removeVm(vm_ref);
    dest.addVm(vm_ref);
    vm_ref.setHost(dest_id);
}

void
Cluster::retireVm(VmId vm_id)
{
    Vm &vm_ref = vm(vm_id);
    if (vm_ref.retired())
        sim::panic("retireVm: VM '%s' already retired",
                   vm_ref.name().c_str());
    if (vm_ref.migrating())
        sim::panic("retireVm: VM '%s' is mid-migration",
                   vm_ref.name().c_str());

    if (vm_ref.placed()) {
        Host &host_ref = host(vm_ref.host());
        host_ref.removeVm(vm_ref);
        vm_ref.setHost(invalidHostId);
        vm_ref.setCurrentDemandMhz(0.0);
        vm_ref.setGrantedMhz(0.0);
        vm_ref.setRetired();
        host_ref.updatePowerDraw();
    } else {
        vm_ref.setCurrentDemandMhz(0.0);
        vm_ref.setGrantedMhz(0.0);
        vm_ref.setRetired();
    }
    ++placementEpoch_;
}

bool
Cluster::requestHostSleep(HostId host_id, const std::string &state_name)
{
    Host &host_ref = host(host_id);
    if (!host_ref.isOn()) {
        sim::warn("requestHostSleep: host '%s' is not on",
                  host_ref.name().c_str());
        return false;
    }
    if (!host_ref.empty()) {
        sim::warn("requestHostSleep: host '%s' still has %zu VMs",
                  host_ref.name().c_str(), host_ref.vms().size());
        return false;
    }
    if (host_ref.activeMigrations() > 0) {
        sim::warn("requestHostSleep: host '%s' has in-flight migrations",
                  host_ref.name().c_str());
        return false;
    }
    // Descent gating, outermost level: the server S-states sit above the
    // idle hierarchy, so the whole tree must be resident at its deepest
    // states before the host itself may leave On.
    if (const power::IdleHierarchy *hier = host_ref.idleHierarchy();
        hier != nullptr && !hier->fullyDescended()) {
        sim::warn("requestHostSleep: host '%s' idle hierarchy not fully "
                  "descended (busy=%d core=%d pkg=%d)",
                  host_ref.name().c_str(), hier->busyCores(),
                  hier->coreDepth(), hier->packageDepth());
        return false;
    }
    return host_ref.powerFsm().requestSleep(state_name);
}

bool
Cluster::requestHostWake(HostId host_id)
{
    return host(host_id).powerFsm().requestWake();
}

double
Cluster::totalVmDemandMhz() const
{
    // Linear sweep of the store's demand column in VM-id order — the same
    // values, in the same summation order, as the historical walk over Vm
    // objects (retired VMs hold demand 0).
    double total = 0.0;
    const double *demand = fleet_.vmDemandData();
    const std::size_t n = fleet_.vmCount();
    for (std::size_t v = 0; v < n; ++v)
        total += demand[v];
    return total;
}

double
Cluster::onCpuCapacityMhz() const
{
    double total = 0.0;
    const std::size_t n = fleet_.hostCount();
    for (std::size_t h = 0; h < n; ++h) {
        if (fleet_.hostIsOn(static_cast<HostId>(h)))
            total += fleet_.hostCpuCapacityMhz(static_cast<HostId>(h));
    }
    return total;
}

double
Cluster::totalCpuCapacityMhz() const
{
    double total = 0.0;
    const std::size_t n = fleet_.hostCount();
    for (std::size_t h = 0; h < n; ++h)
        total += fleet_.hostCpuCapacityMhz(static_cast<HostId>(h));
    return total;
}

int
Cluster::hostsOn() const
{
    return fleet_.hostsOn();
}

int
Cluster::hostsAsleep() const
{
    return fleet_.hostsAsleep();
}

int
Cluster::hostsTransitioning() const
{
    return fleet_.hostsTransitioning();
}

double
Cluster::totalPowerWatts() const
{
    PROF_ZONE("cluster.power_accounting");
    double total = 0.0;
    for (const auto &host_ptr : hosts_)
        total += host_ptr->powerWatts();
    return total;
}

double
Cluster::totalEnergyJoules() const
{
    double total = 0.0;
    for (const auto &host_ptr : hosts_)
        total += host_ptr->meter().joules();
    return total;
}

std::uint64_t
Cluster::powerActionCount() const
{
    std::uint64_t total = 0;
    for (const auto &host_ptr : hosts_) {
        total += host_ptr->powerFsm().sleepCount() +
                 host_ptr->powerFsm().wakeCount();
    }
    return total;
}

void
Cluster::finishMetering(sim::SimTime t)
{
    for (const auto &host_ptr : hosts_)
        host_ptr->finishMetering(t);
}

} // namespace vpm::dc
