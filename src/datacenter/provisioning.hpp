/**
 * @file
 * VM lifecycle churn: arrivals, placements and departures.
 *
 * The abstract's opening argument is that virtualization simplified
 * *provisioning and dynamic management*; a realistic evaluation therefore
 * needs a fleet that changes under the manager's feet. The engine draws
 * Poisson VM arrivals with exponential lifetimes, places each arrival on a
 * powered-on host (retrying while capacity is being woken), and retires
 * departing VMs. Pending (not-yet-placed) arrivals expose their demand so
 * the power manager can count them as required capacity.
 */

#ifndef VPM_DATACENTER_PROVISIONING_HPP
#define VPM_DATACENTER_PROVISIONING_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "datacenter/cluster.hpp"
#include "simcore/random.hpp"
#include "simcore/simulator.hpp"
#include "stats/summary.hpp"
#include "workload/mix.hpp"

namespace vpm::dc {

/** Arrival/departure process knobs. */
struct ProvisioningConfig
{
    /** Mean VM arrivals per hour (Poisson process). 0 disables arrivals.*/
    double arrivalsPerHour = 4.0;

    /** Mean VM lifetime (exponential). Unlimited if zero. */
    sim::SimTime meanLifetime = sim::SimTime::hours(8.0);

    /** Workload mix new VMs are drawn from. */
    workload::MixConfig mix{};

    /** Retry cadence for arrivals that found no host with room. */
    sim::SimTime placementRetry = sim::SimTime::minutes(1.0);

    /** Per-host predicted-utilization cap honoured at placement. */
    double placementUtilizationCap = 0.85;

    /** Seed of the arrival/lifetime/spec stream. */
    std::uint64_t seed = 99;
};

/** Drives VM arrivals and departures over a Cluster. */
class ProvisioningEngine
{
  public:
    /**
     * Chooses a host for a new VM.
     * @return The chosen host, or invalidHostId to leave it pending.
     */
    using PlacementPolicy = std::function<HostId(const Vm &)>;

    ProvisioningEngine(sim::Simulator &simulator, Cluster &cluster,
                      const ProvisioningConfig &config = {});

    ProvisioningEngine(const ProvisioningEngine &) = delete;
    ProvisioningEngine &operator=(const ProvisioningEngine &) = delete;

    /** Begin the arrival process. Call at most once. */
    void start();

    /**
     * Replace the default placement policy (worst-fit over On hosts under
     * the utilization cap, memory respected).
     */
    void setPlacementPolicy(PlacementPolicy policy);

    /** @name Pending arrivals (visible to the power manager) */
    ///@{
    std::size_t pendingCount() const { return pending_.size(); }

    /** Total CPU size of arrivals still waiting for a host, in MHz. */
    double pendingDemandMhz() const;

    /** Ids of arrivals still waiting, in arrival order. */
    std::vector<VmId> pendingVms() const;
    ///@}

    /** @name Lifetime statistics */
    ///@{
    std::uint64_t arrivals() const { return arrivals_; }
    std::uint64_t departures() const { return departures_; }

    /** Placement waiting times of placed arrivals, in seconds. */
    const stats::Summary &placementDelays() const
    {
        return placementDelays_;
    }
    ///@}

  private:
    void scheduleNextArrival();
    void arrive();
    void tryPlacePending();
    void depart(VmId vm);
    HostId defaultPlacement(const Vm &vm) const;

    struct Pending
    {
        VmId vm;
        sim::SimTime arrivedAt;
    };

    sim::Simulator &simulator_;
    Cluster &cluster_;
    ProvisioningConfig config_;
    sim::Rng rng_;
    PlacementPolicy policy_;

    std::deque<Pending> pending_;
    sim::EventId retryEvent_ = sim::invalidEventId;
    bool started_ = false;
    std::uint64_t arrivals_ = 0;
    std::uint64_t departures_ = 0;
    stats::Summary placementDelays_;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_PROVISIONING_HPP
