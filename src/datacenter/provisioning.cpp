#include "datacenter/provisioning.hpp"

#include <memory>
#include <utility>

#include "simcore/logging.hpp"
#include "workload/demand_trace.hpp"

namespace vpm::dc {

ProvisioningEngine::ProvisioningEngine(sim::Simulator &simulator,
                                       Cluster &cluster,
                                       const ProvisioningConfig &config)
    : simulator_(simulator), cluster_(cluster), config_(config),
      rng_(config.seed)
{
    if (config_.arrivalsPerHour < 0.0)
        sim::fatal("ProvisioningEngine: negative arrival rate");
    if (config_.placementRetry <= sim::SimTime())
        sim::fatal("ProvisioningEngine: retry cadence must be positive");
    if (config_.placementUtilizationCap <= 0.0 ||
        config_.placementUtilizationCap > 1.0) {
        sim::fatal("ProvisioningEngine: placement cap %g outside (0, 1]",
                   config_.placementUtilizationCap);
    }
    policy_ = [this](const Vm &vm) { return defaultPlacement(vm); };
}

void
ProvisioningEngine::start()
{
    if (started_)
        sim::panic("ProvisioningEngine::start called twice");
    started_ = true;
    if (config_.arrivalsPerHour > 0.0)
        scheduleNextArrival();
}

void
ProvisioningEngine::setPlacementPolicy(PlacementPolicy policy)
{
    if (!policy)
        sim::panic("ProvisioningEngine: null placement policy");
    policy_ = std::move(policy);
}

double
ProvisioningEngine::pendingDemandMhz() const
{
    double total = 0.0;
    for (const Pending &pending : pending_)
        total += cluster_.vm(pending.vm).cpuMhz();
    return total;
}

std::vector<VmId>
ProvisioningEngine::pendingVms() const
{
    std::vector<VmId> ids;
    ids.reserve(pending_.size());
    for (const Pending &pending : pending_)
        ids.push_back(pending.vm);
    return ids;
}

void
ProvisioningEngine::scheduleNextArrival()
{
    const double mean_gap_hours = 1.0 / config_.arrivalsPerHour;
    const sim::SimTime gap =
        sim::SimTime::hours(rng_.exponential(mean_gap_hours));
    simulator_.schedule(gap, [this] { arrive(); }, "provisioning.arrive");
}

void
ProvisioningEngine::arrive()
{
    // Draw one spec from the mix and shift its trace so the VM's workload
    // begins at its own arrival, not at simulation time zero.
    workload::VmWorkloadSpec spec =
        workload::makeEnterpriseMix(rng_, 1, config_.mix).front();
    spec.name = "dyn" + std::to_string(arrivals_);
    spec.trace = std::make_shared<workload::TimeShiftedTrace>(
        spec.trace, sim::SimTime() - simulator_.now());

    Vm &vm = cluster_.addVm(std::move(spec));
    ++arrivals_;

    if (config_.meanLifetime > sim::SimTime()) {
        const sim::SimTime lifetime = sim::SimTime::hours(
            rng_.exponential(config_.meanLifetime.toHours()));
        const VmId vm_id = vm.id();
        simulator_.schedule(lifetime, [this, vm_id] { depart(vm_id); },
                            "provisioning.depart");
    }

    pending_.push_back({vm.id(), simulator_.now()});
    tryPlacePending();
    scheduleNextArrival();
}

void
ProvisioningEngine::tryPlacePending()
{
    std::deque<Pending> still_waiting;
    while (!pending_.empty()) {
        const Pending pending = pending_.front();
        pending_.pop_front();

        Vm &vm = cluster_.vm(pending.vm);
        if (vm.retired())
            continue; // departed before it ever found a host

        const HostId host = policy_(vm);
        if (host == invalidHostId) {
            still_waiting.push_back(pending);
            continue;
        }
        // Do not trust the policy blindly: a stale or buggy choice must
        // leave the VM pending, not crash the cluster invariants.
        if (!cluster_.host(host).isOn() ||
            !cluster_.memoryFits(vm, cluster_.host(host))) {
            sim::warn("provisioning: policy picked unusable host %d for "
                      "'%s'; keeping it pending", host, vm.name().c_str());
            still_waiting.push_back(pending);
            continue;
        }
        cluster_.placeVm(vm.id(), host);
        vm.setCurrentDemandMhz(vm.demandMhzAt(simulator_.now()));
        placementDelays_.add(
            (simulator_.now() - pending.arrivedAt).toSeconds());
    }
    pending_ = std::move(still_waiting);

    // Keep exactly one retry ticking while anything waits for capacity.
    if (!pending_.empty() && !simulator_.pending(retryEvent_)) {
        retryEvent_ = simulator_.schedule(
            config_.placementRetry, [this] { tryPlacePending(); },
            "provisioning.retry");
    }
}

void
ProvisioningEngine::depart(VmId vm_id)
{
    Vm &vm = cluster_.vm(vm_id);
    if (vm.retired())
        sim::panic("ProvisioningEngine: VM '%s' departing twice",
                   vm.name().c_str());

    if (vm.migrating()) {
        // Cannot yank a VM mid-migration; let the copy land first.
        simulator_.schedule(sim::SimTime::seconds(30.0),
                            [this, vm_id] { depart(vm_id); },
                            "provisioning.depart.retry");
        return;
    }
    cluster_.retireVm(vm_id);
    ++departures_;
}

HostId
ProvisioningEngine::defaultPlacement(const Vm &vm) const
{
    // Worst-fit over On hosts: pick the host with the most free demand
    // headroom under the cap, memory respected. Worst-fit keeps arrival
    // placement from fighting the consolidator for the same tight hosts.
    HostId best = invalidHostId;
    double best_headroom = 0.0;
    for (const auto &host_ptr : cluster_.hosts()) {
        if (!host_ptr->isOn())
            continue;
        if (!cluster_.memoryFits(vm, *host_ptr))
            continue;
        const double cap = config_.placementUtilizationCap *
                           host_ptr->cpuCapacityMhz();
        const double headroom =
            cap - host_ptr->vmDemandMhz() - vm.cpuMhz();
        if (headroom < 0.0)
            continue;
        if (best == invalidHostId || headroom > best_headroom) {
            best = host_ptr->id();
            best_headroom = headroom;
        }
    }
    return best;
}

} // namespace vpm::dc
