/**
 * @file
 * Rack-level network topology.
 *
 * At scale-out sizes the network stops being flat: migrations inside a
 * rack ride the top-of-rack switch at full line rate, while cross-rack
 * migrations share a slower uplink with limited concurrency. Both effects
 * shape consolidation cost — the paper's scale-out argument assumes the
 * manager's migration traffic stays cheap, which rack-affine placement
 * helps guarantee (the E6 experiment).
 *
 * Hosts are assigned to racks in contiguous blocks. The topology also
 * does the uplink slot accounting the MigrationEngine consults.
 */

#ifndef VPM_DATACENTER_TOPOLOGY_HPP
#define VPM_DATACENTER_TOPOLOGY_HPP

#include <vector>

#include "datacenter/vm.hpp"

namespace vpm::dc {

/** Rack identifier (dense, starting at 0). */
using RackId = int;

/** Network shape knobs. */
struct TopologyConfig
{
    /** Hosts per rack; the last rack may be partial. Must be >= 1. */
    int hostsPerRack = 8;

    /** Per-stream bandwidth within a rack, in MB/s (ToR line rate). */
    double intraRackBandwidthMbPerSec = 1100.0;

    /** Per-stream bandwidth across racks, in MB/s (shared uplink). */
    double interRackBandwidthMbPerSec = 450.0;

    /** Concurrent cross-rack migrations each rack's uplink sustains. */
    int uplinkMigrationSlotsPerRack = 2;
};

/** Static rack assignment plus dynamic uplink slot accounting. */
class Topology
{
  public:
    /**
     * @param host_count Number of hosts, assigned to racks in blocks of
     *        config.hostsPerRack.
     */
    Topology(int host_count, const TopologyConfig &config = {});

    int rackCount() const { return rackCount_; }
    RackId rackOf(HostId host) const;
    bool sameRack(HostId a, HostId b) const;

    /** Hosts assigned to @p rack, in id order. */
    std::vector<HostId> hostsInRack(RackId rack) const;

    /** Per-stream migration bandwidth between two hosts, in MB/s. */
    double bandwidthBetween(HostId a, HostId b) const;

    /** @name Uplink slot accounting (cross-rack flows only) */
    ///@{
    /** true if both endpoints' racks can carry one more cross-rack flow.
     *  Always true for same-rack pairs. */
    bool uplinkSlotsFree(HostId a, HostId b) const;

    /** Reserve one cross-rack flow on both racks' uplinks (no-op for
     *  same-rack pairs). */
    void acquireUplink(HostId a, HostId b);

    /** Release a previously acquired flow (no-op for same-rack pairs). */
    void releaseUplink(HostId a, HostId b);

    /** Cross-rack flows currently charged to @p rack's uplink. */
    int uplinkFlows(RackId rack) const;
    ///@}

    const TopologyConfig &config() const { return config_; }

  private:
    TopologyConfig config_;
    int hostCount_;
    int rackCount_;
    std::vector<int> uplinkFlows_;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_TOPOLOGY_HPP
