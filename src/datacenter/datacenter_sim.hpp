/**
 * @file
 * Experiment glue: periodic demand evaluation, CPU allocation, SLA and
 * power accounting over a Cluster.
 *
 * Every evaluation interval the sim refreshes each VM's demand from its
 * trace, runs the per-host proportional-share allocator, records one SLA
 * sample per VM, and re-holds every host's energy meter. Management
 * policies (vpm::mgmt) run on their own cadence and act on the same
 * Cluster; the sim exposes hooks so a policy can observe evaluations.
 */

#ifndef VPM_DATACENTER_DATACENTER_SIM_HPP
#define VPM_DATACENTER_DATACENTER_SIM_HPP

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "datacenter/cluster.hpp"
#include "datacenter/migration.hpp"
#include "simcore/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/sla_tracker.hpp"
#include "stats/summary.hpp"
#include "telemetry/event_journal.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/timeseries.hpp"

namespace vpm::power {
struct IdleHierarchySpec;
}

namespace vpm::dc {

/** Evaluation knobs. */
struct DatacenterConfig
{
    /** How often demand is re-read and capacity re-allocated. */
    sim::SimTime evaluationInterval = sim::SimTime::minutes(1.0);

    /** SLA-violation threshold on granted/requested per VM-interval. */
    double slaThreshold = 0.99;
};

/** End-of-run aggregate metrics for one simulated experiment. */
struct RunMetrics
{
    double energyKwh = 0.0;          ///< cluster energy over the run
    double averagePowerWatts = 0.0;  ///< cluster mean power
    double satisfaction = 1.0;       ///< total granted / total requested
    double violationFraction = 0.0;  ///< VM-intervals under the threshold
    double p5Performance = 1.0;      ///< 5th pct of per-sample performance
    double worstPerformance = 1.0;   ///< minimum per-sample performance

    /**
     * Queueing-theoretic response-time inflation (M/M/1 intuition): a VM
     * on a host at utilization rho sees service times stretched by
     * roughly 1/(1 - rho). 1.0 = an idle machine; large values mean the
     * consolidation packed hosts so tight that latency suffers even when
     * throughput (satisfaction) is still fine.
     */
    double meanLatencyFactor = 1.0;  ///< demand-weighted mean inflation
    double p95LatencyFactor = 1.0;   ///< 95th pct of per-VM inflation
    double averageHostsOn = 0.0;     ///< time-weighted mean of on hosts
    std::uint64_t migrations = 0;    ///< completed live migrations
    std::uint64_t powerActions = 0;  ///< accepted sleep + wake commands
    double simulatedHours = 0.0;     ///< wall span of the run
};

/** Drives periodic evaluation and collects run-level metrics. */
class DatacenterSim
{
  public:
    /** Observer fired after each periodic evaluation completes. */
    using EvaluationHook = std::function<void()>;

    DatacenterSim(sim::Simulator &simulator, Cluster &cluster,
                  MigrationEngine &migration,
                  const DatacenterConfig &config = {});

    DatacenterSim(const DatacenterSim &) = delete;
    DatacenterSim &operator=(const DatacenterSim &) = delete;

    /**
     * Begin periodic evaluation: the first evaluation runs at the current
     * simulated time, then every evaluationInterval. Also wires migration
     * completions to reallocation. Call exactly once.
     */
    void start();

    /**
     * Convenience driver: start() if needed, run the simulator for
     * @p duration, then close out all meters.
     * @return The aggregate metrics of the window just simulated.
     */
    RunMetrics runFor(sim::SimTime duration);

    /**
     * Refresh demand from traces and reallocate, recording SLA samples.
     * Called automatically on the periodic cadence.
     */
    void evaluate();

    /**
     * Reallocate grants from already-captured demand without recording SLA
     * samples (used after mid-interval topology changes, e.g. a migration
     * landing, so energy stays exact without double-counting SLA).
     */
    void reallocate();

    /** Snapshot the aggregate metrics so far (meters closed at now()). */
    RunMetrics metrics();

    /** The SLA tracker, with any pending per-shard partials folded in. */
    stats::SlaTracker &sla()
    {
        collectShardSamples();
        return sla_;
    }
    /** Const view: current as of the last metrics()/sla() fold. Fleets
     *  small enough for the single-shard path (the tests) are always
     *  current. */
    const stats::SlaTracker &sla() const { return sla_; }

    /** Register a hook fired after every periodic evaluation. */
    void addEvaluationHook(EvaluationHook hook);

    const DatacenterConfig &config() const { return config_; }

  private:
    void evaluationTick();

    /** Allocate grants on one host from its VMs' current demand.
     *  Touches only that host's state (plus its resident VMs), so hosts
     *  in different shards may run this concurrently. */
    void allocateHost(Host &host);

    /**
     * Record the SLA/latency samples of placed VMs [begin, end) into the
     * given accumulators. With @p stage non-null, SLA-violation events are
     * staged instead of journaled directly (the parallel path); null means
     * "record straight into the global journal" (the single-shard path).
     */
    void sampleVms(std::size_t begin, std::size_t end, sim::SimTime now,
                   bool journal_on, stats::SlaTracker &sla,
                   stats::Summary &latency_weighted,
                   stats::Histogram &latency_hist,
                   telemetry::JournalStage *stage,
                   telemetry::SeriesRecorder *series_rec);

    /**
     * The placed VMs in VM-id order. The set only changes when the
     * cluster's placement epoch moves (place, retire, membership), so the
     * list is rebuilt exactly then; moves keep a VM placed and need no
     * rebuild. Iteration order matches the full-sweep filter it replaces.
     */
    const std::vector<Vm *> &placedVms();

    /** Refresh cluster-level gauges and snapshot the metric series; no-op
     *  when global telemetry is disabled. */
    void sampleTelemetry();

    /**
     * Fold every shard's pending stats partials into sla_ /
     * latencyWeighted_ / latencyHist_ in shard index order and reset the
     * partials. Deliberately lazy — called from metrics() and sla(), not
     * per tick — because merging the trackers' multi-thousand-bucket
     * histograms every tick dominates the evaluation loop. Fold points
     * are simulation-event-driven, so the summation order is still
     * independent of the thread count.
     */
    void collectShardSamples();

    sim::Simulator &simulator_;
    Cluster &cluster_;
    MigrationEngine &migration_;
    DatacenterConfig config_;

    stats::SlaTracker sla_;
    stats::TimeWeighted hostsOnTracker_;
    stats::Summary latencyWeighted_;
    stats::Histogram latencyHist_{1.0, 21.0, 800};
    bool started_ = false;
    sim::SimTime startedAt_;
    std::vector<EvaluationHook> hooks_;

    /** Cached placed-VM list (and the parallel id list the store-direct
     *  passes index with); valid while the epoch matches. */
    std::vector<Vm *> placedVms_;
    std::vector<VmId> placedIds_;
    std::uint64_t placedEpoch_ = ~0ull;

    /**
     * @name Idle-hierarchy occupancy accumulation, allocation-free per tick
     *
     * Every distinct occupancy gauge ("cluster.idle.core.C6", ...) gets
     * one slot caching the gauge handle and time-series id, and every
     * hierarchy spec caches the slot index for each depth, so the
     * per-host sampling loop is pure integer indexing — no string
     * concatenation, no map of strings. A slot whose epoch matches the
     * current tick was touched this tick; stale slots read 0 (a level
     * nobody occupies must not hold its last sample). Slots are visited
     * in name order, reproducing the iteration order of the
     * std::map<std::string, double> accumulator this replaced, which is
     * observable as series registration order in snapshots.
     */
    ///@{
    struct IdleOccSlot
    {
        std::string name;
        telemetry::Gauge *gauge = nullptr;
        std::uint32_t series = 0;
        bool seriesResolved = false;
        double value = 0.0;
        std::uint64_t epoch = 0;
    };
    struct SpecOccSlots
    {
        std::vector<std::size_t> coreByDepth; ///< [depth-1] -> slot index
        std::vector<std::size_t> pkgByDepth;
        std::size_t coreC0 = 0;
        std::size_t pkgC0 = 0;
    };
    /** Find or create the slot for @p name (registers the gauge). */
    std::size_t idleOccSlot(const std::string &name);
    std::vector<IdleOccSlot> idleOccSlots_;
    std::vector<std::size_t> idleOccOrder_; ///< slot indices, name-sorted
    std::unordered_map<std::string, std::size_t> idleOccIndex_;
    std::unordered_map<const power::IdleHierarchySpec *, SpecOccSlots>
        idleSpecSlots_;
    std::uint64_t idleOccEpoch_ = 0;
    ///@}

    /**
     * One shard's private accumulators for the parallel sampling pass.
     * Stats partials accumulate across ticks and are folded into the
     * persistent trackers only by collectShardSamples(); the journal
     * stage is flushed (and thereby emptied) every tick, because record
     * order is observable per tick while stats merges commute across
     * ticks as long as the shard order is fixed. The histogram layout
     * must match latencyHist_ and the tracker threshold must match sla_,
     * or merge() panics.
     */
    struct ShardSample
    {
        explicit ShardSample(double threshold) : sla(threshold) {}
        stats::SlaTracker sla;
        stats::Summary latencyWeighted;
        stats::Histogram latencyHist{1.0, 21.0, 800};
        telemetry::JournalStage stage;
        /** Time-series partials (violation satisfaction); folded into the
         *  store in shard index order every tick, like the stage. */
        telemetry::SeriesRecorder seriesRec;
    };
    std::vector<ShardSample> shardSamples_;

    /** Single-shard counterpart of ShardSample::seriesRec, so both VM-pass
     *  paths fold series partials through the identical merge. */
    telemetry::SeriesRecorder seqSeriesRec_;

    /** @name Lazily interned time-series ids (store registrations survive
     *  reconfiguration, so resolving once per sim is safe). */
    ///@{
    bool tsViolResolved_ = false;
    std::uint32_t tsViolSat_ = 0;
    bool tsMainResolved_ = false;
    std::uint32_t tsPower_ = 0;
    std::uint32_t tsDemand_ = 0;
    std::uint32_t tsHostsOn_ = 0;
    std::uint32_t tsHostsAsleep_ = 0;
    std::uint32_t tsQueueDepth_ = 0;
    std::uint32_t tsMigInflight_ = 0;
    std::uint32_t tsBackClamps_ = 0;
    /** `power.meter.backwards_clamps` counter handle (stable). */
    telemetry::Counter *backClampsCounter_ = nullptr;
    /** Cluster-aggregate gauge handles (registry storage is stable). */
    telemetry::Gauge *wattsGauge_ = nullptr;
    telemetry::Gauge *hostsOnGauge_ = nullptr;
    telemetry::Gauge *demandGauge_ = nullptr;
    ///@}

    /** hostsOn/hostsAsleep are O(hosts) scans; phases change orders of
     *  magnitude less often than ticks, so the phase-edge observer marks
     *  the counts dirty and sampleTelemetry() rescans only then. */
    bool hostCountsDirty_ = true;
    int cachedHostsOn_ = 0;
    int cachedHostsAsleep_ = 0;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_DATACENTER_SIM_HPP
