/**
 * @file
 * Host failure injection: crashes and repairs.
 *
 * Hosts fail (exponential time-to-failure while On) with an instantaneous
 * hard power loss — VMs aboard are stranded until the HA layer restarts
 * them elsewhere. Repair takes an exponential MTTR during which wakes are
 * inhibited; after repair the host boots and rejoins the pool. This is
 * the stressor behind the E7 experiment: does aggressive consolidation
 * leave enough failover capacity?
 */

#ifndef VPM_DATACENTER_FAILURE_HPP
#define VPM_DATACENTER_FAILURE_HPP

#include <cstdint>
#include <set>

#include "datacenter/cluster.hpp"
#include "simcore/random.hpp"
#include "simcore/simulator.hpp"

namespace vpm::dc {

/** Failure process knobs. */
struct FailureConfig
{
    /** Mean time to failure per host, counted only while On. */
    sim::SimTime meanTimeToFailure = sim::SimTime::hours(500.0);

    /** Mean time to repair (wakes inhibited throughout). */
    sim::SimTime meanTimeToRepair = sim::SimTime::minutes(45.0);

    /** Sleep state a crashed host falls into ("S5": power loss). */
    std::string crashState = "S5";

    /** Seed of the failure/repair stream. */
    std::uint64_t seed = 77;
};

/** Drives host crashes and repairs over a Cluster. */
class FailureInjector
{
  public:
    FailureInjector(sim::Simulator &simulator, Cluster &cluster,
                    const FailureConfig &config = {});

    FailureInjector(const FailureInjector &) = delete;
    FailureInjector &operator=(const FailureInjector &) = delete;

    /** Arm the per-host failure clocks. Call at most once. */
    void start();

    /** true while the host is crashed and under repair. */
    bool isDown(HostId host) const { return down_.contains(host); }

    std::uint64_t crashes() const { return crashes_; }
    std::uint64_t repairs() const { return repairs_; }

  private:
    void scheduleFailure(HostId host);
    void maybeCrash(HostId host);
    void repair(HostId host);

    sim::Simulator &simulator_;
    Cluster &cluster_;
    FailureConfig config_;
    sim::Rng rng_;
    std::set<HostId> down_;
    bool started_ = false;
    std::uint64_t crashes_ = 0;
    std::uint64_t repairs_ = 0;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_FAILURE_HPP
