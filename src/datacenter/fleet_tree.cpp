#include "datacenter/fleet_tree.hpp"

#include <algorithm>

#include "datacenter/cluster.hpp"
#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"

namespace vpm::dc {

void
FleetTree::configure(Cluster &cluster, std::size_t hosts_per_rack,
                     std::size_t racks_per_pod)
{
    if (hosts_per_rack == 0 || racks_per_pod == 0)
        sim::panic("FleetTree::configure: rack/pod widths must be positive");
    cluster_ = &cluster;
    hostsPerRack_ = hosts_per_rack;
    racksPerPod_ = racks_per_pod;

    FleetStore &fleet = cluster.fleet();
    fleet.setRackWidth(hosts_per_rack);

    const std::size_t hosts = fleet.hostCount();
    const std::size_t rack_count =
        (hosts + hosts_per_rack - 1) / hosts_per_rack;
    racks_.assign(rack_count, FleetAggregate{});
    for (std::size_t r = 0; r < rack_count; ++r) {
        racks_[r].begin = r * hosts_per_rack;
        racks_[r].end = std::min(hosts, (r + 1) * hosts_per_rack);
    }
    const std::size_t pod_count =
        rack_count == 0 ? 0 : (rack_count + racks_per_pod - 1) / racks_per_pod;
    pods_.assign(pod_count, FleetAggregate{});
    for (std::size_t p = 0; p < pod_count; ++p) {
        pods_[p].begin = p * racks_per_pod;
        pods_[p].end = std::min(rack_count, (p + 1) * racks_per_pod);
    }
    root_ = FleetAggregate{};
    root_.end = pod_count;
}

void
FleetTree::recomputeRack(std::size_t rack)
{
    const FleetStore &fleet = cluster_->fleet();
    const auto &hosts = cluster_->hosts();
    FleetAggregate next;
    next.begin = racks_[rack].begin;
    next.end = racks_[rack].end;
    for (std::size_t i = next.begin; i < next.end; ++i) {
        const HostId h = static_cast<HostId>(i);
        // Demand aggregates recompute lazily through the Host view (off
        // hosts can be demand-dirty; see sampleTelemetry), then the clean
        // cache column is the rack's input — host-id order, FP-stable.
        if (fleet.hostFlags(h) & FleetStore::kDemandDirty)
            (void)hosts[i]->vmDemandMhz();
        next.demandMhz += fleet.hostDemandCacheMhz(h);
        next.cpuCapacityMhz += fleet.hostCpuCapacityMhz(h);
        switch (fleet.hostPhase(h)) {
        case static_cast<std::uint8_t>(power::PowerPhase::On):
            ++next.hostsOn;
            next.onEffectiveCapMhz += fleet.hostEffectiveCapacityMhz(h);
            if (hosts[i]->empty())
                ++next.emptyOn;
            break;
        case static_cast<std::uint8_t>(power::PowerPhase::Asleep):
            ++next.hostsAsleep;
            break;
        default:
            ++next.hostsTransitioning;
            break;
        }
    }
    const FleetAggregate &prev = racks_[rack];
    next.changed = next.demandMhz != prev.demandMhz ||
                   next.onEffectiveCapMhz != prev.onEffectiveCapMhz ||
                   next.cpuCapacityMhz != prev.cpuCapacityMhz ||
                   next.hostsOn != prev.hostsOn ||
                   next.hostsAsleep != prev.hostsAsleep ||
                   next.hostsTransitioning != prev.hostsTransitioning ||
                   next.emptyOn != prev.emptyOn;
    racks_[rack] = next;
}

void
FleetTree::refresh()
{
    PROF_ZONE("fleet_tree.refresh");
    if (cluster_ == nullptr)
        sim::panic("FleetTree::refresh before configure");
    FleetStore &fleet = cluster_->fleet();
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        if (!fleet.rackDirty(r)) {
            racks_[r].changed = false;
            continue;
        }
        fleet.clearRackDirty(r);
        recomputeRack(r);
    }
    // Pods and the root fold rack rows in id order: cheap (racks, not
    // hosts) and FP-stable because rack rows are themselves recomputed
    // from scratch in a fixed order.
    for (std::size_t p = 0; p < pods_.size(); ++p) {
        FleetAggregate next;
        next.begin = pods_[p].begin;
        next.end = pods_[p].end;
        bool changed = false;
        for (std::size_t r = next.begin; r < next.end; ++r) {
            const FleetAggregate &rack = racks_[r];
            next.demandMhz += rack.demandMhz;
            next.onEffectiveCapMhz += rack.onEffectiveCapMhz;
            next.cpuCapacityMhz += rack.cpuCapacityMhz;
            next.hostsOn += rack.hostsOn;
            next.hostsAsleep += rack.hostsAsleep;
            next.hostsTransitioning += rack.hostsTransitioning;
            next.emptyOn += rack.emptyOn;
            changed = changed || rack.changed;
        }
        next.changed = changed;
        pods_[p] = next;
    }
    FleetAggregate next;
    next.end = pods_.size();
    bool changed = false;
    for (const FleetAggregate &pod : pods_) {
        next.demandMhz += pod.demandMhz;
        next.onEffectiveCapMhz += pod.onEffectiveCapMhz;
        next.cpuCapacityMhz += pod.cpuCapacityMhz;
        next.hostsOn += pod.hostsOn;
        next.hostsAsleep += pod.hostsAsleep;
        next.hostsTransitioning += pod.hostsTransitioning;
        next.emptyOn += pod.emptyOn;
        changed = changed || pod.changed;
    }
    next.changed = changed;
    root_ = next;
}

} // namespace vpm::dc
