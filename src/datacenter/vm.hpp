/**
 * @file
 * Virtual machine model.
 *
 * A Vm couples a workload spec (size + demand trace) with runtime placement
 * state. Demand is what the trace asks for; the granted amount is computed
 * by the host-level allocator each evaluation interval and may be lower when
 * capacity is short — the gap is the performance cost the SLA tracker
 * records.
 */

#ifndef VPM_DATACENTER_VM_HPP
#define VPM_DATACENTER_VM_HPP

#include <cstdint>
#include <limits>
#include <string>

#include "simcore/sim_time.hpp"
#include "workload/mix.hpp"

namespace vpm::dc {

class Host;

/** Dense, stable VM identifier within a Cluster. */
using VmId = int;

/** Dense, stable host identifier within a Cluster. */
using HostId = int;

/** Sentinel for "no host". */
inline constexpr HostId invalidHostId = -1;

/** A virtual machine: immutable workload spec plus mutable placement. */
class Vm
{
  public:
    /**
     * @param id Cluster-assigned identifier.
     * @param spec Workload half (name, size, trace); trace must be non-null.
     */
    Vm(VmId id, workload::VmWorkloadSpec spec);

    VmId id() const { return id_; }
    const std::string &name() const { return spec_.name; }

    /** CPU size (demand at trace level 1.0), in MHz. */
    double cpuMhz() const { return spec_.cpuMhz; }

    /** Memory footprint, in MB; drives live-migration duration. */
    double memoryMb() const { return spec_.memoryMb; }

    /** Demanded CPU at time @p t, in MHz. */
    double demandMhzAt(sim::SimTime t) const;

    /** @name Placement (maintained by Cluster) */
    ///@{
    HostId host() const { return host_; }
    bool placed() const { return host_ != invalidHostId; }
    void setHost(HostId host) { host_ = host; }

    /**
     * Direct pointer to the resident host, kept in lockstep with addVm /
     * removeVm so demand and grant writes can invalidate the host's cached
     * aggregates without a cluster lookup. Null while unplaced.
     */
    Host *residentHost() const { return hostPtr_; }
    void setResidentHost(Host *host) { hostPtr_ = host; }
    ///@}

    /** @name Per-interval allocation (maintained by DatacenterSim) */
    ///@{
    /** Demand captured at the last evaluation, in MHz. */
    double currentDemandMhz() const { return currentDemandMhz_; }

    /** Overwrite the captured demand, dropping any cached trace span. */
    void setCurrentDemandMhz(double mhz);

    /**
     * Re-sample demand from the trace at @p now unless the cached span
     * still covers it. Returns true when the value actually changed (the
     * resident host's aggregates are invalidated in that case).
     */
    bool refreshDemand(sim::SimTime now);

    /** End of the cached demand span, exclusive (exposed for tests). */
    sim::SimTime demandValidUntil() const { return demandValidUntil_; }

    /** CPU granted at the last evaluation, in MHz. */
    double grantedMhz() const { return grantedMhz_; }
    void setGrantedMhz(double mhz);
    ///@}

    /** @name Migration state (maintained by MigrationEngine) */
    ///@{
    bool migrating() const { return migrating_; }
    void setMigrating(bool migrating) { migrating_ = migrating; }
    ///@}

    /** @name Lifecycle (maintained by Cluster) */
    ///@{
    /** true once the VM has departed; it no longer demands anything. */
    bool retired() const { return retired_; }
    void setRetired() { retired_ = true; }
    ///@}

  private:
    /** Sentinel horizon that forces the next refreshDemand to re-sample. */
    static sim::SimTime neverValid()
    {
        return sim::SimTime::micros(
            std::numeric_limits<std::int64_t>::min());
    }

    VmId id_;
    workload::VmWorkloadSpec spec_;
    HostId host_ = invalidHostId;
    Host *hostPtr_ = nullptr;
    double currentDemandMhz_ = 0.0;
    double grantedMhz_ = 0.0;
    sim::SimTime demandValidUntil_ = neverValid();
    bool migrating_ = false;
    bool retired_ = false;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_VM_HPP
