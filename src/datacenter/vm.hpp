/**
 * @file
 * Virtual machine model.
 *
 * A Vm couples a workload spec (size + demand trace) with runtime placement
 * state. Demand is what the trace asks for; the granted amount is computed
 * by the host-level allocator each evaluation interval and may be lower when
 * capacity is short — the gap is the performance cost the SLA tracker
 * records.
 *
 * Since the FleetStore refactor the Vm is a thin view: all hot fields
 * (demand, granted, resident-host id, trace-span horizon) live in dense
 * columns of a FleetStore, indexed by the VM's id. Cluster-owned VMs share
 * the cluster's store; a standalone Vm (unit tests) owns a private
 * single-row store so the historical constructor keeps working.
 */

#ifndef VPM_DATACENTER_VM_HPP
#define VPM_DATACENTER_VM_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "datacenter/fleet_store.hpp"
#include "simcore/sim_time.hpp"
#include "workload/mix.hpp"

namespace vpm::dc {

class Host;

/** A virtual machine: immutable workload spec plus a view of its row in
 *  the fleet's hot-state columns. */
class Vm
{
  public:
    /**
     * Standalone constructor (unit tests): the Vm owns a private store.
     * @param id Cluster-assigned identifier.
     * @param spec Workload half (name, size, trace); trace must be non-null.
     */
    Vm(VmId id, workload::VmWorkloadSpec spec);

    /** Cluster constructor: the row @p id must already be registered in
     *  @p store (the cluster registers it before constructing the view). */
    Vm(VmId id, workload::VmWorkloadSpec spec, FleetStore &store);

    Vm(const Vm &) = delete;
    Vm &operator=(const Vm &) = delete;

    VmId id() const { return id_; }
    const std::string &name() const { return spec_.name; }

    /** CPU size (demand at trace level 1.0), in MHz. */
    double cpuMhz() const { return spec_.cpuMhz; }

    /** Memory footprint, in MB; drives live-migration duration. */
    double memoryMb() const { return spec_.memoryMb; }

    /** Demanded CPU at time @p t, in MHz. */
    double demandMhzAt(sim::SimTime t) const;

    /** @name Placement (maintained by Cluster) */
    ///@{
    HostId host() const { return store_->vmHost(id_); }
    bool placed() const { return host() != invalidHostId; }
    void setHost(HostId host) { store_->setVmHost(id_, host); }

    /**
     * Direct pointer to the resident host, kept in lockstep with addVm /
     * removeVm so demand and grant writes can invalidate the host's cached
     * aggregates without a cluster lookup. Null while unplaced.
     */
    Host *residentHost() const { return hostPtr_; }
    void setResidentHost(Host *host) { hostPtr_ = host; }
    ///@}

    /** @name Per-interval allocation (maintained by DatacenterSim) */
    ///@{
    /** Demand captured at the last evaluation, in MHz. */
    double currentDemandMhz() const { return store_->vmDemandMhz(id_); }

    /** Overwrite the captured demand, dropping any cached trace span. */
    void setCurrentDemandMhz(double mhz);

    /**
     * Re-sample demand from the trace at @p now unless the cached span
     * still covers it. Returns true when the value actually changed (the
     * resident host's aggregates are invalidated in that case). Main-
     * thread only — the evaluation engine's sharded refresh goes through
     * FleetStore::refreshPlacedDemand instead.
     */
    bool refreshDemand(sim::SimTime now);

    /** End of the cached demand span, exclusive (exposed for tests). */
    sim::SimTime demandValidUntil() const
    {
        return sim::SimTime::micros(store_->vmValidUntilUs(id_));
    }

    /** CPU granted at the last evaluation, in MHz. */
    double grantedMhz() const { return store_->vmGrantedMhz(id_); }
    void setGrantedMhz(double mhz);
    ///@}

    /** @name Migration state (maintained by MigrationEngine) */
    ///@{
    bool migrating() const { return migrating_; }
    void setMigrating(bool migrating) { migrating_ = migrating; }
    ///@}

    /** @name Lifecycle (maintained by Cluster) */
    ///@{
    /** true once the VM has departed; it no longer demands anything. */
    bool retired() const { return retired_; }
    void setRetired() { retired_ = true; }
    ///@}

  private:
    void validateSpec() const;

    // Hot members first: the lazy host-aggregate recomputes walk Vm
    // objects reading only id_ + store_, so those sit in the first cache
    // line of the object.
    VmId id_;
    FleetStore *store_;
    Host *hostPtr_ = nullptr;
    bool migrating_ = false;
    bool retired_ = false;
    workload::VmWorkloadSpec spec_;
    std::unique_ptr<FleetStore> ownedStore_; ///< standalone ctor only
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_VM_HPP
