/**
 * @file
 * FleetStore: the dense struct-of-arrays home of all per-host and per-VM
 * hot state.
 *
 * The per-tick evaluation passes used to chase `Host*`/`Vm*` pointers
 * through per-object caches; at 100k hosts that walk is a TLB/cache-miss
 * parade. The store keeps every field those passes touch — per-VM demand,
 * granted CPU, resident host, trace-span horizon; per-host aggregate
 * caches, dirty flags, latency factor, capacity, power-phase byte — in
 * parallel arrays indexed by the cluster's dense `HostId`/`VmId`, so the
 * sharded scans in DatacenterSim::evaluate() become branch-light linear
 * sweeps over contiguous memory. `Host` and `Vm` stay as thin views over
 * the store (see host.hpp / vm.hpp), so the manager, migration engine and
 * telemetry APIs are unchanged.
 *
 * Allocation is slab-wise: all columns of an entity kind grow together
 * under one geometric capacity, so registering N entities costs O(log N)
 * allocations total and the columns stay individually contiguous.
 *
 * Thread-safety contract (matches the evaluation engine's sharding):
 *  - registration and the alloc-dirty queue are main-thread only;
 *  - the per-host flag bytes are atomic — the flat VM demand-refresh pass
 *    marks hosts from VM-id-sharded workers, i.e. across host shards;
 *  - all other columns follow the owner-shard rule: a worker touches only
 *    rows of the entities its shard owns.
 */

#ifndef VPM_DATACENTER_FLEET_STORE_HPP
#define VPM_DATACENTER_FLEET_STORE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace vpm::workload {
class DemandTrace;
}

namespace vpm::dc {

/** Dense, stable VM identifier within a Cluster. */
using VmId = int;

/** Dense, stable host identifier within a Cluster. */
using HostId = int;

/** Sentinel for "no host". */
inline constexpr HostId invalidHostId = -1;

/** Struct-of-arrays hot state for one fleet of hosts and VMs. */
class FleetStore
{
  public:
    /** @name Per-host dirty-flag bits (see DESIGN.md) */
    ///@{
    static constexpr std::uint8_t kDemandDirty = 1u << 0;
    static constexpr std::uint8_t kGrantedDirty = 1u << 1;
    static constexpr std::uint8_t kMemoryDirty = 1u << 2;
    static constexpr std::uint8_t kAllocDirty = 1u << 3;
    /**
     * The host's latency factor must be recomputed, but its allocation is
     * still valid. Set by mutations that move a factor input without
     * touching grants — today only idle-hierarchy state transitions, whose
     * wake latency feeds the factor. Deliberately NOT part of kAllDirty:
     * forcing a reallocation would insert extra power-meter updates and
     * change the energy integral's summation points.
     */
    static constexpr std::uint8_t kFactorDirty = 1u << 4;
    static constexpr std::uint8_t kAllDirty =
        kDemandDirty | kGrantedDirty | kMemoryDirty | kAllocDirty;
    ///@}

    FleetStore() = default;
    FleetStore(const FleetStore &) = delete;
    FleetStore &operator=(const FleetStore &) = delete;

    /** @name Registration (main thread)
     *
     * Clusters register ids densely in order; a standalone Host/Vm (unit
     * tests) registers a single possibly-nonzero id into its private store
     * and any gap rows stay at their defaults.
     */
    ///@{
    void registerHost(HostId id, double cpu_capacity_mhz);
    void registerVm(VmId id, double cpu_mhz, double memory_mb,
                    const workload::DemandTrace *trace);
    ///@}

    std::size_t hostCount() const { return hostCount_; }
    std::size_t vmCount() const { return vmCount_; }

    /** @name Per-VM columns */
    ///@{
    double vmDemandMhz(VmId v) const { return vmDemand_[idx(v)]; }
    void setVmDemandMhz(VmId v, double mhz) { vmDemand_[idx(v)] = mhz; }

    double vmGrantedMhz(VmId v) const { return vmGranted_[idx(v)]; }
    void setVmGrantedMhz(VmId v, double mhz) { vmGranted_[idx(v)] = mhz; }

    HostId vmHost(VmId v) const { return vmHost_[idx(v)]; }
    void setVmHost(VmId v, HostId h) { vmHost_[idx(v)] = h; }

    std::int64_t vmValidUntilUs(VmId v) const
    {
        return vmValidUntilUs_[idx(v)];
    }
    void setVmValidUntilUs(VmId v, std::int64_t us)
    {
        vmValidUntilUs_[idx(v)] = us;
    }

    double vmCpuMhz(VmId v) const { return vmCpuMhz_[idx(v)]; }
    const workload::DemandTrace *vmTrace(VmId v) const
    {
        return vmTrace_[idx(v)];
    }
    ///@}

    /**
     * The flat demand-refresh kernel: re-sample each listed VM's demand
     * from its trace unless the cached span still covers @p now_us, and
     * mark the resident host demand+alloc dirty when the value changed.
     * Re-samples are per-VM independent and idempotent, so any shard
     * partition of the placed-VM list yields identical columns and flags.
     * Host marking crosses host shards, hence the atomic flag bytes.
     */
    void refreshPlacedDemand(const VmId *ids, std::size_t n,
                             std::int64_t now_us);

    /** @name Per-host columns */
    ///@{
    double hostCpuCapacityMhz(HostId h) const { return hostCapMhz_[idx(h)]; }

    double hostFrequencyFraction(HostId h) const
    {
        return hostFreqFraction_[idx(h)];
    }
    void setHostFrequencyFraction(HostId h, double f)
    {
        hostFreqFraction_[idx(h)] = f;
    }

    /** Usable CPU capacity at the current frequency, in MHz. */
    double hostEffectiveCapacityMhz(HostId h) const
    {
        return hostCapMhz_[idx(h)] * hostFreqFraction_[idx(h)];
    }

    double hostMigrationOverheadMhz(HostId h) const
    {
        return hostMigOverheadMhz_[idx(h)];
    }
    void setHostMigrationOverheadMhz(HostId h, double mhz)
    {
        hostMigOverheadMhz_[idx(h)] = mhz;
    }

    /** @name Memoized per-host aggregates (see Host's lazy recomputes) */
    ///@{
    double hostDemandCacheMhz(HostId h) const
    {
        return hostDemandCache_[idx(h)];
    }
    /** Install a freshly recomputed demand aggregate and mark it clean. */
    void setHostDemandCacheClean(HostId h, double mhz)
    {
        hostDemandCache_[idx(h)] = mhz;
        clearHostFlags(h, kDemandDirty);
    }

    double hostGrantedCacheMhz(HostId h) const
    {
        return hostGrantedCache_[idx(h)];
    }
    void setHostGrantedCacheClean(HostId h, double mhz)
    {
        hostGrantedCache_[idx(h)] = mhz;
        clearHostFlags(h, kGrantedDirty);
    }

    double hostMemoryCacheMb(HostId h) const
    {
        return hostMemoryCache_[idx(h)];
    }
    void setHostMemoryCacheClean(HostId h, double mb)
    {
        hostMemoryCache_[idx(h)] = mb;
        clearHostFlags(h, kMemoryDirty);
    }
    ///@}

    /** Mirror of EnergyMeter::heldWatts(), maintained by
     *  Host::updatePowerDraw so telemetry sweeps read a contiguous
     *  column instead of chasing meters. */
    double hostHeldWatts(HostId h) const { return hostHeldWatts_[idx(h)]; }
    void setHostHeldWatts(HostId h, double watts)
    {
        hostHeldWatts_[idx(h)] = watts;
    }

    /** Latency-factor scratch written by the evaluate() host pass and
     *  gathered by the VM sampling pass; sized at registration, not per
     *  tick. */
    double latencyFactor(HostId h) const { return latencyFactor_[idx(h)]; }
    void setLatencyFactor(HostId h, double f) { latencyFactor_[idx(h)] = f; }

    bool hostHasHierarchy(HostId h) const
    {
        return hostHasHierarchy_[idx(h)] != 0;
    }
    void setHostHasHierarchy(HostId h, bool has)
    {
        hostHasHierarchy_[idx(h)] = has ? 1 : 0;
    }
    ///@}

    /** @name Power-phase byte + O(1) fleet counts
     *
     * Maintained by the Host's own FSM observer (registered first, so any
     * later observer already sees updated counts). The byte holds the
     * power::PowerPhase enumerator value.
     */
    ///@{
    void setHostPhase(HostId h, std::uint8_t phase);
    std::uint8_t hostPhase(HostId h) const { return hostPhase_[idx(h)]; }
    bool hostIsOn(HostId h) const { return hostPhase_[idx(h)] == kPhaseOn; }

    int hostsOn() const { return hostsOn_; }
    int hostsAsleep() const { return hostsAsleep_; }
    int hostsTransitioning() const { return hostsTransitioning_; }
    ///@}

    /** @name Dirty flags (atomic: marked across shards) */
    ///@{
    std::uint8_t hostFlags(HostId h) const
    {
        return hostFlags_[idx(h)].load(std::memory_order_relaxed);
    }
    void markHost(HostId h, std::uint8_t bits)
    {
        hostFlags_[idx(h)].fetch_or(bits, std::memory_order_relaxed);
        if (rackWidth_ != 0)
            rackDirty_[idx(h) / rackWidth_].store(
                1, std::memory_order_relaxed);
    }
    void clearHostFlags(HostId h, std::uint8_t bits)
    {
        hostFlags_[idx(h)].fetch_and(
            static_cast<std::uint8_t>(~bits), std::memory_order_relaxed);
    }
    /** Mark kFactorDirty without touching the rack dirty bit: the rack
     *  aggregates carry no factor input, so hierarchy transitions must
     *  not defeat the tree's incremental maintenance. */
    void markHostFactorDirty(HostId h)
    {
        hostFlags_[idx(h)].fetch_or(kFactorDirty,
                                    std::memory_order_relaxed);
    }
    ///@}

    /** @name Alloc-dirty queue (main thread)
     *
     * Every main-thread mutation that sets kAllocDirty also enqueues the
     * host here (deduplicated), so reallocate() visits O(dirty hosts)
     * instead of sweeping the fleet. The evaluate() host pass services
     * every host, so it clears the queue wholesale afterwards. The only
     * kAllocDirty producer that does not enqueue is the sharded demand-
     * refresh kernel, which runs inside evaluate() and is therefore always
     * serviced by the very pass that follows it.
     */
    ///@{
    void queueAllocDirty(HostId h)
    {
        if (hostQueued_[idx(h)])
            return;
        hostQueued_[idx(h)] = 1;
        allocQueue_.push_back(h);
    }

    /** Hosts queued since the last drain/clear, in enqueue order. */
    const std::vector<HostId> &allocQueue() const { return allocQueue_; }

    /** Empty the queue and reset the membership bytes. */
    void clearAllocQueue()
    {
        for (const HostId h : allocQueue_)
            hostQueued_[idx(h)] = 0;
        allocQueue_.clear();
    }
    ///@}

    /** @name Rack dirtiness (consumed by FleetTree)
     *
     * With a rack width configured, markHost() also marks the host's rack,
     * so hierarchical management recomputes only aggregates whose inputs
     * moved. Width 0 (the default) disables the bookkeeping.
     */
    ///@{
    void setRackWidth(std::size_t hosts_per_rack);
    std::size_t rackWidth() const { return rackWidth_; }
    std::size_t rackCount() const { return rackDirty_.size(); }
    bool rackDirty(std::size_t rack) const
    {
        return rackDirty_[rack].load(std::memory_order_relaxed) != 0;
    }
    void clearRackDirty(std::size_t rack)
    {
        rackDirty_[rack].store(0, std::memory_order_relaxed);
    }
    void markAllRacksDirty()
    {
        for (auto &d : rackDirty_)
            d.store(1, std::memory_order_relaxed);
    }
    ///@}

    /**
     * Append every simulation-visible column to @p out in a fixed,
     * documented order (vpm-ckpt-1 "fleet" section). Byte-stable: two
     * stores that went through identical mutation histories produce
     * identical bytes. The atomic flag bytes are read relaxed — callers
     * capture between evaluation passes, when no shard workers run. The
     * trace pointers are excluded (addresses are not reproducible);
     * per-VM trace identity is carried by the replay spec instead.
     */
    void appendSnapshot(std::vector<std::uint8_t> &out) const;

    /** @name Raw column access (read-only, for linear sweeps) */
    ///@{
    const double *vmDemandData() const { return vmDemand_.get(); }
    const double *vmGrantedData() const { return vmGranted_.get(); }
    const double *hostHeldWattsData() const { return hostHeldWatts_.get(); }
    const double *hostDemandCacheData() const
    {
        return hostDemandCache_.get();
    }
    const double *latencyFactorData() const { return latencyFactor_.get(); }
    ///@}

  private:
    /** power::PowerPhase::On as a byte (static_asserted in the .cpp). */
    static constexpr std::uint8_t kPhaseOn = 0;
    static constexpr std::uint8_t kPhaseEntering = 1;
    static constexpr std::uint8_t kPhaseAsleep = 2;
    static constexpr std::uint8_t kPhaseExiting = 3;

    static std::size_t idx(int id) { return static_cast<std::size_t>(id); }

    /** Grow every host (resp. VM) column to hold at least @p n rows,
     *  slab-wise: one geometric capacity shared by all columns of the
     *  kind. New rows get the documented defaults. */
    void growHosts(std::size_t n);
    void growVms(std::size_t n);

    template <typename T>
    static void growColumn(std::unique_ptr<T[]> &col, std::size_t old_count,
                           std::size_t new_cap, T fill);

    std::size_t hostCount_ = 0;
    std::size_t hostCap_ = 0;
    std::size_t vmCount_ = 0;
    std::size_t vmCap_ = 0;

    // Per-VM columns.
    std::unique_ptr<double[]> vmDemand_;
    std::unique_ptr<double[]> vmGranted_;
    std::unique_ptr<double[]> vmCpuMhz_;
    std::unique_ptr<std::int64_t[]> vmValidUntilUs_;
    std::unique_ptr<HostId[]> vmHost_;
    std::unique_ptr<const workload::DemandTrace *[]> vmTrace_;
    /** 1 when the trace is point-span (DemandTrace::pointSpan()): the
     *  refresh kernel then resamples unconditionally and skips the span
     *  struct and the validity column. */
    std::unique_ptr<std::uint8_t[]> vmPointSpan_;

    // Per-host columns.
    std::unique_ptr<double[]> hostCapMhz_;
    std::unique_ptr<double[]> hostFreqFraction_;
    std::unique_ptr<double[]> hostMigOverheadMhz_;
    std::unique_ptr<double[]> hostDemandCache_;
    std::unique_ptr<double[]> hostGrantedCache_;
    std::unique_ptr<double[]> hostMemoryCache_;
    std::unique_ptr<double[]> hostHeldWatts_;
    std::unique_ptr<double[]> latencyFactor_;
    std::unique_ptr<std::atomic<std::uint8_t>[]> hostFlags_;
    std::unique_ptr<std::uint8_t[]> hostQueued_;
    std::unique_ptr<std::uint8_t[]> hostPhase_;
    std::unique_ptr<std::uint8_t[]> hostHasHierarchy_;

    int hostsOn_ = 0;
    int hostsAsleep_ = 0;
    int hostsTransitioning_ = 0;

    std::vector<HostId> allocQueue_;

    std::size_t rackWidth_ = 0;
    std::vector<std::atomic<std::uint8_t>> rackDirty_;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_FLEET_STORE_HPP
