#include "datacenter/topology.hpp"

#include "simcore/logging.hpp"

namespace vpm::dc {

Topology::Topology(int host_count, const TopologyConfig &config)
    : config_(config), hostCount_(host_count)
{
    if (host_count < 1)
        sim::fatal("Topology: need at least one host");
    if (config_.hostsPerRack < 1)
        sim::fatal("Topology: hosts per rack must be >= 1");
    if (config_.intraRackBandwidthMbPerSec <= 0.0 ||
        config_.interRackBandwidthMbPerSec <= 0.0) {
        sim::fatal("Topology: bandwidths must be positive");
    }
    if (config_.uplinkMigrationSlotsPerRack < 1)
        sim::fatal("Topology: need at least one uplink slot per rack");

    rackCount_ =
        (host_count + config_.hostsPerRack - 1) / config_.hostsPerRack;
    uplinkFlows_.assign(static_cast<std::size_t>(rackCount_), 0);
}

RackId
Topology::rackOf(HostId host) const
{
    if (host < 0 || host >= hostCount_)
        sim::panic("Topology::rackOf: invalid host id %d", host);
    return host / config_.hostsPerRack;
}

bool
Topology::sameRack(HostId a, HostId b) const
{
    return rackOf(a) == rackOf(b);
}

std::vector<HostId>
Topology::hostsInRack(RackId rack) const
{
    if (rack < 0 || rack >= rackCount_)
        sim::panic("Topology::hostsInRack: invalid rack id %d", rack);
    std::vector<HostId> hosts;
    for (HostId h = rack * config_.hostsPerRack;
         h < (rack + 1) * config_.hostsPerRack && h < hostCount_; ++h) {
        hosts.push_back(h);
    }
    return hosts;
}

double
Topology::bandwidthBetween(HostId a, HostId b) const
{
    return sameRack(a, b) ? config_.intraRackBandwidthMbPerSec
                          : config_.interRackBandwidthMbPerSec;
}

bool
Topology::uplinkSlotsFree(HostId a, HostId b) const
{
    if (sameRack(a, b))
        return true;
    return uplinkFlows_[static_cast<std::size_t>(rackOf(a))] <
               config_.uplinkMigrationSlotsPerRack &&
           uplinkFlows_[static_cast<std::size_t>(rackOf(b))] <
               config_.uplinkMigrationSlotsPerRack;
}

void
Topology::acquireUplink(HostId a, HostId b)
{
    if (sameRack(a, b))
        return;
    ++uplinkFlows_[static_cast<std::size_t>(rackOf(a))];
    ++uplinkFlows_[static_cast<std::size_t>(rackOf(b))];
}

void
Topology::releaseUplink(HostId a, HostId b)
{
    if (sameRack(a, b))
        return;
    for (const RackId rack : {rackOf(a), rackOf(b)}) {
        int &flows = uplinkFlows_[static_cast<std::size_t>(rack)];
        if (flows <= 0)
            sim::panic("Topology: uplink release underflow on rack %d",
                       rack);
        --flows;
    }
}

int
Topology::uplinkFlows(RackId rack) const
{
    if (rack < 0 || rack >= rackCount_)
        sim::panic("Topology::uplinkFlows: invalid rack id %d", rack);
    return uplinkFlows_[static_cast<std::size_t>(rack)];
}

} // namespace vpm::dc
