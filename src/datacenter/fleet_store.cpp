#include "datacenter/fleet_store.hpp"

#include <algorithm>
#include <limits>

#include "power/power_state_machine.hpp"
#include "simcore/logging.hpp"
#include "workload/demand_trace.hpp"

namespace vpm::dc {

// The phase byte stores the PowerPhase enumerator directly; the O(1)
// count bookkeeping below keys off these values.
static_assert(static_cast<int>(power::PowerPhase::On) == 0,
              "FleetStore phase byte encoding must match PowerPhase");
static_assert(static_cast<int>(power::PowerPhase::Entering) == 1,
              "FleetStore phase byte encoding must match PowerPhase");
static_assert(static_cast<int>(power::PowerPhase::Asleep) == 2,
              "FleetStore phase byte encoding must match PowerPhase");
static_assert(static_cast<int>(power::PowerPhase::Exiting) == 3,
              "FleetStore phase byte encoding must match PowerPhase");

template <typename T>
void
FleetStore::growColumn(std::unique_ptr<T[]> &col, std::size_t old_count,
                       std::size_t new_cap, T fill)
{
    std::unique_ptr<T[]> grown(new T[new_cap]);
    for (std::size_t i = 0; i < old_count; ++i)
        grown[i] = col[i];
    for (std::size_t i = old_count; i < new_cap; ++i)
        grown[i] = fill;
    col = std::move(grown);
}

// std::atomic is not copyable; relaxed value copies are fine because
// growth is main-thread only (registration happens between parallel
// passes, never inside one).
static void
growAtomicColumn(std::unique_ptr<std::atomic<std::uint8_t>[]> &col,
                 std::size_t old_count, std::size_t new_cap,
                 std::uint8_t fill)
{
    std::unique_ptr<std::atomic<std::uint8_t>[]> grown(
        new std::atomic<std::uint8_t>[new_cap]);
    for (std::size_t i = 0; i < old_count; ++i)
        grown[i].store(col[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    for (std::size_t i = old_count; i < new_cap; ++i)
        grown[i].store(fill, std::memory_order_relaxed);
    col = std::move(grown);
}

void
FleetStore::growHosts(std::size_t n)
{
    if (n <= hostCap_)
        return;
    const std::size_t cap = std::max({n, hostCap_ * 2, std::size_t{16}});
    growColumn(hostCapMhz_, hostCount_, cap, 0.0);
    growColumn(hostFreqFraction_, hostCount_, cap, 1.0);
    growColumn(hostMigOverheadMhz_, hostCount_, cap, 0.0);
    growColumn(hostDemandCache_, hostCount_, cap, 0.0);
    growColumn(hostGrantedCache_, hostCount_, cap, 0.0);
    growColumn(hostMemoryCache_, hostCount_, cap, 0.0);
    growColumn(hostHeldWatts_, hostCount_, cap, 0.0);
    growColumn(latencyFactor_, hostCount_, cap, 0.0);
    // Born kFactorDirty as well: the latency factor column holds garbage
    // until the first evaluate pass writes it, and only that write may
    // clear the bit — which is what makes the pass's skip-if-clean gate
    // safe against pre-tick flag clears (reallocate + a lazy memory read
    // can zero every kAllDirty bit before the first tick).
    growAtomicColumn(hostFlags_, hostCount_, cap, kAllDirty | kFactorDirty);
    growColumn(hostQueued_, hostCount_, cap, std::uint8_t{0});
    growColumn(hostPhase_, hostCount_, cap, kPhaseOn);
    growColumn(hostHasHierarchy_, hostCount_, cap, std::uint8_t{0});
    hostCap_ = cap;
}

void
FleetStore::growVms(std::size_t n)
{
    if (n <= vmCap_)
        return;
    const std::size_t cap = std::max({n, vmCap_ * 2, std::size_t{16}});
    growColumn(vmDemand_, vmCount_, cap, 0.0);
    growColumn(vmGranted_, vmCount_, cap, 0.0);
    growColumn(vmCpuMhz_, vmCount_, cap, 0.0);
    growColumn(vmValidUntilUs_, vmCount_, cap,
               std::numeric_limits<std::int64_t>::min());
    growColumn(vmHost_, vmCount_, cap, invalidHostId);
    growColumn<const workload::DemandTrace *>(vmTrace_, vmCount_, cap,
                                              nullptr);
    growColumn(vmPointSpan_, vmCount_, cap, std::uint8_t{0});
    vmCap_ = cap;
}

void
FleetStore::registerHost(HostId id, double cpu_capacity_mhz)
{
    if (id < 0)
        sim::panic("FleetStore::registerHost: negative host id %d", id);
    const std::size_t want = idx(id) + 1;
    growHosts(want);
    // Gap rows (standalone Hosts with nonzero ids) keep column defaults;
    // they are Off-the-books and never iterated by a cluster.
    while (hostCount_ < want) {
        // Hosts are born On (PowerStateMachine's initial phase).
        ++hostsOn_;
        ++hostCount_;
    }
    hostCapMhz_[idx(id)] = cpu_capacity_mhz;
    hostFlags_[idx(id)].store(kAllDirty | kFactorDirty,
                              std::memory_order_relaxed);
    queueAllocDirty(id);
}

void
FleetStore::registerVm(VmId id, double cpu_mhz, double memory_mb,
                       const workload::DemandTrace *trace)
{
    if (id < 0)
        sim::panic("FleetStore::registerVm: negative VM id %d", id);
    (void)memory_mb; // sized columns may want it later; spec keeps it now
    const std::size_t want = idx(id) + 1;
    growVms(want);
    vmCount_ = std::max(vmCount_, want);
    vmCpuMhz_[idx(id)] = cpu_mhz;
    vmTrace_[idx(id)] = trace;
    vmPointSpan_[idx(id)] = trace != nullptr && trace->pointSpan() ? 1 : 0;
}

void
FleetStore::setHostPhase(HostId h, std::uint8_t phase)
{
    const std::uint8_t old = hostPhase_[idx(h)];
    if (old == phase)
        return;
    const auto counts = [this](std::uint8_t p) -> int * {
        switch (p) {
        case kPhaseOn: return &hostsOn_;
        case kPhaseAsleep: return &hostsAsleep_;
        default: return &hostsTransitioning_;
        }
    };
    --*counts(old);
    ++*counts(phase);
    hostPhase_[idx(h)] = phase;
}

void
FleetStore::refreshPlacedDemand(const VmId *ids, std::size_t n,
                                std::int64_t now_us)
{
    const sim::SimTime now = sim::SimTime::micros(now_us);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t v = idx(ids[k]);
        double demand;
        if (vmPointSpan_[v]) {
            // Point-span traces (the diurnal workhorse) need a fresh
            // sample every tick by definition: same utilizationAt() value
            // the span path would produce, minus the span struct and the
            // validity read/write.
            demand = vmTrace_[v]->utilizationAt(now) * vmCpuMhz_[v];
        } else {
            if (now_us < vmValidUntilUs_[v])
                continue;
            const workload::DemandSpan span = vmTrace_[v]->spanAt(now);
            vmValidUntilUs_[v] = span.validUntil.micros();
            demand = span.utilization * vmCpuMhz_[v];
        }
        if (demand == vmDemand_[v])
            continue;
        vmDemand_[v] = demand;
        // Guard against corrupt/stale placement records (negative or
        // out-of-range ids), like the sampling pass's starved fallback.
        const HostId h = vmHost_[v];
        if (h >= 0 && idx(h) < hostCount_) {
            // Several co-resident VMs re-mark the same host every tick; a
            // relaxed pre-check skips the RMW (and the rack re-mark) once
            // the bits are already set. Safe for the rack bookkeeping:
            // kDemandDirty can only be set by a markHost() that also
            // dirtied the rack, and FleetTree::refresh() clears members'
            // kDemandDirty before a rack bit is cleared, so "kDemandDirty
            // set" implies "rack already dirty".
            constexpr std::uint8_t bits = kDemandDirty | kAllocDirty;
            if ((hostFlags_[idx(h)].load(std::memory_order_relaxed) &
                 bits) != bits)
                markHost(h, bits);
        }
    }
}

void
FleetStore::appendSnapshot(std::vector<std::uint8_t> &out) const
{
    const auto append = [&out](const void *data, std::size_t n) {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        out.insert(out.end(), bytes, bytes + n);
    };
    const auto appendU64 = [&append](std::uint64_t v) {
        append(&v, sizeof(v));
    };
    const auto appendColumn = [&append](const auto &col, std::size_t n,
                                        std::size_t elem) {
        if (n > 0)
            append(col.get(), n * elem);
    };

    appendU64(vmCount_);
    appendColumn(vmDemand_, vmCount_, sizeof(double));
    appendColumn(vmGranted_, vmCount_, sizeof(double));
    appendColumn(vmCpuMhz_, vmCount_, sizeof(double));
    appendColumn(vmValidUntilUs_, vmCount_, sizeof(std::int64_t));
    appendColumn(vmHost_, vmCount_, sizeof(HostId));
    appendColumn(vmPointSpan_, vmCount_, sizeof(std::uint8_t));

    appendU64(hostCount_);
    appendColumn(hostCapMhz_, hostCount_, sizeof(double));
    appendColumn(hostFreqFraction_, hostCount_, sizeof(double));
    appendColumn(hostMigOverheadMhz_, hostCount_, sizeof(double));
    appendColumn(hostDemandCache_, hostCount_, sizeof(double));
    appendColumn(hostGrantedCache_, hostCount_, sizeof(double));
    appendColumn(hostMemoryCache_, hostCount_, sizeof(double));
    appendColumn(hostHeldWatts_, hostCount_, sizeof(double));
    appendColumn(latencyFactor_, hostCount_, sizeof(double));
    for (std::size_t i = 0; i < hostCount_; ++i) {
        const std::uint8_t f =
            hostFlags_[i].load(std::memory_order_relaxed);
        append(&f, 1);
    }
    appendColumn(hostQueued_, hostCount_, sizeof(std::uint8_t));
    appendColumn(hostPhase_, hostCount_, sizeof(std::uint8_t));
    appendColumn(hostHasHierarchy_, hostCount_, sizeof(std::uint8_t));

    appendU64(static_cast<std::uint64_t>(hostsOn_));
    appendU64(static_cast<std::uint64_t>(hostsAsleep_));
    appendU64(static_cast<std::uint64_t>(hostsTransitioning_));

    appendU64(allocQueue_.size());
    if (!allocQueue_.empty())
        append(allocQueue_.data(), allocQueue_.size() * sizeof(HostId));
}

void
FleetStore::setRackWidth(std::size_t hosts_per_rack)
{
    if (hosts_per_rack == 0)
        sim::panic("FleetStore::setRackWidth: width must be positive");
    rackWidth_ = hosts_per_rack;
    const std::size_t racks =
        (hostCount_ + hosts_per_rack - 1) / hosts_per_rack;
    rackDirty_ = std::vector<std::atomic<std::uint8_t>>(racks);
    markAllRacksDirty();
}

} // namespace vpm::dc
