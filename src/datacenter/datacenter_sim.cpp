#include "datacenter/datacenter_sim.hpp"

#include <algorithm>
#include <utility>

#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::dc {

DatacenterSim::DatacenterSim(sim::Simulator &simulator, Cluster &cluster,
                             MigrationEngine &migration,
                             const DatacenterConfig &config)
    : simulator_(simulator), cluster_(cluster), migration_(migration),
      config_(config), sla_(config.slaThreshold),
      hostsOnTracker_(simulator.now(), 0.0)
{
    if (config_.evaluationInterval <= sim::SimTime())
        sim::fatal("DatacenterSim: evaluation interval must be positive");
}

void
DatacenterSim::start()
{
    if (started_)
        sim::panic("DatacenterSim::start called twice");
    started_ = true;
    startedAt_ = simulator_.now();
    hostsOnTracker_ =
        stats::TimeWeighted(simulator_.now(),
                            static_cast<double>(cluster_.hostsOn()));

    // Track the hosts-on signal exactly: it changes only on phase edges.
    for (const auto &host_ptr : cluster_.hosts()) {
        host_ptr->powerFsm().addObserver(
            [this](power::PowerPhase, power::PowerPhase) {
                hostsOnTracker_.update(
                    simulator_.now(),
                    static_cast<double>(cluster_.hostsOn()));
            });
    }

    migration_.setOnComplete(
        [this](VmId, HostId, HostId) { reallocate(); });

    simulator_.schedule(sim::SimTime(), [this] { evaluationTick(); },
                        "dcsim.evaluate");
}

void
DatacenterSim::evaluationTick()
{
    PROF_ZONE("dcsim.tick");
    evaluate();
    for (const EvaluationHook &hook : hooks_)
        hook();
    sampleTelemetry();
    simulator_.schedule(config_.evaluationInterval,
                        [this] { evaluationTick(); }, "dcsim.evaluate");
}

void
DatacenterSim::sampleTelemetry()
{
    PROF_ZONE("dcsim.sample_telemetry");
    telemetry::Telemetry &tel = telemetry::global();
    if (!tel.enabled())
        return;

    // O(hosts): powerWatts and vmDemandMhz read the aggregates the
    // evaluate pass just memoized instead of re-summing every VM.
    double watts = 0.0;
    double demand_mhz = 0.0;
    for (const auto &host_ptr : cluster_.hosts()) {
        watts += host_ptr->powerWatts();
        demand_mhz += host_ptr->vmDemandMhz();
    }
    tel.metrics().gauge("cluster.power.watts").set(watts);
    tel.metrics().gauge("cluster.hosts.on")
        .set(static_cast<double>(cluster_.hostsOn()));
    tel.metrics().gauge("cluster.demand.mhz").set(demand_mhz);
    tel.sampleSeries(simulator_.now().micros());
}

void
DatacenterSim::evaluate()
{
    PROF_ZONE("dcsim.evaluate");
    // Only placed VMs demand CPU: retired VMs are gone, and pending
    // arrivals have not started working (their wait shows up in the
    // provisioning engine's placement-delay stats, not in the SLA).
    // refreshDemand re-samples a trace only once its cached span expires;
    // piecewise-constant traces therefore cost one lookup per segment
    // instead of one per tick, and a value that did change marks the
    // resident host dirty for the allocation pass below.
    const sim::SimTime now = simulator_.now();
    const std::vector<Vm *> &placed = placedVms();
    for (Vm *vm_ptr : placed)
        vm_ptr->refreshDemand(now);

    for (const auto &host_ptr : cluster_.hosts()) {
        if (host_ptr->allocDirty()) {
            allocateHost(*host_ptr);
            host_ptr->clearAllocDirty();
        }
    }

    // The latency factor is a per-host quantity; evaluate it once per host
    // with the same expression the per-VM samples used, so each VM reads
    // an identical value without redoing the division five times.
    latencyFactor_.resize(cluster_.hosts().size());
    for (std::size_t i = 0; i < cluster_.hosts().size(); ++i) {
        const Host &host = *cluster_.hosts()[i];
        const double rho =
            host.isOn() ? std::min(host.utilization(), 0.95) : 0.95;
        latencyFactor_[i] = 1.0 / (1.0 - rho);
    }

    // One SLA sample per placed VM per evaluation. A VM stranded on a
    // non-On host counts as fully starved.
    telemetry::EventJournal &journal = telemetry::global().journal();
    const bool journal_on = journal.enabled();
    for (const Vm *vm_ptr : placed) {
        const double demand = vm_ptr->currentDemandMhz();
        sla_.record(demand, vm_ptr->grantedMhz());

        // Journal each sample that falls below the SLA threshold.
        if (journal_on && demand > 0.0) {
            const double sat = vm_ptr->grantedMhz() / demand;
            if (sat < config_.slaThreshold)
                journal.slaViolation(now.micros(), vm_ptr->id(), sat,
                                     demand);
        }

        // Response-time inflation of the VM's host, M/M/1-style. Starved
        // VMs (host off, or rho pinned at the cap) land at the ceiling.
        const double factor =
            latencyFactor_[static_cast<std::size_t>(vm_ptr->host())];
        latencyHist_.add(factor);
        if (demand > 0.0)
            latencyWeighted_.add(factor);
    }
}

const std::vector<Vm *> &
DatacenterSim::placedVms()
{
    const std::uint64_t epoch = cluster_.placementEpoch();
    if (epoch != placedEpoch_) {
        placedVms_.clear();
        for (const auto &vm_ptr : cluster_.vms()) {
            if (vm_ptr->placed())
                placedVms_.push_back(vm_ptr.get());
        }
        placedEpoch_ = epoch;
    }
    return placedVms_;
}

void
DatacenterSim::reallocate()
{
    // Dirty-gated sweep: only hosts whose allocation inputs changed since
    // their last pass (membership, demand, overhead, frequency, power
    // phase) are re-run. A migration landing therefore re-spreads just its
    // source and destination instead of the whole cluster.
    PROF_ZONE("dcsim.reallocate");
    for (const auto &host_ptr : cluster_.hosts()) {
        if (host_ptr->allocDirty()) {
            allocateHost(*host_ptr);
            host_ptr->clearAllocDirty();
        }
    }
}

void
DatacenterSim::allocateHost(Host &host)
{
    if (!host.isOn()) {
        // VMs cannot run on a host that is not On. The management layer
        // never suspends occupied hosts; this branch covers hand-scripted
        // experiments and failure injection.
        for (Vm *vm : host.vms())
            vm->setGrantedMhz(0.0);
        return;
    }

    const double available = std::max(
        host.effectiveCpuCapacityMhz() - host.migrationOverheadMhz(), 0.0);
    const double demand = host.vmDemandMhz();

    if (demand <= available) {
        for (Vm *vm : host.vms())
            vm->setGrantedMhz(vm->currentDemandMhz());
    } else {
        // Proportional share under contention, hypervisor-style.
        const double share = demand > 0.0 ? available / demand : 0.0;
        for (Vm *vm : host.vms())
            vm->setGrantedMhz(vm->currentDemandMhz() * share);
    }
    host.updatePowerDraw();
}

RunMetrics
DatacenterSim::metrics()
{
    const sim::SimTime now = simulator_.now();
    cluster_.finishMetering(now);
    hostsOnTracker_.finish(now);

    RunMetrics m;
    m.energyKwh = cluster_.totalEnergyJoules() / 3.6e6;
    const double span_s = (now - startedAt_).toSeconds();
    m.averagePowerWatts =
        span_s > 0.0 ? cluster_.totalEnergyJoules() / span_s : 0.0;
    m.satisfaction = sla_.satisfaction();
    m.violationFraction = sla_.violationFraction();
    m.p5Performance = sla_.performancePercentile(0.05);
    m.worstPerformance = sla_.worstPerformance();
    m.meanLatencyFactor =
        latencyWeighted_.count() > 0 ? latencyWeighted_.mean() : 1.0;
    m.p95LatencyFactor =
        latencyHist_.count() > 0 ? latencyHist_.percentile(0.95) : 1.0;
    m.averageHostsOn = hostsOnTracker_.average();
    m.migrations = migration_.completedCount();
    m.powerActions = cluster_.powerActionCount();
    m.simulatedHours = (now - startedAt_).toHours();
    return m;
}

RunMetrics
DatacenterSim::runFor(sim::SimTime duration)
{
    if (!started_)
        start();
    simulator_.runUntil(simulator_.now() + duration);
    return metrics();
}

void
DatacenterSim::addEvaluationHook(EvaluationHook hook)
{
    if (!hook)
        sim::panic("DatacenterSim::addEvaluationHook: null hook");
    hooks_.push_back(std::move(hook));
}

} // namespace vpm::dc
