#include "datacenter/datacenter_sim.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "power/idle_hierarchy.hpp"
#include "simcore/logging.hpp"
#include "simcore/thread_pool.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::dc {

namespace {

/**
 * Sharding grains for the per-tick parallel passes. These are part of the
 * determinism contract: ThreadPool::shardCount depends only on the item
 * count and the grain, so every run of the same scenario — at any
 * --threads value — sees the same shard structure and therefore the same
 * reduction order (and bytes). Sized so unit-test clusters collapse to a
 * single shard (the exact sequential accumulation path) while f7-scale
 * cells fan out.
 */
constexpr std::size_t kHostShardGrain = 8;
constexpr std::size_t kVmShardGrain = 64;

/**
 * Grain of the flat demand-refresh pass. Unlike the SLA sampling pass,
 * the refresh kernel folds nothing — re-samples are per-VM independent
 * and idempotent — so its shard structure is not part of the determinism
 * contract and can use a coarse grain that keeps per-shard dispatch
 * overhead negligible at millions of VMs.
 */
constexpr std::size_t kVmRefreshShardGrain = 4096;

/** Utilization cap of the M/M/1-style latency model (keeps 1/(1-rho)
 *  finite); a host that cannot run its VMs is treated as pinned here. */
constexpr double kUtilizationCap = 0.95;

/** Latency factor of a fully starved VM — the model's ceiling, and the
 *  value substituted when a VM carries a stale/out-of-range host id. */
constexpr double kStarvedLatencyFactor = 1.0 / (1.0 - kUtilizationCap);

} // namespace

DatacenterSim::DatacenterSim(sim::Simulator &simulator, Cluster &cluster,
                             MigrationEngine &migration,
                             const DatacenterConfig &config)
    : simulator_(simulator), cluster_(cluster), migration_(migration),
      config_(config), sla_(config.slaThreshold),
      hostsOnTracker_(simulator.now(), 0.0)
{
    if (config_.evaluationInterval <= sim::SimTime())
        sim::fatal("DatacenterSim: evaluation interval must be positive");
}

void
DatacenterSim::start()
{
    if (started_)
        sim::panic("DatacenterSim::start called twice");
    started_ = true;
    startedAt_ = simulator_.now();
    hostsOnTracker_ =
        stats::TimeWeighted(simulator_.now(),
                            static_cast<double>(cluster_.hostsOn()));

    // Track the hosts-on signal exactly: it changes only on phase edges.
    for (const auto &host_ptr : cluster_.hosts()) {
        host_ptr->powerFsm().addObserver(
            [this](power::PowerPhase, power::PowerPhase) {
                hostsOnTracker_.update(
                    simulator_.now(),
                    static_cast<double>(cluster_.hostsOn()));
                hostCountsDirty_ = true;
            });
    }

    migration_.setOnComplete(
        [this](VmId, HostId, HostId) { reallocate(); });

    simulator_.schedule(sim::SimTime(), [this] { evaluationTick(); },
                        "dcsim.evaluate");
}

void
DatacenterSim::evaluationTick()
{
    PROF_ZONE("dcsim.tick");
    evaluate();
    for (const EvaluationHook &hook : hooks_)
        hook();
    sampleTelemetry();
    simulator_.schedule(config_.evaluationInterval,
                        [this] { evaluationTick(); }, "dcsim.evaluate");
}

std::size_t
DatacenterSim::idleOccSlot(const std::string &name)
{
    const auto it = idleOccIndex_.find(name);
    if (it != idleOccIndex_.end())
        return it->second;
    const std::size_t idx = idleOccSlots_.size();
    IdleOccSlot slot;
    slot.name = name;
    slot.gauge = &telemetry::global().metrics().gauge(name);
    idleOccSlots_.push_back(std::move(slot));
    idleOccIndex_.emplace(name, idx);
    idleOccOrder_.push_back(idx);
    // Slot creation is rare (new level name); re-sorting here keeps every
    // per-tick visit a plain ordered walk.
    std::sort(idleOccOrder_.begin(), idleOccOrder_.end(),
              [this](std::size_t a, std::size_t b) {
                  return idleOccSlots_[a].name < idleOccSlots_[b].name;
              });
    return idx;
}

void
DatacenterSim::sampleTelemetry()
{
    PROF_ZONE("dcsim.sample_telemetry");
    telemetry::Telemetry &tel = telemetry::global();
    if (!tel.enabled())
        return;

    // O(hosts) of plain loads: the evaluate pass just pushed each host's
    // power into its energy meter (updatePowerDraw) and refreshed the
    // per-host demand cache, so summing heldWatts()/vmDemandMhz() here
    // reads memoized values instead of recomputing the power model per
    // host — and reports exactly the power the energy accounting is
    // integrating.
    double watts = 0.0;
    double demand_mhz = 0.0;
    // Per-level idle-hierarchy occupancy across the fleet: how many cores
    // (and packages) are resident at each named state right now. A slot
    // whose epoch matches this tick was touched; everything else reads 0.
    ++idleOccEpoch_;
    const auto touch = [this](std::size_t idx, double v) {
        IdleOccSlot &slot = idleOccSlots_[idx];
        if (slot.epoch != idleOccEpoch_) {
            slot.epoch = idleOccEpoch_;
            slot.value = 0.0;
        }
        slot.value += v;
    };
    bool any_hierarchy = false;
    const FleetStore &fleet = cluster_.fleet();
    const auto &hosts = cluster_.hosts();
    const double *held_watts = fleet.hostHeldWattsData();
    const double *demand_cache = fleet.hostDemandCacheData();
    const std::size_t host_count = fleet.hostCount();
    for (std::size_t i = 0; i < host_count; ++i) {
        const HostId h = static_cast<HostId>(i);
        // The evaluate pass leaves every allocator-serviced host's demand
        // cache clean; hosts it skipped (e.g. off hosts with residents,
        // from failure injection) recompute lazily here, exactly like the
        // historical vmDemandMhz() walk.
        if (fleet.hostFlags(h) & FleetStore::kDemandDirty)
            (void)hosts[i]->vmDemandMhz();
        watts += held_watts[i];
        demand_mhz += demand_cache[i];
        if (!fleet.hostHasHierarchy(h))
            continue;
        const Host *host_ptr = hosts[i].get();
        if (const power::IdleHierarchy *hier = host_ptr->idleHierarchy()) {
            any_hierarchy = true;
            if (!hier->active())
                continue;
            const power::IdleHierarchySpec &spec = hier->spec();
            auto spec_it = idleSpecSlots_.find(&spec);
            if (spec_it == idleSpecSlots_.end()) {
                SpecOccSlots fresh;
                fresh.coreC0 = idleOccSlot("cluster.idle.core.C0");
                fresh.pkgC0 = idleOccSlot("cluster.idle.pkg.C0");
                for (const auto &state : spec.coreStates)
                    fresh.coreByDepth.push_back(
                        idleOccSlot("cluster.idle.core." + state.name));
                for (const auto &state : spec.packageStates)
                    fresh.pkgByDepth.push_back(
                        idleOccSlot("cluster.idle.pkg." + state.name));
                spec_it =
                    idleSpecSlots_.emplace(&spec, std::move(fresh)).first;
            }
            const SpecOccSlots &slots = spec_it->second;
            const int idle_cores = spec.coreCount - hier->busyCores();
            if (hier->coreDepth() > 0) {
                touch(slots.coreByDepth[static_cast<std::size_t>(
                          hier->coreDepth() - 1)],
                      static_cast<double>(idle_cores));
                touch(slots.coreC0, static_cast<double>(hier->busyCores()));
            } else {
                touch(slots.coreC0, static_cast<double>(spec.coreCount));
            }
            if (hier->packageDepth() > 0)
                touch(slots.pkgByDepth[static_cast<std::size_t>(
                          hier->packageDepth() - 1)],
                      1.0);
            else
                touch(slots.pkgC0, 1.0);
        }
    }
    if (hostCountsDirty_) {
        cachedHostsOn_ = cluster_.hostsOn();
        cachedHostsAsleep_ = cluster_.hostsAsleep();
        hostCountsDirty_ = false;
    }
    if (wattsGauge_ == nullptr) {
        wattsGauge_ = &tel.metrics().gauge("cluster.power.watts");
        hostsOnGauge_ = &tel.metrics().gauge("cluster.hosts.on");
        demandGauge_ = &tel.metrics().gauge("cluster.demand.mhz");
    }
    wattsGauge_->set(watts);
    hostsOnGauge_->set(static_cast<double>(cachedHostsOn_));
    demandGauge_->set(demand_mhz);
    if (any_hierarchy) {
        // A level nobody occupies this tick must read 0, not its last
        // value.
        for (const std::size_t idx : idleOccOrder_) {
            IdleOccSlot &slot = idleOccSlots_[idx];
            slot.gauge->set(slot.epoch == idleOccEpoch_ ? slot.value : 0.0);
        }
    }
    // Downsampling store: the same cluster aggregates, plus queue/
    // migration pressure, folded into compressed bucket history the
    // watchdog and vpm_top read.
    telemetry::TimeSeriesStore &tstore = tel.timeseries();
    if (tstore.enabled()) {
        const std::int64_t t_us = simulator_.now().micros();
        if (!tsMainResolved_) {
            tsPower_ = tstore.seriesId("cluster.power.watts");
            tsDemand_ = tstore.seriesId("cluster.demand.mhz");
            tsHostsOn_ = tstore.seriesId("cluster.hosts.on");
            tsHostsAsleep_ = tstore.seriesId("cluster.hosts.asleep");
            tsQueueDepth_ = tstore.seriesId("sim.queue.depth");
            tsMigInflight_ = tstore.seriesId("migration.inflight");
            tsBackClamps_ = tstore.seriesId("power.meter.backwards_clamps");
            backClampsCounter_ =
                &tel.metrics().counter("power.meter.backwards_clamps");
            tsMainResolved_ = true;
        }
        tstore.record(tsPower_, t_us, watts);
        tstore.record(tsDemand_, t_us, demand_mhz);
        tstore.record(tsHostsOn_, t_us,
                      static_cast<double>(cachedHostsOn_));
        tstore.record(tsHostsAsleep_, t_us,
                      static_cast<double>(cachedHostsAsleep_));
        tstore.record(tsQueueDepth_, t_us,
                      static_cast<double>(simulator_.pendingCount()));
        tstore.record(tsMigInflight_, t_us,
                      static_cast<double>(migration_.activeCount()));
        tstore.record(tsBackClamps_, t_us,
                      static_cast<double>(backClampsCounter_->value()));
        // Idle-hierarchy occupancy reuses the gauge names; levels nobody
        // occupies this tick simply record nothing (gaps, not zeros).
        // Name order keeps series registration deterministic.
        for (const std::size_t idx : idleOccOrder_) {
            IdleOccSlot &slot = idleOccSlots_[idx];
            if (slot.epoch != idleOccEpoch_)
                continue;
            if (!slot.seriesResolved) {
                slot.series = tstore.seriesId(slot.name);
                slot.seriesResolved = true;
            }
            tstore.record(slot.series, t_us, slot.value);
        }
    }
    tel.sampleSeries(simulator_.now().micros());
    // Seal finished buckets and run the watchdog over them; a no-op when
    // the store is disabled.
    tel.flushTimeseries(simulator_.now().micros());
}

void
DatacenterSim::evaluate()
{
    PROF_ZONE("dcsim.evaluate");
    // Only placed VMs demand CPU: retired VMs are gone, and pending
    // arrivals have not started working (their wait shows up in the
    // provisioning engine's placement-delay stats, not in the SLA).
    const sim::SimTime now = simulator_.now();
    const std::vector<Vm *> &placed = placedVms();
    const auto &hosts = cluster_.hosts();
    FleetStore &fleet = cluster_.fleet();
    sim::ThreadPool &pool = sim::globalPool();

    // Demand-refresh pass: a flat linear scan of the placed-VM id list
    // against the store's trace/span/demand columns. Re-samples are
    // per-VM independent and idempotent, and a changed demand marks the
    // resident host through the store's atomic flag bytes (a VM shard may
    // touch hosts of any host shard), so this partitioning produces the
    // identical columns and flags as the historical per-host interleaved
    // refresh.
    const std::int64_t now_us = now.micros();
    {
        PROF_ZONE("dcsim.evaluate.refresh");
        pool.parallelFor(
            placed.size(), kVmRefreshShardGrain,
            [&](std::size_t, std::size_t begin, std::size_t end) {
                fleet.refreshPlacedDemand(placedIds_.data() + begin,
                                          end - begin, now_us);
            });
    }

    // Host pass, sharded over host-id ranges. Everything here is a pure
    // per-host computation — the dirty-gated allocation and the latency
    // factor — so shards share nothing and the results are bit-identical
    // to the sequential sweep in any order. The common clean-host case
    // reads only store columns (one flag byte, the phase byte, the
    // memoized granted sum); the Host object is dereferenced only for
    // dirty hosts and hierarchy-equipped hosts.
    {
        PROF_ZONE("dcsim.evaluate.hostpass");
        pool.parallelFor(
            hosts.size(), kHostShardGrain,
            [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    const HostId h = static_cast<HostId>(i);
                    // The VM pass below gathers latencyFactor by HostId, so
                    // the cluster's dense-id invariant is what makes that
                    // lookup (and this loop's write) line up.
                    assert(hosts[i]->id() == h &&
                           "cluster host ids must be dense and in order");
                    std::uint8_t flags = fleet.hostFlags(h);
                    // No flag set means no factor input moved since the last
                    // service: the stored factor is exactly what this pass
                    // would recompute (hierarchy wake-latency drift marks
                    // kFactorDirty), so skip the host entirely.
                    if (flags == 0)
                        continue;
                    if (flags & FleetStore::kAllocDirty) {
                        allocateHost(*hosts[i]);
                        fleet.clearHostFlags(h, FleetStore::kAllocDirty);
                        flags = fleet.hostFlags(h);
                    }
                    // The latency factor is a per-host quantity; evaluate it
                    // once per host so each VM reads an identical value.
                    double factor;
                    if (!fleet.hostIsOn(h)) {
                        factor = kStarvedLatencyFactor;
                    } else {
                        // Same arithmetic as Host::utilization(): the granted
                        // cache is clean on every On host once the allocator
                        // has serviced it (the off-branch presets it too), so
                        // the store read equals the lazy recompute.
                        const double busy =
                            (flags & FleetStore::kGrantedDirty)
                                ? hosts[i]->grantedMhz() +
                                      fleet.hostMigrationOverheadMhz(h)
                                : fleet.hostGrantedCacheMhz(h) +
                                      fleet.hostMigrationOverheadMhz(h);
                        const double util = std::clamp(
                            busy / fleet.hostEffectiveCapacityMhz(h), 0.0, 1.0);
                        const double rho = std::min(util, kUtilizationCap);
                        factor = 1.0 / (1.0 - rho);
                        // C-state exit adds a latency term: demand arriving
                        // this interval waits on the deepest resident exit
                        // before the cores can serve it, amortized over the
                        // interval. Pure read of a cached field — shard-safe.
                        if (fleet.hostHasHierarchy(h)) {
                            const power::IdleHierarchy *hier =
                                hosts[i]->idleHierarchy();
                            factor += hier->wakeLatency().toSeconds() /
                                      config_.evaluationInterval.toSeconds();
                        }
                    }
                    fleet.setLatencyFactor(h, factor);
                    if (flags & FleetStore::kFactorDirty)
                        fleet.clearHostFlags(h, FleetStore::kFactorDirty);
                }
            });
        // Every host was just serviced, so the reallocate() work queue holds
        // nothing the pass above did not already handle.
        fleet.clearAllocQueue();
    }
    PROF_ZONE("dcsim.evaluate.sample");

    // VM pass: one SLA sample per placed VM, sharded over VM ranges into
    // per-shard accumulators. The shard structure depends only on the VM
    // count, never the thread count. Stats accumulate in the per-shard
    // partials across ticks — O(samples), no per-tick histogram traffic —
    // and are folded into the persistent trackers in shard index order by
    // collectShardSamples() when somebody reads them; staged journal
    // events, whose order is observable per tick, flush in shard index
    // order here, reproducing the sequential record sequence exactly.
    telemetry::EventJournal &journal = telemetry::global().journal();
    const bool journal_on = journal.enabled();
    // Series ids are interned here on the main thread, before any shard
    // can touch a recorder: SeriesRecorder keys partials by id, and the
    // store's intern map is not shard-safe.
    telemetry::TimeSeriesStore &tstore = telemetry::global().timeseries();
    const bool ts_on = tstore.enabled();
    if (ts_on && !tsViolResolved_) {
        tsViolSat_ = tstore.seriesId("sla.violation.sat");
        tsViolResolved_ = true;
    }
    const std::size_t shards =
        sim::ThreadPool::shardCount(placed.size(), kVmShardGrain);
    if (shards <= 1) {
        // Single shard: record straight into the persistent accumulators,
        // the exact code path (and FP summation order) of the historical
        // sequential implementation.
        sampleVms(0, placed.size(), now, journal_on, sla_, latencyWeighted_,
                  latencyHist_, nullptr, ts_on ? &seqSeriesRec_ : nullptr);
        if (ts_on)
            tstore.mergeRecorder(seqSeriesRec_, now.micros());
        return;
    }

    while (shardSamples_.size() < shards)
        shardSamples_.emplace_back(config_.slaThreshold);
    pool.parallelFor(
        placed.size(), kVmShardGrain,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
            ShardSample &acc = shardSamples_[shard];
            sampleVms(begin, end, now, journal_on, acc.sla,
                      acc.latencyWeighted, acc.latencyHist, &acc.stage,
                      ts_on ? &acc.seriesRec : nullptr);
        });
    for (std::size_t shard = 0; shard < shards; ++shard)
        journal.flush(shardSamples_[shard].stage);
    // Same shard-index-order fold as the journal stages: the bucket the
    // partials land in is a pure function of `now`, so the store's bytes
    // stay thread-count-independent.
    if (ts_on) {
        for (std::size_t shard = 0; shard < shards; ++shard)
            tstore.mergeRecorder(shardSamples_[shard].seriesRec,
                                 now.micros());
    }
}

void
DatacenterSim::collectShardSamples()
{
    // Fold every shard's pending partials into the persistent trackers,
    // in shard index order (merge() is FP-order-sensitive), and leave the
    // partials empty for the next accumulation window. Callers (metrics
    // reads) occur at simulation-determined points, so the fold schedule —
    // and therefore every summation order — is identical at any thread
    // count.
    for (ShardSample &acc : shardSamples_) {
        sla_.merge(acc.sla);
        acc.sla.reset();
        latencyWeighted_.merge(acc.latencyWeighted);
        acc.latencyWeighted.reset();
        latencyHist_.merge(acc.latencyHist);
        acc.latencyHist.reset();
    }
}

void
DatacenterSim::sampleVms(std::size_t begin, std::size_t end,
                         sim::SimTime now, bool journal_on,
                         stats::SlaTracker &sla,
                         stats::Summary &latency_weighted,
                         stats::Histogram &latency_hist,
                         telemetry::JournalStage *stage,
                         telemetry::SeriesRecorder *series_rec)
{
    // Store-direct: reads only the demand/granted/host columns plus the
    // latency-factor scratch — no Vm object is touched.
    const FleetStore &fleet = cluster_.fleet();
    const double *latency_factor = fleet.latencyFactorData();
    const std::size_t host_count = fleet.hostCount();
    for (std::size_t v = begin; v < end; ++v) {
        const VmId vm_id = placedIds_[v];
        const double demand = fleet.vmDemandMhz(vm_id);
        const double granted = fleet.vmGrantedMhz(vm_id);
        sla.record(demand, granted);

        // Journal each sample that falls below the SLA threshold, and fold
        // its satisfaction into the violation series (whose per-bucket
        // `count` channel is the violation rate the watchdog watches).
        if (demand > 0.0) {
            const double sat = granted / demand;
            if (sat < config_.slaThreshold) {
                if (series_rec)
                    series_rec->record(tsViolSat_, sat);
                if (journal_on) {
                    if (stage)
                        stage->slaViolation(now.micros(), vm_id, sat,
                                            demand);
                    else
                        telemetry::global().journal().slaViolation(
                            now.micros(), vm_id, sat, demand);
                }
            }
        }

        // Response-time inflation of the VM's host, M/M/1-style. Starved
        // VMs (host off, or rho pinned at the cap) land at the ceiling —
        // as does a VM carrying a stale host id (e.g. its host was just
        // removed), which used to index the factor array out of bounds.
        const HostId host_id = fleet.vmHost(vm_id);
        const auto host_index = static_cast<std::size_t>(host_id);
        const double factor = host_id >= 0 && host_index < host_count
                                  ? latency_factor[host_index]
                                  : kStarvedLatencyFactor;
        latency_hist.add(factor);
        if (demand > 0.0)
            latency_weighted.add(factor);
    }
}

const std::vector<Vm *> &
DatacenterSim::placedVms()
{
    const std::uint64_t epoch = cluster_.placementEpoch();
    if (epoch != placedEpoch_) {
        placedVms_.clear();
        placedIds_.clear();
        for (const auto &vm_ptr : cluster_.vms()) {
            if (vm_ptr->placed()) {
                placedVms_.push_back(vm_ptr.get());
                placedIds_.push_back(vm_ptr->id());
            }
        }
        placedEpoch_ = epoch;
    }
    return placedVms_;
}

void
DatacenterSim::reallocate()
{
    // Queue drain: every main-thread mutation that dirtied a host's
    // allocation inputs (membership, demand, overhead, frequency, power
    // phase) also enqueued it, so this visits O(dirty hosts) instead of
    // sweeping the fleet — a migration landing re-spreads just its source
    // and destination even at 100k hosts. Allocation is per-host state,
    // so the drain order cannot affect results; the queue's enqueue order
    // is event-driven and thus deterministic anyway.
    PROF_ZONE("dcsim.reallocate");
    FleetStore &fleet = cluster_.fleet();
    const auto &hosts = cluster_.hosts();
    for (const HostId h : fleet.allocQueue()) {
        if (fleet.hostFlags(h) & FleetStore::kAllocDirty) {
            allocateHost(*hosts[static_cast<std::size_t>(h)]);
            fleet.clearHostFlags(h, FleetStore::kAllocDirty);
        }
    }
    fleet.clearAllocQueue();
}

void
DatacenterSim::allocateHost(Host &host)
{
    // Store-direct: the inner loops read and write the fleet columns via
    // the host's resident-id list, never the Vm objects. vmIds() is in
    // vms() order, so every sum below reproduces the FP summation order
    // of the historical object walk (and of the lazy cache recomputes it
    // presets). Cluster-owned hosts share the cluster store, which is
    // what makes the id-based access equivalent.
    FleetStore &fleet = cluster_.fleet();
    const HostId h = host.id();
    const std::vector<VmId> &ids = host.vmIds();

    if (!host.isOn()) {
        // VMs cannot run on a host that is not On. The management layer
        // never suspends occupied hosts; this branch covers hand-scripted
        // experiments and failure injection.
        for (const VmId v : ids)
            fleet.setVmGrantedMhz(v, 0.0);
        fleet.setHostGrantedCacheClean(h, 0.0);
        return;
    }

    const double available = std::max(
        fleet.hostEffectiveCapacityMhz(h) -
            fleet.hostMigrationOverheadMhz(h), 0.0);
    double demand;
    if (fleet.hostFlags(h) & FleetStore::kDemandDirty) {
        demand = 0.0;
        for (const VmId v : ids)
            demand += fleet.vmDemandMhz(v);
        fleet.setHostDemandCacheClean(h, demand);
    } else {
        demand = fleet.hostDemandCacheMhz(h);
    }

    double granted_total = 0.0;
    if (demand <= available) {
        for (const VmId v : ids) {
            const double g = fleet.vmDemandMhz(v);
            fleet.setVmGrantedMhz(v, g);
            granted_total += g;
        }
    } else {
        // Proportional share under contention, hypervisor-style.
        const double share = demand > 0.0 ? available / demand : 0.0;
        for (const VmId v : ids) {
            const double g = fleet.vmDemandMhz(v) * share;
            fleet.setVmGrantedMhz(v, g);
            granted_total += g;
        }
    }
    fleet.setHostGrantedCacheClean(h, granted_total);
    host.updatePowerDraw();
}

RunMetrics
DatacenterSim::metrics()
{
    const sim::SimTime now = simulator_.now();
    cluster_.finishMetering(now);
    hostsOnTracker_.finish(now);
    collectShardSamples();

    RunMetrics m;
    m.energyKwh = cluster_.totalEnergyJoules() / 3.6e6;
    const double span_s = (now - startedAt_).toSeconds();
    m.averagePowerWatts =
        span_s > 0.0 ? cluster_.totalEnergyJoules() / span_s : 0.0;
    m.satisfaction = sla_.satisfaction();
    m.violationFraction = sla_.violationFraction();
    m.p5Performance = sla_.performancePercentile(0.05);
    m.worstPerformance = sla_.worstPerformance();
    m.meanLatencyFactor =
        latencyWeighted_.count() > 0 ? latencyWeighted_.mean() : 1.0;
    m.p95LatencyFactor =
        latencyHist_.count() > 0 ? latencyHist_.percentile(0.95) : 1.0;
    m.averageHostsOn = hostsOnTracker_.average();
    m.migrations = migration_.completedCount();
    m.powerActions = cluster_.powerActionCount();
    m.simulatedHours = (now - startedAt_).toHours();
    return m;
}

RunMetrics
DatacenterSim::runFor(sim::SimTime duration)
{
    if (!started_)
        start();
    simulator_.runUntil(simulator_.now() + duration);
    return metrics();
}

void
DatacenterSim::addEvaluationHook(EvaluationHook hook)
{
    if (!hook)
        sim::panic("DatacenterSim::addEvaluationHook: null hook");
    hooks_.push_back(std::move(hook));
}

} // namespace vpm::dc
