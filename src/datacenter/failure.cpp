#include "datacenter/failure.hpp"

#include "simcore/logging.hpp"

namespace vpm::dc {

FailureInjector::FailureInjector(sim::Simulator &simulator,
                                 Cluster &cluster,
                                 const FailureConfig &config)
    : simulator_(simulator), cluster_(cluster), config_(config),
      rng_(config.seed)
{
    if (config_.meanTimeToFailure <= sim::SimTime())
        sim::fatal("FailureInjector: MTTF must be positive");
    if (config_.meanTimeToRepair <= sim::SimTime())
        sim::fatal("FailureInjector: MTTR must be positive");
    if (config_.crashState.empty())
        sim::fatal("FailureInjector: crash state must be named");
}

void
FailureInjector::start()
{
    if (started_)
        sim::panic("FailureInjector::start called twice");
    started_ = true;
    for (const auto &host_ptr : cluster_.hosts())
        scheduleFailure(host_ptr->id());
}

void
FailureInjector::scheduleFailure(HostId host)
{
    const sim::SimTime ttf = sim::SimTime::hours(
        rng_.exponential(config_.meanTimeToFailure.toHours()));
    simulator_.schedule(ttf, [this, host] { maybeCrash(host); },
                        "failure.crash");
}

void
FailureInjector::maybeCrash(HostId host_id)
{
    Host &host = cluster_.host(host_id);
    // Only powered hardware fails this way; a parked host's clock simply
    // re-arms (approximation: sleeping hosts are near-immortal).
    if (!host.isOn() || down_.contains(host_id)) {
        scheduleFailure(host_id);
        return;
    }

    ++crashes_;
    down_.insert(host_id);
    sim::warn("host '%s' crashed at %s (%zu VMs stranded)",
              host.name().c_str(), simulator_.now().toString().c_str(),
              host.vms().size());

    host.powerFsm().forceOff(config_.crashState);
    host.powerFsm().setWakeInhibited(true);
    // Stranded VMs get zero grants at the next allocation; the HA layer
    // (VpmManager::haRestart) moves them on its next cycle.

    const sim::SimTime mttr = sim::SimTime::hours(
        rng_.exponential(config_.meanTimeToRepair.toHours()));
    simulator_.schedule(mttr, [this, host_id] { repair(host_id); },
                        "failure.repair");
}

void
FailureInjector::repair(HostId host_id)
{
    Host &host = cluster_.host(host_id);
    ++repairs_;
    down_.erase(host_id);
    host.powerFsm().setWakeInhibited(false);
    // Boot the host back into the pool; the manager re-balances onto it
    // (or consolidates it away again) on subsequent cycles.
    host.powerFsm().requestWake();
    sim::inform("host '%s' repaired at %s; booting",
                host.name().c_str(), simulator_.now().toString().c_str());
    scheduleFailure(host_id);
}

} // namespace vpm::dc
