#include "datacenter/host.hpp"

#include <algorithm>
#include <utility>

#include "power/idle_hierarchy.hpp"
#include "simcore/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::dc {

Host::Host(sim::Simulator &simulator, HostId id, std::string name,
           const HostConfig &config, const power::HostPowerSpec &power_spec)
    : simulator_(simulator), id_(id), store_(nullptr),
      name_(std::move(name)), config_(config), fsm_(simulator, power_spec),
      meter_(simulator.now(), power_spec.idlePowerWatts())
{
    ownedStore_ = std::make_unique<FleetStore>();
    store_ = ownedStore_.get();
    store_->registerHost(id_, config_.cpuCapacityMhz);
    init(power_spec);
}

Host::Host(sim::Simulator &simulator, HostId id, std::string name,
           const HostConfig &config, const power::HostPowerSpec &power_spec,
           FleetStore &store)
    : simulator_(simulator), id_(id), store_(&store),
      name_(std::move(name)), config_(config), fsm_(simulator, power_spec),
      meter_(simulator.now(), power_spec.idlePowerWatts())
{
    // The cluster registers the row before constructing the view.
    if (static_cast<std::size_t>(id_) >= store_->hostCount())
        sim::panic("Host '%s': id %d not registered in the fleet store",
                   name_.c_str(), id_);
    init(power_spec);
}

void
Host::init(const power::HostPowerSpec &power_spec)
{
    (void)power_spec;
    if (config_.cpuCapacityMhz <= 0.0)
        sim::fatal("Host '%s': CPU capacity must be positive", name_.c_str());
    if (config_.memoryCapacityMb <= 0.0)
        sim::fatal("Host '%s': memory capacity must be positive",
                   name_.c_str());

    // Seed the store's phase byte and power mirror from the live objects
    // (registerHost defaults assume a host born On at idle draw).
    store_->setHostPhase(id_, static_cast<std::uint8_t>(fsm_.phase()));
    store_->setHostHeldWatts(id_, meter_.heldWatts());

    // Keep the meter exact across phase changes. A phase change also
    // flips the allocator's on/off branch, so the grants are stale. This
    // observer is registered before any outside observer, so the store's
    // phase byte and O(1) counts are already updated when later observers
    // (e.g. DatacenterSim's hosts-on tracker) read them.
    fsm_.addObserver([this](power::PowerPhase, power::PowerPhase to) {
        store_->setHostPhase(id_, static_cast<std::uint8_t>(to));
        store_->markHost(id_, FleetStore::kAllocDirty);
        store_->queueAllocDirty(id_);
        updatePowerDraw();
    });

    // Journal this host's power timeline under its cluster id/name, and
    // mirror the meter into a per-host watts gauge when per-tick metric
    // rows are collected (the only consumer of per-host gauges).
    fsm_.setTelemetryTrack(id_, name_);
    telemetry::Telemetry &tel = telemetry::global();
    if (tel.enabled() && tel.config().seriesRowsEnabled)
        meter_.attachTelemetry(
            &tel.metrics().gauge("host." + name_ + ".watts"));
}

Host::~Host() = default;

void
Host::updatePowerDraw()
{
    const double watts = powerWatts();
    meter_.update(simulator_.now(), watts);
    // heldWatts() may differ from the requested watts (the meter clamps
    // backwards time); mirror what the meter actually holds.
    store_->setHostHeldWatts(id_, meter_.heldWatts());
}

double
Host::powerWatts() const
{
    double watts;
    const double freq = frequencyFraction();
    if (!isOn() || freq >= 1.0) {
        watts = fsm_.powerWatts(utilization());
    } else {
        // DVFS model: static (idle) power is frequency-independent; the
        // dynamic part scales ~quadratically with frequency (voltage
        // tracks frequency). Utilization is already relative to scaled
        // capacity.
        const power::HostPowerSpec &spec = fsm_.spec();
        const double idle = spec.idlePowerWatts();
        const double at_full = spec.activePowerWatts(utilization());
        watts = idle + (at_full - idle) * freq * freq;
    }
    // Idle-hierarchy residency shaves the static share while On (the
    // hierarchy reports zero savings when paused, i.e. off-phase power
    // is entirely the FSM's business).
    if (idleHierarchy_ && isOn())
        watts = std::max(0.0, watts - idleHierarchy_->powerSavingsWatts());
    return watts;
}

void
Host::attachIdleHierarchy(std::unique_ptr<power::IdleHierarchy> hierarchy)
{
    if (idleHierarchy_)
        sim::panic("Host '%s': idle hierarchy attached twice",
                   name_.c_str());
    idleHierarchy_ = std::move(hierarchy);
    store_->setHostHasHierarchy(id_, true);

    // Transition energy is an impulse on the meter; any residency change
    // also moves the On draw, so re-hold.
    idleHierarchy_->setTransitionCallback([this](double joules) {
        meter_.addEnergyJoules(joules);
        updatePowerDraw();
        // Depth changes move wakeLatency(), a latency-factor input the
        // evaluate pass otherwise has no way to see (busy-count and
        // pause/resume changes all ride host events that mark the flags
        // themselves).
        store_->markHostFactorDirty(id_);
    });
    idleHierarchy_->setTelemetryTrack(id_);

    // The hierarchy lives under the FSM: leaving On pauses it (forced
    // exits ride the system transition), reaching On resumes it at C0.
    fsm_.addObserver([this](power::PowerPhase, power::PowerPhase to) {
        if (to == power::PowerPhase::On)
            idleHierarchy_->resume();
        else if (idleHierarchy_->active())
            idleHierarchy_->pause();
    });
    if (!isOn())
        idleHierarchy_->pause();
}

void
Host::setFrequencyFraction(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        sim::panic("Host '%s': frequency fraction %g outside (0, 1]",
                   name_.c_str(), fraction);
    store_->setHostFrequencyFraction(id_, fraction);
    // Effective capacity moved; grants must respread.
    store_->markHost(id_, FleetStore::kAllocDirty);
    store_->queueAllocDirty(id_);
    updatePowerDraw();
}

void
Host::finishMetering(sim::SimTime t)
{
    meter_.finish(t);
}

void
Host::addVm(Vm &vm)
{
    if (std::find(vms_.begin(), vms_.end(), &vm) != vms_.end())
        sim::panic("Host '%s': VM '%s' added twice", name_.c_str(),
                   vm.name().c_str());
    vms_.push_back(&vm);
    vmIds_.push_back(vm.id());
    vm.setResidentHost(this);
    markMembershipChanged();
}

void
Host::removeVm(Vm &vm)
{
    const auto it = std::find(vms_.begin(), vms_.end(), &vm);
    if (it == vms_.end())
        sim::panic("Host '%s': VM '%s' not resident", name_.c_str(),
                   vm.name().c_str());
    vmIds_.erase(vmIds_.begin() + (it - vms_.begin()));
    vms_.erase(it);
    vm.setResidentHost(nullptr);
    markMembershipChanged();
}

double
Host::vmDemandMhz() const
{
    if (store_->hostFlags(id_) & FleetStore::kDemandDirty) {
        double total = 0.0;
        for (const Vm *vm : vms_)
            total += vm->currentDemandMhz();
        store_->setHostDemandCacheClean(id_, total);
    }
    return store_->hostDemandCacheMhz(id_);
}

double
Host::grantedMhz() const
{
    if (store_->hostFlags(id_) & FleetStore::kGrantedDirty) {
        double total = 0.0;
        for (const Vm *vm : vms_)
            total += vm->grantedMhz();
        store_->setHostGrantedCacheClean(id_, total);
    }
    return store_->hostGrantedCacheMhz(id_);
}

double
Host::committedMemoryMb() const
{
    if (store_->hostFlags(id_) & FleetStore::kMemoryDirty) {
        double total = 0.0;
        for (const Vm *vm : vms_)
            total += vm->memoryMb();
        store_->setHostMemoryCacheClean(id_, total);
    }
    return store_->hostMemoryCacheMb(id_);
}

void
Host::addMigrationOverheadMhz(double mhz)
{
    double overhead = store_->hostMigrationOverheadMhz(id_) + mhz;
    if (overhead < -1e-6)
        sim::panic("Host '%s': migration overhead went negative (%g MHz)",
                   name_.c_str(), overhead);
    // Snap accumulation residue so an idle host reads exactly zero.
    if (overhead < 1e-9)
        overhead = 0.0;
    store_->setHostMigrationOverheadMhz(id_, overhead);
    // Overhead competes with VM grants for capacity.
    store_->markHost(id_, FleetStore::kAllocDirty);
    store_->queueAllocDirty(id_);
}

double
Host::utilization() const
{
    if (!isOn())
        return 0.0;
    const double busy = grantedMhz() + migrationOverheadMhz();
    return std::clamp(busy / effectiveCpuCapacityMhz(), 0.0, 1.0);
}

double
Host::demandUtilization() const
{
    const double demand = vmDemandMhz() + migrationOverheadMhz();
    return demand / effectiveCpuCapacityMhz();
}

void
Host::adjustInboundReservedMemoryMb(double delta_mb)
{
    inboundReservedMemoryMb_ += delta_mb;
    if (inboundReservedMemoryMb_ < -1e-6)
        sim::panic("Host '%s': inbound memory reservation went negative "
                   "(%g MB)", name_.c_str(), inboundReservedMemoryMb_);
    // Snap accumulation residue so a quiescent host reads exactly zero.
    if (inboundReservedMemoryMb_ < 1e-9)
        inboundReservedMemoryMb_ = 0.0;
}

void
Host::adjustActiveMigrations(int delta)
{
    activeMigrations_ += delta;
    if (activeMigrations_ < 0)
        sim::panic("Host '%s': active migration count went negative",
                   name_.c_str());
}

} // namespace vpm::dc
