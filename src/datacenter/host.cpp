#include "datacenter/host.hpp"

#include <algorithm>
#include <utility>

#include "power/idle_hierarchy.hpp"
#include "simcore/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::dc {

Host::Host(sim::Simulator &simulator, HostId id, std::string name,
           const HostConfig &config, const power::HostPowerSpec &power_spec)
    : simulator_(simulator), id_(id), name_(std::move(name)),
      config_(config), fsm_(simulator, power_spec),
      meter_(simulator.now(), power_spec.idlePowerWatts())
{
    if (config_.cpuCapacityMhz <= 0.0)
        sim::fatal("Host '%s': CPU capacity must be positive", name_.c_str());
    if (config_.memoryCapacityMb <= 0.0)
        sim::fatal("Host '%s': memory capacity must be positive",
                   name_.c_str());

    // Keep the meter exact across phase changes. A phase change also
    // flips the allocator's on/off branch, so the grants are stale.
    fsm_.addObserver([this](power::PowerPhase, power::PowerPhase) {
        allocDirty_ = true;
        updatePowerDraw();
    });

    // Journal this host's power timeline under its cluster id/name, and
    // mirror the meter into a per-host watts gauge when per-tick metric
    // rows are collected (the only consumer of per-host gauges).
    fsm_.setTelemetryTrack(id_, name_);
    telemetry::Telemetry &tel = telemetry::global();
    if (tel.enabled() && tel.config().seriesRowsEnabled)
        meter_.attachTelemetry(
            &tel.metrics().gauge("host." + name_ + ".watts"));
}

Host::~Host() = default;

void
Host::updatePowerDraw()
{
    meter_.update(simulator_.now(), powerWatts());
}

double
Host::powerWatts() const
{
    double watts;
    if (!isOn() || frequencyFraction_ >= 1.0) {
        watts = fsm_.powerWatts(utilization());
    } else {
        // DVFS model: static (idle) power is frequency-independent; the
        // dynamic part scales ~quadratically with frequency (voltage
        // tracks frequency). Utilization is already relative to scaled
        // capacity.
        const power::HostPowerSpec &spec = fsm_.spec();
        const double idle = spec.idlePowerWatts();
        const double at_full = spec.activePowerWatts(utilization());
        watts = idle +
                (at_full - idle) * frequencyFraction_ * frequencyFraction_;
    }
    // Idle-hierarchy residency shaves the static share while On (the
    // hierarchy reports zero savings when paused, i.e. off-phase power
    // is entirely the FSM's business).
    if (idleHierarchy_ && isOn())
        watts = std::max(0.0, watts - idleHierarchy_->powerSavingsWatts());
    return watts;
}

void
Host::attachIdleHierarchy(std::unique_ptr<power::IdleHierarchy> hierarchy)
{
    if (idleHierarchy_)
        sim::panic("Host '%s': idle hierarchy attached twice",
                   name_.c_str());
    idleHierarchy_ = std::move(hierarchy);

    // Transition energy is an impulse on the meter; any residency change
    // also moves the On draw, so re-hold.
    idleHierarchy_->setTransitionCallback([this](double joules) {
        meter_.addEnergyJoules(joules);
        updatePowerDraw();
    });
    idleHierarchy_->setTelemetryTrack(id_);

    // The hierarchy lives under the FSM: leaving On pauses it (forced
    // exits ride the system transition), reaching On resumes it at C0.
    fsm_.addObserver([this](power::PowerPhase, power::PowerPhase to) {
        if (to == power::PowerPhase::On)
            idleHierarchy_->resume();
        else if (idleHierarchy_->active())
            idleHierarchy_->pause();
    });
    if (!isOn())
        idleHierarchy_->pause();
}

void
Host::setFrequencyFraction(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        sim::panic("Host '%s': frequency fraction %g outside (0, 1]",
                   name_.c_str(), fraction);
    frequencyFraction_ = fraction;
    allocDirty_ = true; // effective capacity moved; grants must respread
    updatePowerDraw();
}

void
Host::finishMetering(sim::SimTime t)
{
    meter_.finish(t);
}

void
Host::addVm(Vm &vm)
{
    if (std::find(vms_.begin(), vms_.end(), &vm) != vms_.end())
        sim::panic("Host '%s': VM '%s' added twice", name_.c_str(),
                   vm.name().c_str());
    vms_.push_back(&vm);
    vm.setResidentHost(this);
    markMembershipChanged();
}

void
Host::removeVm(Vm &vm)
{
    const auto it = std::find(vms_.begin(), vms_.end(), &vm);
    if (it == vms_.end())
        sim::panic("Host '%s': VM '%s' not resident", name_.c_str(),
                   vm.name().c_str());
    vms_.erase(it);
    vm.setResidentHost(nullptr);
    markMembershipChanged();
}

double
Host::vmDemandMhz() const
{
    if (vmDemandDirty_) {
        double total = 0.0;
        for (const Vm *vm : vms_)
            total += vm->currentDemandMhz();
        vmDemandCache_ = total;
        vmDemandDirty_ = false;
    }
    return vmDemandCache_;
}

double
Host::grantedMhz() const
{
    if (grantedDirty_) {
        double total = 0.0;
        for (const Vm *vm : vms_)
            total += vm->grantedMhz();
        grantedCache_ = total;
        grantedDirty_ = false;
    }
    return grantedCache_;
}

double
Host::committedMemoryMb() const
{
    if (memoryDirty_) {
        double total = 0.0;
        for (const Vm *vm : vms_)
            total += vm->memoryMb();
        memoryCache_ = total;
        memoryDirty_ = false;
    }
    return memoryCache_;
}

void
Host::addMigrationOverheadMhz(double mhz)
{
    migrationOverheadMhz_ += mhz;
    if (migrationOverheadMhz_ < -1e-6)
        sim::panic("Host '%s': migration overhead went negative (%g MHz)",
                   name_.c_str(), migrationOverheadMhz_);
    // Snap accumulation residue so an idle host reads exactly zero.
    if (migrationOverheadMhz_ < 1e-9)
        migrationOverheadMhz_ = 0.0;
    allocDirty_ = true; // overhead competes with VM grants for capacity
}

double
Host::utilization() const
{
    if (!isOn())
        return 0.0;
    const double busy = grantedMhz() + migrationOverheadMhz_;
    return std::clamp(busy / effectiveCpuCapacityMhz(), 0.0, 1.0);
}

double
Host::demandUtilization() const
{
    const double demand = vmDemandMhz() + migrationOverheadMhz_;
    return demand / effectiveCpuCapacityMhz();
}

void
Host::adjustInboundReservedMemoryMb(double delta_mb)
{
    inboundReservedMemoryMb_ += delta_mb;
    if (inboundReservedMemoryMb_ < -1e-6)
        sim::panic("Host '%s': inbound memory reservation went negative "
                   "(%g MB)", name_.c_str(), inboundReservedMemoryMb_);
    // Snap accumulation residue so a quiescent host reads exactly zero.
    if (inboundReservedMemoryMb_ < 1e-9)
        inboundReservedMemoryMb_ = 0.0;
}

void
Host::adjustActiveMigrations(int delta)
{
    activeMigrations_ += delta;
    if (activeMigrations_ < 0)
        sim::panic("Host '%s': active migration count went negative",
                   name_.c_str());
}

} // namespace vpm::dc
