/**
 * @file
 * Physical host model: capacities, resident VMs, power FSM and energy meter.
 *
 * The host is where the power substrate meets the virtualization substrate:
 * its PowerStateMachine says whether VMs can run, and its EnergyMeter
 * integrates the exact piecewise-constant power draw (re-held on every
 * demand re-evaluation and every FSM phase change).
 *
 * Since the FleetStore refactor the Host is a thin view: the hot fields
 * (aggregate caches + dirty flags, migration overhead, frequency fraction,
 * phase byte, held-watts mirror) live in dense columns of a FleetStore
 * indexed by the host's id. Cluster-owned hosts share the cluster's store;
 * a standalone Host (unit tests) owns a private store so the historical
 * constructor keeps working. The lazy aggregate recomputes iterate the
 * resident Vm objects — never vmIds() — so they stay correct even when a
 * standalone VM from a foreign store is added; the id list is for the
 * shared-store fast paths in DatacenterSim only.
 */

#ifndef VPM_DATACENTER_HOST_HPP
#define VPM_DATACENTER_HOST_HPP

#include <memory>
#include <string>
#include <vector>

#include "power/energy_meter.hpp"
#include "power/power_state_machine.hpp"
#include "simcore/simulator.hpp"
#include "datacenter/vm.hpp"

namespace vpm::power {
class IdleHierarchy;
}

namespace vpm::dc {

/** Sizing of a host (identical across a homogeneous cluster). */
struct HostConfig
{
    /** Total CPU capacity, in MHz (e.g. 16 cores x 2 GHz = 32000). */
    double cpuCapacityMhz = 32000.0;

    /** Total memory, in MB. */
    double memoryCapacityMb = 131072.0;
};

/** A physical server: capacity + resident VMs + power state + energy. */
class Host
{
  public:
    /**
     * Standalone constructor (unit tests): the host owns a private store.
     * @param simulator Owning event loop.
     * @param id Cluster-assigned identifier.
     * @param name Stable name, e.g. "host07".
     * @param config Capacities.
     * @param power_spec Power model; must outlive the host.
     */
    Host(sim::Simulator &simulator, HostId id, std::string name,
         const HostConfig &config, const power::HostPowerSpec &power_spec);

    /** Cluster constructor: the row @p id must already be registered in
     *  @p store (the cluster registers it before constructing the view). */
    Host(sim::Simulator &simulator, HostId id, std::string name,
         const HostConfig &config, const power::HostPowerSpec &power_spec,
         FleetStore &store);

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    ~Host(); // out-of-line: idleHierarchy_ is an incomplete type here

    HostId id() const { return id_; }
    const std::string &name() const { return name_; }

    double cpuCapacityMhz() const { return config_.cpuCapacityMhz; }
    double memoryCapacityMb() const { return config_.memoryCapacityMb; }

    /** The store this host's row lives in (the cluster's, or private). */
    FleetStore &fleet() { return *store_; }
    const FleetStore &fleet() const { return *store_; }

    /** @name Power */
    ///@{
    power::PowerStateMachine &powerFsm() { return fsm_; }
    const power::PowerStateMachine &powerFsm() const { return fsm_; }

    /** true iff the host can run VMs right now. */
    bool isOn() const { return fsm_.isOn(); }

    /** Lifetime energy, integrated exactly. */
    const power::EnergyMeter &meter() const { return meter_; }

    /**
     * Re-hold the energy meter at the current power draw. Must be called
     * whenever granted CPU changes; FSM phase changes re-hold automatically.
     */
    void updatePowerDraw();

    /** Instantaneous power draw at the current utilization, in watts. */
    double powerWatts() const;

    /** Close out the meter at @p t (end of a measurement window). */
    void finishMetering(sim::SimTime t);

    /**
     * Attach a per-host idle-state hierarchy (core C-states + package
     * states nested under the FSM — see power/idle_hierarchy.hpp). The
     * host wires it up: transition energy impulses charge the meter,
     * hierarchy savings subtract from the On power draw, and the FSM's
     * phase changes pause/resume it. At most one hierarchy per host.
     */
    void attachIdleHierarchy(std::unique_ptr<power::IdleHierarchy> hierarchy);

    /** The attached hierarchy, or nullptr. */
    power::IdleHierarchy *idleHierarchy() { return idleHierarchy_.get(); }
    const power::IdleHierarchy *idleHierarchy() const
    {
        return idleHierarchy_.get();
    }
    ///@}

    /** @name DVFS (maintained by the frequency controller) */
    ///@{
    /**
     * Current frequency as a fraction of nominal, in (0, 1]. Scales the
     * usable CPU capacity linearly and the *dynamic* power quadratically:
     * P = idle + (curve(util) - idle) x f^2, with util measured against
     * the scaled capacity. f = 1 reproduces the plain curve.
     */
    double frequencyFraction() const
    {
        return store_->hostFrequencyFraction(id_);
    }

    /** Set the frequency fraction; must be in (0, 1]. Re-holds power. */
    void setFrequencyFraction(double fraction);

    /** Usable CPU capacity at the current frequency, in MHz. */
    double effectiveCpuCapacityMhz() const
    {
        return store_->hostEffectiveCapacityMhz(id_);
    }
    ///@}

    /** @name Resident VMs (maintained by Cluster) */
    ///@{
    const std::vector<Vm *> &vms() const { return vms_; }

    /** Resident VM ids, in the same order as vms(). Only meaningful when
     *  every resident VM shares this host's store (cluster-owned fleets);
     *  DatacenterSim's store-direct allocator iterates this instead of
     *  the object list. */
    const std::vector<VmId> &vmIds() const { return vmIds_; }

    void addVm(Vm &vm);
    void removeVm(Vm &vm);
    bool empty() const { return vms_.empty(); }
    ///@}

    /** @name Aggregate load */
    ///@{
    /** Sum of resident VMs' current demand, in MHz (excludes overhead). */
    double vmDemandMhz() const;

    /** Sum of resident VMs' granted CPU, in MHz. */
    double grantedMhz() const;

    /** Sum of resident VMs' memory, in MB. */
    double committedMemoryMb() const;

    /**
     * Memory reserved for in-flight inbound migrations, in MB. Counted by
     * every placement-side memory check so concurrent inbound migrations
     * and new-VM placements cannot jointly overcommit the host.
     */
    double inboundReservedMemoryMb() const
    {
        return inboundReservedMemoryMb_;
    }
    void adjustInboundReservedMemoryMb(double delta_mb);

    /** Migration CPU overhead currently charged to this host, in MHz. */
    double migrationOverheadMhz() const
    {
        return store_->hostMigrationOverheadMhz(id_);
    }
    void addMigrationOverheadMhz(double mhz);

    /**
     * Utilization used for the power curve: (granted + migration overhead)
     * / capacity, clamped to [0, 1]. Zero when the host is not On.
     */
    double utilization() const;

    /** Demand-based utilization (requested / capacity), for the manager. */
    double demandUtilization() const;

    /** Number of in-flight migrations touching this host (src or dst). */
    int activeMigrations() const { return activeMigrations_; }
    void adjustActiveMigrations(int delta);
    ///@}

    /** @name Incremental bookkeeping (see DESIGN.md) */
    ///@{
    /** A resident VM's demand changed: demand aggregate + grants stale.
     *  Main-thread entry point, so it also queues the host for the next
     *  reallocate() drain (the sharded refresh kernel marks flags only —
     *  evaluate() itself services those). */
    void markLoadChanged()
    {
        store_->markHost(id_,
                         FleetStore::kDemandDirty | FleetStore::kAllocDirty);
        store_->queueAllocDirty(id_);
    }

    /** A resident VM's granted CPU changed: granted aggregate stale. */
    void markGrantedChanged()
    {
        store_->markHost(id_, FleetStore::kGrantedDirty);
    }

    /**
     * true when the per-VM grants may differ from what an allocation pass
     * would produce now — set by demand, membership, migration-overhead,
     * frequency, and power-phase changes; cleared by DatacenterSim after
     * it re-runs the allocator on this host.
     */
    bool allocDirty() const
    {
        return (store_->hostFlags(id_) & FleetStore::kAllocDirty) != 0;
    }
    void clearAllocDirty()
    {
        store_->clearHostFlags(id_, FleetStore::kAllocDirty);
    }
    ///@}

  private:
    void init(const power::HostPowerSpec &power_spec);

    /** A VM arrived or departed: every cached aggregate is stale. */
    void markMembershipChanged()
    {
        store_->markHost(id_, FleetStore::kAllDirty);
        store_->queueAllocDirty(id_);
    }

    sim::Simulator &simulator_;
    HostId id_;
    FleetStore *store_;
    std::string name_;
    HostConfig config_;
    power::PowerStateMachine fsm_;
    power::EnergyMeter meter_;
    std::unique_ptr<power::IdleHierarchy> idleHierarchy_;
    std::unique_ptr<FleetStore> ownedStore_; ///< standalone ctor only
    std::vector<Vm *> vms_;
    std::vector<VmId> vmIds_; ///< parallel to vms_
    double inboundReservedMemoryMb_ = 0.0;
    int activeMigrations_ = 0;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_HOST_HPP
