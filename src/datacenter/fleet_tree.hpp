/**
 * @file
 * FleetTree: rack → pod → cluster aggregate tree over a FleetStore.
 *
 * Hierarchical management needs fleet-shaped summaries — "which racks
 * have sleeping hosts", "how much effective capacity is on in this pod" —
 * without walking 100k individual hosts per decision. The tree keeps one
 * aggregate row per rack and per pod, maintained incrementally: the store
 * marks a rack dirty whenever any member host's flags are marked (demand,
 * membership, power phase, frequency — everything that can move an
 * aggregate), and refresh() recomputes exactly the dirty racks, each from
 * scratch in host-id order so the FP sums are reproducible regardless of
 * which mutations dirtied them. Pods and the root fold rack rows (id
 * order), so the whole tree is a pure function of the store's columns.
 *
 * Rack geometry deliberately mirrors bench_e6's topology convention:
 * hosts are assigned round-robin-free, contiguously — rack r holds hosts
 * [r*W, (r+1)*W) — which is also how topology.cpp lays racks out.
 */

#ifndef VPM_DATACENTER_FLEET_TREE_HPP
#define VPM_DATACENTER_FLEET_TREE_HPP

#include <cstddef>
#include <vector>

#include "datacenter/fleet_store.hpp"

namespace vpm::dc {

class Cluster;

/** Aggregate row of one rack (or pod / the root, which reuse the shape). */
struct FleetAggregate
{
    std::size_t begin = 0; ///< first member index (host for racks,
                           ///< rack for pods, pod for the root)
    std::size_t end = 0;   ///< one past the last member index

    double demandMhz = 0.0;          ///< sum of member demand aggregates
    double onEffectiveCapMhz = 0.0;  ///< effective capacity of On hosts
    double cpuCapacityMhz = 0.0;     ///< nominal capacity, all hosts
    int hostsOn = 0;
    int hostsAsleep = 0;
    int hostsTransitioning = 0;
    int emptyOn = 0; ///< On hosts with no resident VMs (sleep candidates)

    /** true when the last refresh() recomputed this row and any field
     *  moved; the manager descends only into changed racks. */
    bool changed = false;
};

/** Incrementally maintained aggregate tree; see file comment. */
class FleetTree
{
  public:
    /**
     * Bind to @p cluster and fix the geometry: @p hosts_per_rack
     * contiguous hosts per rack, @p racks_per_pod contiguous racks per
     * pod (the last rack/pod may be short). Enables the store's rack
     * dirty-bit bookkeeping and marks everything dirty, so the first
     * refresh() builds the whole tree. Call after the fleet is built.
     */
    void configure(Cluster &cluster, std::size_t hosts_per_rack,
                   std::size_t racks_per_pod);

    bool configured() const { return cluster_ != nullptr; }

    /**
     * Recompute dirty racks from the store columns, then fold racks into
     * pods and the root. O(dirty racks x rack width + racks).
     */
    void refresh();

    const std::vector<FleetAggregate> &racks() const { return racks_; }
    const std::vector<FleetAggregate> &pods() const { return pods_; }
    const FleetAggregate &root() const { return root_; }

    /** The pod containing @p rack. */
    std::size_t podOfRack(std::size_t rack) const
    {
        return rack / racksPerPod_;
    }

    /** The rack containing @p host. */
    std::size_t rackOfHost(HostId host) const
    {
        return static_cast<std::size_t>(host) / hostsPerRack_;
    }

  private:
    void recomputeRack(std::size_t rack);

    Cluster *cluster_ = nullptr;
    std::size_t hostsPerRack_ = 0;
    std::size_t racksPerPod_ = 0;
    std::vector<FleetAggregate> racks_;
    std::vector<FleetAggregate> pods_;
    FleetAggregate root_;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_FLEET_TREE_HPP
