#include "datacenter/migration.hpp"

#include <algorithm>
#include <utility>

#include "simcore/logging.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace vpm::dc {

namespace {

/** Completed-migration durations, fleet-wide. 0-120 s in 2 s buckets spans
 *  the regimes the paper's workloads produce. Handle resolved once. */
telemetry::HistogramMetric &
migrationSecondsHistogram()
{
    static telemetry::HistogramMetric &h =
        telemetry::global().metrics().histogram("migration.seconds", 0.0,
                                                120.0, 60);
    return h;
}

} // namespace

MigrationEngine::MigrationEngine(sim::Simulator &simulator, Cluster &cluster,
                                 const MigrationConfig &config)
    : simulator_(simulator), cluster_(cluster), config_(config)
{
    if (config_.bandwidthMbPerSec <= 0.0)
        sim::fatal("MigrationEngine: bandwidth must be positive");
    if (config_.dirtyPageFactor < 1.0)
        sim::fatal("MigrationEngine: dirty-page factor must be >= 1");
    if (config_.maxConcurrentPerHost < 1)
        sim::fatal("MigrationEngine: need at least one migration slot");
    if (config_.utilizationDirtyFactor < 0.0)
        sim::fatal("MigrationEngine: negative utilization dirty factor");
    if (config_.cpuTaxFraction < 0.0 || config_.cpuTaxFraction > 1.0)
        sim::fatal("MigrationEngine: CPU tax fraction %g outside [0, 1]",
                   config_.cpuTaxFraction);
    if (config_.fixedOverhead < sim::SimTime())
        sim::fatal("MigrationEngine: negative fixed overhead");
}

sim::SimTime
MigrationEngine::expectedDuration(const Vm &vm) const
{
    const double utilization =
        vm.cpuMhz() > 0.0
            ? std::min(vm.currentDemandMhz() / vm.cpuMhz(), 1.0)
            : 0.0;
    const double dirty_factor =
        config_.dirtyPageFactor +
        config_.utilizationDirtyFactor * utilization;
    const double copy_seconds =
        vm.memoryMb() * dirty_factor / config_.bandwidthMbPerSec;
    return config_.fixedOverhead + sim::SimTime::seconds(copy_seconds);
}

sim::SimTime
MigrationEngine::expectedDuration(const Vm &vm, HostId source,
                                  HostId dest) const
{
    if (!topology_)
        return expectedDuration(vm);
    const double bandwidth = topology_->bandwidthBetween(source, dest);
    const double flat = config_.bandwidthMbPerSec;
    const sim::SimTime flat_duration = expectedDuration(vm);
    // Rescale only the copy portion by the locality bandwidth.
    const sim::SimTime copy = flat_duration - config_.fixedOverhead;
    return config_.fixedOverhead + copy * (flat / bandwidth);
}

bool
MigrationEngine::validate(const Vm &vm, HostId dest,
                          bool is_queued_retry) const
{
    const char *ctx = is_queued_retry ? "queued migration" : "migration";
    if (!vm.placed()) {
        sim::warn("%s of '%s' invalid: VM unplaced", ctx, vm.name().c_str());
        return false;
    }
    if (vm.host() == dest) {
        sim::warn("%s of '%s' invalid: already on destination", ctx,
                  vm.name().c_str());
        return false;
    }
    const Host &dest_ref = cluster_.host(dest);
    if (!dest_ref.isOn()) {
        sim::warn("%s of '%s' invalid: destination '%s' is not on", ctx,
                  vm.name().c_str(), dest_ref.name().c_str());
        return false;
    }
    if (!memoryFitsAfterPending(vm, dest)) {
        sim::warn("%s of '%s' invalid: no memory headroom on '%s' even "
                  "after pending departures", ctx, vm.name().c_str(),
                  dest_ref.name().c_str());
        return false;
    }
    return true;
}

bool
MigrationEngine::memoryFitsAfterPending(const Vm &vm, HostId dest) const
{
    // Headroom once every resident VM already booked to leave has left;
    // in-flight inbound reservations still count.
    const Host &dest_ref = cluster_.host(dest);
    double departing_mb = 0.0;
    for (const Vm *resident : dest_ref.vms()) {
        const auto it = involved_.find(resident->id());
        if (it != involved_.end() && it->second != dest)
            departing_mb += resident->memoryMb();
    }
    return dest_ref.committedMemoryMb() +
               dest_ref.inboundReservedMemoryMb() - departing_mb +
               vm.memoryMb() <=
           dest_ref.memoryCapacityMb() + 1e-6;
}

bool
MigrationEngine::memoryFitsNow(const Vm &vm, HostId dest) const
{
    // The host's reservation already covers concurrent inbound flights.
    return cluster_.memoryFits(vm, cluster_.host(dest));
}

bool
MigrationEngine::slotsFree(HostId source, HostId dest) const
{
    if (cluster_.host(source).activeMigrations() >=
            config_.maxConcurrentPerHost ||
        cluster_.host(dest).activeMigrations() >=
            config_.maxConcurrentPerHost) {
        return false;
    }
    return !topology_ || topology_->uplinkSlotsFree(source, dest);
}

bool
MigrationEngine::request(VmId vm_id, HostId dest)
{
    PROF_ZONE("migration.request");
    const Vm &vm = cluster_.vm(vm_id);
    if (involved_.contains(vm_id)) {
        sim::warn("migration of '%s' rejected: already migrating or queued",
                  vm.name().c_str());
        return false;
    }
    if (!validate(vm, dest, false))
        return false;

    involved_.emplace(vm_id, dest);
    if (slotsFree(vm.host(), dest) && memoryFitsNow(vm, dest)) {
        start(vm_id, dest);
    } else {
        // Waits for a migration slot, or for a departing VM to free
        // memory on the destination (dependent moves serialize here).
        queue_.push_back({vm_id, dest, telemetry::currentContext()});
    }
    return true;
}

bool
MigrationEngine::involved(VmId vm) const
{
    return involved_.contains(vm);
}

HostId
MigrationEngine::destinationOf(VmId vm) const
{
    const auto it = involved_.find(vm);
    return it != involved_.end() ? it->second : invalidHostId;
}

void
MigrationEngine::start(VmId vm_id, HostId dest)
{
    PROF_ZONE("migration.start");
    Vm &vm = cluster_.vm(vm_id);
    const HostId source = vm.host();
    Host &src_ref = cluster_.host(source);
    Host &dest_ref = cluster_.host(dest);

    vm.setMigrating(true);
    src_ref.adjustActiveMigrations(1);
    dest_ref.adjustActiveMigrations(1);
    dest_ref.adjustInboundReservedMemoryMb(vm.memoryMb());

    // Charge the pre-copy CPU tax to both endpoints for the duration.
    const double tax = config_.cpuTaxFraction * vm.cpuMhz();
    src_ref.addMigrationOverheadMhz(tax);
    dest_ref.addMigrationOverheadMhz(tax);
    src_ref.updatePowerDraw();
    dest_ref.updatePowerDraw();

    ++started_;
    ++activeCount_;

    if (topology_)
        topology_->acquireUplink(source, dest);

    // Freeze the duration at start: the VM's activity at departure is
    // what determined the pre-copy effort.
    const sim::SimTime duration = expectedDuration(vm, source, dest);
    sim::debug("migration of '%s' %s -> %s started (%s)",
               vm.name().c_str(), src_ref.name().c_str(),
               dest_ref.name().c_str(), duration.toString().c_str());

    telemetry::Telemetry &tel = telemetry::global();
    if (tel.enabled()) {
        tel.journal().registerTrack(telemetry::TrackDomain::Vm, vm_id,
                                    vm.name());
        tel.journal().migrationStart(simulator_.now().micros(), vm_id,
                                     source, dest, duration.toSeconds());
    }

    activeDurations_[vm_id] = duration;
    simulator_.schedule(
        duration,
        [this, vm_id, source, dest] { complete(vm_id, source, dest); },
        "migration.complete");
}

void
MigrationEngine::complete(VmId vm_id, HostId source, HostId dest)
{
    PROF_ZONE("migration.complete");
    Vm &vm = cluster_.vm(vm_id);
    Host &src_ref = cluster_.host(source);
    Host &dest_ref = cluster_.host(dest);

    const double tax = config_.cpuTaxFraction * vm.cpuMhz();
    src_ref.addMigrationOverheadMhz(-tax);
    dest_ref.addMigrationOverheadMhz(-tax);
    src_ref.adjustActiveMigrations(-1);
    dest_ref.adjustActiveMigrations(-1);
    dest_ref.adjustInboundReservedMemoryMb(-vm.memoryMb());

    if (topology_) {
        topology_->releaseUplink(source, dest);
        if (!topology_->sameRack(source, dest))
            ++crossRack_;
    }

    vm.setMigrating(false);
    involved_.erase(vm_id);
    --activeCount_;

    // A crash on either endpoint mid-copy kills the stream: abort, the
    // VM stays wherever it physically is (the source).
    if (!src_ref.isOn() || !dest_ref.isOn()) {
        ++aborted_;
        activeDurations_.erase(vm_id);
        telemetry::global().journal().migrationAbort(
            simulator_.now().micros(), vm_id, source, dest,
            "endpoint lost power");
        sim::warn("migration of '%s' aborted: endpoint lost power",
                  vm.name().c_str());
        src_ref.updatePowerDraw();
        dest_ref.updatePowerDraw();
        drainQueue();
        return;
    }

    ++completed_;
    const double actual_seconds = activeDurations_.at(vm_id).toSeconds();
    durations_.add(actual_seconds);
    migrationSecondsHistogram().observe(actual_seconds);
    telemetry::global().journal().migrationFinish(
        simulator_.now().micros(), vm_id, source, dest, actual_seconds);
    activeDurations_.erase(vm_id);

    cluster_.moveVm(vm_id, dest);
    src_ref.updatePowerDraw();
    dest_ref.updatePowerDraw();

    if (onComplete_)
        onComplete_(vm_id, source, dest);

    drainQueue();
}

void
MigrationEngine::drainQueue()
{
    PROF_ZONE("migration.drain_queue");
    // Start every queued request whose endpoints now have slots. One pass
    // is enough: slots only free up on completion, which re-drains.
    std::deque<Request> still_waiting;
    while (!queue_.empty()) {
        const Request req = queue_.front();
        queue_.pop_front();

        const Vm &vm = cluster_.vm(req.vm);
        if (!validate(vm, req.dest, true)) {
            involved_.erase(req.vm);
            ++dropped_;
            continue;
        }
        if (slotsFree(vm.host(), req.dest) &&
            memoryFitsNow(vm, req.dest)) {
            // We are inside some other migration's completion event;
            // restore the context of the decision that queued this one.
            telemetry::TraceScope scope(req.context);
            start(req.vm, req.dest);
        } else {
            still_waiting.push_back(req);
        }
    }
    queue_ = std::move(still_waiting);
}

void
MigrationEngine::setOnComplete(CompletionHandler handler)
{
    onComplete_ = std::move(handler);
}

} // namespace vpm::dc
