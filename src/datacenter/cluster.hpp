/**
 * @file
 * Cluster: the container that owns hosts and VMs and enforces the safety
 * rules of placement and power actions.
 *
 * All placement mutations and all power commands go through the Cluster so
 * a single choke point can enforce the invariants the paper's management
 * stack relies on: VMs live only on powered-on hosts, hosts are only
 * suspended when empty and quiescent, and memory is never oversubscribed.
 */

#ifndef VPM_DATACENTER_CLUSTER_HPP
#define VPM_DATACENTER_CLUSTER_HPP

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "datacenter/fleet_store.hpp"
#include "datacenter/host.hpp"
#include "datacenter/vm.hpp"
#include "power/power_state.hpp"
#include "simcore/simulator.hpp"

namespace vpm::dc {

/** Owns the hosts and VMs of one simulated cluster. */
class Cluster
{
  public:
    explicit Cluster(sim::Simulator &simulator);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** @name Construction */
    ///@{
    /**
     * Add a host. The power spec is copied and kept alive by the cluster,
     * so heterogeneous clusters are supported.
     * @return The new host (stable reference).
     */
    Host &addHost(const HostConfig &config,
                  const power::HostPowerSpec &power_spec);

    /** Add a VM (initially unplaced). @return The new VM. */
    Vm &addVm(workload::VmWorkloadSpec spec);
    ///@}

    /** @name Access */
    ///@{
    std::size_t hostCount() const { return hosts_.size(); }
    std::size_t vmCount() const { return vms_.size(); }

    Host &host(HostId id);
    const Host &host(HostId id) const;
    Vm &vm(VmId id);
    const Vm &vm(VmId id) const;

    /** All hosts, in id order. */
    const std::vector<std::unique_ptr<Host>> &hosts() const
    {
        return hosts_;
    }

    /** All VMs, in id order. */
    const std::vector<std::unique_ptr<Vm>> &vms() const { return vms_; }

    sim::Simulator &simulator() { return simulator_; }

    /** The struct-of-arrays hot state every host/VM view points into. */
    FleetStore &fleet() { return fleet_; }
    const FleetStore &fleet() const { return fleet_; }
    ///@}

    /** @name Placement */
    ///@{
    /**
     * Place an unplaced VM on a host. The host must be On and must have
     * memory headroom; violations are fatal (config error) since initial
     * placement is scripted by the experiment.
     */
    void placeVm(VmId vm, HostId host);

    /**
     * Move a placed VM between hosts instantaneously. This is the
     * mechanism-level primitive used by the MigrationEngine at migration
     * completion; management code must go through the engine instead.
     * The destination must be On and have memory headroom (panic if not —
     * the engine validates before starting).
     */
    void moveVm(VmId vm, HostId dest);

    /** true if @p host has memory headroom for @p vm. */
    bool memoryFits(const Vm &vm, const Host &host) const;

    /**
     * Retire a VM (it departed): remove it from its host and zero its
     * demand. Illegal while the VM is migrating (panic) — callers defer
     * until the migration lands. Unplaced VMs may retire directly.
     */
    void retireVm(VmId vm);
    ///@}

    /** @name Power commands (safety-checked) */
    ///@{
    /**
     * Ask a host to enter a sleep state. Refused (returns false, with a
     * warning) unless the host is On, has no resident VMs, and has no
     * in-flight migrations.
     */
    bool requestHostSleep(HostId host, const std::string &state_name);

    /** Ask a sleeping/suspending host to come back. */
    bool requestHostWake(HostId host);
    ///@}

    /** @name Aggregates */
    ///@{
    /** Sum of all VMs' current demand, in MHz. */
    double totalVmDemandMhz() const;

    /** Sum of CPU capacity over hosts that are On, in MHz. */
    double onCpuCapacityMhz() const;

    /** Sum of CPU capacity over all hosts, in MHz. */
    double totalCpuCapacityMhz() const;

    int hostsOn() const;
    int hostsAsleep() const;
    int hostsTransitioning() const;

    /** Instantaneous total power draw, in watts. */
    double totalPowerWatts() const;

    /** Total energy over all host meters, in joules. */
    double totalEnergyJoules() const;

    /** Total sleep + wake commands accepted across all hosts. */
    std::uint64_t powerActionCount() const;

    /** Close out every host's meter at @p t. */
    void finishMetering(sim::SimTime t);
    ///@}

    /**
     * Monotone counter bumped whenever the membership of the placement
     * problem changes (host added, VM added, placed, or retired). A holder
     * of a derived placement model rebuilds from scratch when the epoch
     * moved and refreshes in place otherwise; moves and power transitions
     * are per-entity field changes, not membership changes.
     */
    std::uint64_t placementEpoch() const { return placementEpoch_; }

  private:
    sim::Simulator &simulator_;
    /** Declared before the views that point into it. */
    FleetStore fleet_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Vm>> vms_;
    std::deque<power::HostPowerSpec> powerSpecs_;
    std::uint64_t placementEpoch_ = 0;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_CLUSTER_HPP
