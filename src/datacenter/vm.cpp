#include "datacenter/vm.hpp"

#include <utility>

#include "simcore/logging.hpp"
#include "datacenter/host.hpp"

namespace vpm::dc {

Vm::Vm(VmId id, workload::VmWorkloadSpec spec)
    : id_(id), spec_(std::move(spec))
{
    if (!spec_.trace)
        sim::fatal("Vm '%s': demand trace must be non-null",
                   spec_.name.c_str());
    if (spec_.cpuMhz <= 0.0)
        sim::fatal("Vm '%s': CPU size must be positive (got %g MHz)",
                   spec_.name.c_str(), spec_.cpuMhz);
    if (spec_.memoryMb <= 0.0)
        sim::fatal("Vm '%s': memory must be positive (got %g MB)",
                   spec_.name.c_str(), spec_.memoryMb);
}

double
Vm::demandMhzAt(sim::SimTime t) const
{
    return spec_.trace->utilizationAt(t) * spec_.cpuMhz;
}

void
Vm::setCurrentDemandMhz(double mhz)
{
    currentDemandMhz_ = mhz;
    // External writes bypass the trace, so any cached span is void.
    demandValidUntil_ = neverValid();
    if (hostPtr_)
        hostPtr_->markLoadChanged();
}

bool
Vm::refreshDemand(sim::SimTime now)
{
    if (now < demandValidUntil_)
        return false;
    const workload::DemandSpan span = spec_.trace->spanAt(now);
    demandValidUntil_ = span.validUntil;
    const double demand = span.utilization * spec_.cpuMhz;
    if (demand == currentDemandMhz_)
        return false;
    currentDemandMhz_ = demand;
    if (hostPtr_)
        hostPtr_->markLoadChanged();
    return true;
}

void
Vm::setGrantedMhz(double mhz)
{
    grantedMhz_ = mhz;
    if (hostPtr_)
        hostPtr_->markGrantedChanged();
}

} // namespace vpm::dc
