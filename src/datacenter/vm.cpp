#include "datacenter/vm.hpp"

#include <utility>

#include "simcore/logging.hpp"

namespace vpm::dc {

Vm::Vm(VmId id, workload::VmWorkloadSpec spec)
    : id_(id), spec_(std::move(spec))
{
    if (!spec_.trace)
        sim::fatal("Vm '%s': demand trace must be non-null",
                   spec_.name.c_str());
    if (spec_.cpuMhz <= 0.0)
        sim::fatal("Vm '%s': CPU size must be positive (got %g MHz)",
                   spec_.name.c_str(), spec_.cpuMhz);
    if (spec_.memoryMb <= 0.0)
        sim::fatal("Vm '%s': memory must be positive (got %g MB)",
                   spec_.name.c_str(), spec_.memoryMb);
}

double
Vm::demandMhzAt(sim::SimTime t) const
{
    return spec_.trace->utilizationAt(t) * spec_.cpuMhz;
}

} // namespace vpm::dc
