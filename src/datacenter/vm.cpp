#include "datacenter/vm.hpp"

#include <utility>

#include "simcore/logging.hpp"
#include "datacenter/host.hpp"

namespace vpm::dc {

void
Vm::validateSpec() const
{
    if (!spec_.trace)
        sim::fatal("Vm '%s': demand trace must be non-null",
                   spec_.name.c_str());
    if (spec_.cpuMhz <= 0.0)
        sim::fatal("Vm '%s': CPU size must be positive (got %g MHz)",
                   spec_.name.c_str(), spec_.cpuMhz);
    if (spec_.memoryMb <= 0.0)
        sim::fatal("Vm '%s': memory must be positive (got %g MB)",
                   spec_.name.c_str(), spec_.memoryMb);
}

Vm::Vm(VmId id, workload::VmWorkloadSpec spec)
    : id_(id), store_(nullptr), spec_(std::move(spec))
{
    validateSpec();
    ownedStore_ = std::make_unique<FleetStore>();
    store_ = ownedStore_.get();
    store_->registerVm(id_, spec_.cpuMhz, spec_.memoryMb,
                       spec_.trace.get());
}

Vm::Vm(VmId id, workload::VmWorkloadSpec spec, FleetStore &store)
    : id_(id), store_(&store), spec_(std::move(spec))
{
    validateSpec();
    // The cluster registers the row before constructing the view.
    if (static_cast<std::size_t>(id_) >= store_->vmCount())
        sim::panic("Vm '%s': id %d not registered in the fleet store",
                   spec_.name.c_str(), id_);
}

double
Vm::demandMhzAt(sim::SimTime t) const
{
    return spec_.trace->utilizationAt(t) * spec_.cpuMhz;
}

void
Vm::setCurrentDemandMhz(double mhz)
{
    store_->setVmDemandMhz(id_, mhz);
    // External writes bypass the trace, so any cached span is void.
    store_->setVmValidUntilUs(
        id_, std::numeric_limits<std::int64_t>::min());
    if (hostPtr_)
        hostPtr_->markLoadChanged();
}

bool
Vm::refreshDemand(sim::SimTime now)
{
    if (now.micros() < store_->vmValidUntilUs(id_))
        return false;
    const workload::DemandSpan span = spec_.trace->spanAt(now);
    store_->setVmValidUntilUs(id_, span.validUntil.micros());
    const double demand = span.utilization * spec_.cpuMhz;
    if (demand == store_->vmDemandMhz(id_))
        return false;
    store_->setVmDemandMhz(id_, demand);
    if (hostPtr_)
        hostPtr_->markLoadChanged();
    return true;
}

void
Vm::setGrantedMhz(double mhz)
{
    store_->setVmGrantedMhz(id_, mhz);
    if (hostPtr_)
        hostPtr_->markGrantedChanged();
}

} // namespace vpm::dc
