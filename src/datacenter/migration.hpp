/**
 * @file
 * Live-migration engine.
 *
 * Live migration is the mechanism every decision of the management layer is
 * executed through, and its cost model shapes the paper's overhead results:
 * a migration takes memory-size/bandwidth time (with a dirty-page retransmit
 * factor), taxes CPU on both endpoints while in flight, and each host only
 * sustains a few concurrent migrations. Requests beyond the concurrency cap
 * queue FIFO and are revalidated when they finally start.
 */

#ifndef VPM_DATACENTER_MIGRATION_HPP
#define VPM_DATACENTER_MIGRATION_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "datacenter/cluster.hpp"
#include "datacenter/topology.hpp"
#include "simcore/simulator.hpp"
#include "stats/summary.hpp"
#include "telemetry/trace_context.hpp"

namespace vpm::dc {

/** Cost-model knobs for live migration. */
struct MigrationConfig
{
    /** Usable migration bandwidth per stream, in MB/s (10 GbE ~ 1100). */
    double bandwidthMbPerSec = 1100.0;

    /** Fixed setup/switchover overhead per migration. */
    sim::SimTime fixedOverhead = sim::SimTime::seconds(2.0);

    /** Memory retransmit factor for pages dirtied during pre-copy. */
    double dirtyPageFactor = 1.3;

    /**
     * Additional dirty-page factor per unit of VM CPU utilization: a VM
     * running flat out re-dirties pages during pre-copy, so its copy
     * takes (dirtyPageFactor + utilizationDirtyFactor * utilization)
     * times its memory. 0 restores the size-only model.
     */
    double utilizationDirtyFactor = 0.6;

    /** Max concurrent migrations touching one host (in + out). */
    int maxConcurrentPerHost = 2;

    /** CPU overhead charged to both endpoints, as a fraction of VM size. */
    double cpuTaxFraction = 0.10;
};

/** Orchestrates live migrations over a Cluster. */
class MigrationEngine
{
  public:
    /** Fired when a migration lands, after the VM has moved. */
    using CompletionHandler =
        std::function<void(VmId vm, HostId source, HostId dest)>;

    MigrationEngine(sim::Simulator &simulator, Cluster &cluster,
                    const MigrationConfig &config = {});

    MigrationEngine(const MigrationEngine &) = delete;
    MigrationEngine &operator=(const MigrationEngine &) = delete;

    /**
     * Request a live migration of @p vm to @p dest.
     *
     * Rejected immediately (returns false, warning logged) if the VM is
     * already migrating or queued, unplaced, already on @p dest, or if
     * @p dest is not On / lacks memory headroom. Otherwise the migration
     * starts now or queues behind the per-host concurrency cap.
     */
    bool request(VmId vm, HostId dest);

    /** true if the VM is in flight or queued. */
    bool involved(VmId vm) const;

    /**
     * Destination of the VM's in-flight or queued migration.
     * @return invalidHostId if the VM is not involved in one.
     */
    HostId destinationOf(VmId vm) const;

    /**
     * Duration of migrating @p vm if it started right now, under the cost
     * model including its current activity (busy VMs re-dirty pages
     * during pre-copy and take longer). Assumes the configured flat
     * bandwidth; with a topology attached the endpoint-aware overload is
     * what start() charges.
     */
    sim::SimTime expectedDuration(const Vm &vm) const;

    /** Endpoint-aware duration (rack locality decides the bandwidth). */
    sim::SimTime expectedDuration(const Vm &vm, HostId source,
                                  HostId dest) const;

    /**
     * Attach a network topology: cross-rack migrations then ride the
     * (slower) uplink bandwidth and compete for per-rack uplink slots.
     * Pass nullptr to restore the flat network. The topology must
     * outlive the engine.
     */
    void setTopology(Topology *topology) { topology_ = topology; }

    /** @name Counters */
    ///@{
    int activeCount() const { return activeCount_; }
    std::size_t queuedCount() const { return queue_.size(); }
    std::uint64_t startedCount() const { return started_; }
    std::uint64_t completedCount() const { return completed_; }

    /** Queued requests later dropped because revalidation failed. */
    std::uint64_t droppedCount() const { return dropped_; }

    /** In-flight migrations abandoned because an endpoint lost power
     *  mid-copy (the VM stays on its source). */
    std::uint64_t abortedCount() const { return aborted_; }

    /** Completed migrations that crossed racks (0 on a flat network). */
    std::uint64_t crossRackCount() const { return crossRack_; }

    /** Summary of completed migration durations, in seconds. */
    const stats::Summary &durations() const { return durations_; }
    ///@}

    /** Subscribe to migration completions (single handler). */
    void setOnComplete(CompletionHandler handler);

    const MigrationConfig &config() const { return config_; }

  private:
    struct Request
    {
        VmId vm;
        HostId dest;

        /** Causal context at request() time; a queued migration that only
         *  starts from a later completion event must still be attributed
         *  to the decision that requested it. */
        telemetry::TraceContext context;
    };

    /** Validation shared by request() and queue drain. */
    bool validate(const Vm &vm, HostId dest, bool is_queued_retry) const;

    /** true if both endpoints have a free migration slot. */
    bool slotsFree(HostId source, HostId dest) const;

    /**
     * Optimistic memory check: fits once every resident VM already booked
     * to leave the destination has left. Gates admission to the queue.
     */
    bool memoryFitsAfterPending(const Vm &vm, HostId dest) const;

    /**
     * Strict memory check gating migration start: resident memory plus
     * reservations of in-flight inbound migrations.
     */
    bool memoryFitsNow(const Vm &vm, HostId dest) const;

    void start(VmId vm, HostId dest);
    void complete(VmId vm, HostId source, HostId dest);
    void drainQueue();

    sim::Simulator &simulator_;
    Cluster &cluster_;
    MigrationConfig config_;
    Topology *topology_ = nullptr;

    std::deque<Request> queue_;
    std::unordered_map<VmId, HostId> involved_;
    std::unordered_map<VmId, sim::SimTime> activeDurations_;
    int activeCount_ = 0;
    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t aborted_ = 0;
    std::uint64_t crossRack_ = 0;
    stats::Summary durations_;
    CompletionHandler onComplete_;
};

} // namespace vpm::dc

#endif // VPM_DATACENTER_MIGRATION_HPP
